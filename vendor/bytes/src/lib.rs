//! Offline, API-compatible subset of the `bytes` crate: the `Buf` /
//! `BufMut` methods the wire-format code uses, implemented for `&[u8]`
//! and `Vec<u8>`. Network byte order (big-endian), like the real crate.

/// Sequential big-endian reader over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential big-endian writer into a growable sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32(0xdead_beef);
        buf.put_u8(7);
        buf.put_u16(513);
        buf.put_slice(&[1, 2, 3]);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 513);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32();
    }
}
