//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the pieces the test-suite uses: the `proptest!` macro,
//! `Strategy` (ranges, tuples, `any`, `prop::collection::vec`,
//! `prop_map`, simple regex string strategies), the assertion macros,
//! and `ProptestConfig::with_cases`. Sampling is deterministic (seeded
//! per test name + case index) and there is no shrinking: a failing
//! case panics with the assertion message directly.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

/// Per-invocation configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single test case did not complete normally.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// Types with a canonical "any value" strategy (via `rand::Standard`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from a small regex subset: literal characters,
/// `[a-z0-9.-]` character classes, and `{lo,hi}` / `{n}` repetitions.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut SmallRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    set.extend(lo..=hi);
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // closing ']'
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repetition"),
                    b.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        for _ in 0..count {
            if choices.is_empty() {
                continue;
            }
            out.push(choices[rng.gen_range(0..choices.len())]);
        }
    }
    out
}

pub mod collection {
    use super::{SampleRange, SmallRng, Strategy};
    use rand::Rng;

    /// Strategy for vectors with element strategy and length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        core::ops::Range<usize>: SampleRange<usize>,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.end > self.len.start {
                rng.gen_range(self.len.clone())
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __case_rng(name_hash: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(name_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a test that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr);
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __name_hash = $crate::__fnv(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::__case_rng(__name_hash, __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    // Rejected cases (prop_assume!) are simply skipped.
                    let _ = __outcome;
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            panic!(
                "proptest assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), __l, __r
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            panic!($($fmt)+);
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            panic!(
                "proptest assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), __l
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            panic!($($fmt)+);
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0..10.0f64, 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0..1.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(xs in small_vec()) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for x in &xs {
                prop_assert!((-10.0..10.0).contains(x));
            }
        }

        #[test]
        fn tuples_and_map(p in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 6);
        }

        #[test]
        fn regex_subset_generates_matching(s in "[a-z0-9.-]{0,64}") {
            prop_assert!(s.len() <= 64);
            prop_assert!(s.chars().all(|c| {
                c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'
            }));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::__case_rng(crate::__fnv("x"), 3);
        let mut b = crate::__case_rng(crate::__fnv("x"), 3);
        let s = (0u8..255).sample(&mut a);
        let t = (0u8..255).sample(&mut b);
        assert_eq!(s, t);
    }
}
