//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses. The core
//! generator is xoshiro256++ — the same algorithm real `SmallRng` uses
//! on 64-bit targets — seeded through SplitMix64 exactly like
//! `SeedableRng::seed_from_u64`, so streams are high-quality and fully
//! deterministic per seed. Only the surface the workspace calls is
//! implemented: `Rng::{gen, gen_range, gen_bool, fill}`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and
//! `seq::SliceRandom::{choose, shuffle}`.

pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> SmallRng {
            SmallRng { s }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The subset of `RngCore` the workspace needs, folded into one trait.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl RngCore for rngs::SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (matches the rand 0.8 surface used here).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// SplitMix64 expansion of a `u64` seed — identical construction to
    /// rand 0.8's default `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0xa076_1d64_78bd_642f);
            let mut z = state;
            z = (z ^ (z >> 32)).wrapping_mul(0xe703_7ed1_a0b4_28db);
            z = (z ^ (z >> 29)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 32;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

impl SeedableRng for rngs::SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> rngs::SmallRng {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        // All-zero state is the one degenerate seed for xoshiro.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        rngs::SmallRng::from_state(s)
    }
}

/// Types `Rng::gen` can produce and `Rng::fill` can fill.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! standard_signed_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                <$u as Standard>::sample(rng) as $t
            }
        }
    )*};
}

standard_signed_impls!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Unbiased via 128-bit widening multiply (Lemire).
                let mut x = rng.next_u64() as u128;
                let mut m = x.wrapping_mul(span);
                let mut lo = m as u64 as u128;
                if lo < span {
                    let t = (u64::MAX as u128 + 1 - span) % span;
                    while lo < t {
                        x = rng.next_u64() as u128;
                        m = x.wrapping_mul(span);
                        lo = m as u64 as u128;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back in.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f32 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        let u: f64 = Standard::sample(self);
        u < p
    }

    #[inline]
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_with(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slices `Rng::fill` accepts.
pub trait Fill {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling/shuffling helpers.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's iteration direction.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            // Shuffle the last `amount` positions, as rand does, then
            // return (shuffled tail, untouched head).
            let len = self.len();
            let amount = amount.min(len);
            for i in (len - amount..len).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
            let (head, tail) = self.split_at_mut(len - amount);
            (tail, head)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(1..=6u8);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_and_array_gen() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let arr: [u8; 12] = rng.gen();
        assert!(arr.iter().any(|&b| b != 0));
    }

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        use seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "20 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
