//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Benches compile and run against this stub without the real
//! dependency: each `bench_function` runs the routine a handful of
//! times, measures wall-clock duration with `std::time::Instant`, and
//! prints a single mean-per-iteration line. No statistics, warm-up
//! phases, or HTML reports.

use std::time::Instant;

/// Iterations per measurement; small so bench binaries finish quickly.
const DEFAULT_ITERS: u32 = 10;

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    iters: u32,
    elapsed_ns: f64,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher {
            iters,
            elapsed_ns: 0.0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total_ns = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.elapsed_ns = total_ns / self.iters as f64;
    }
}

fn report(id: &str, elapsed_ns: f64, throughput: Option<Throughput>) {
    let human = if elapsed_ns >= 1.0e9 {
        format!("{:.3} s", elapsed_ns / 1.0e9)
    } else if elapsed_ns >= 1.0e6 {
        format!("{:.3} ms", elapsed_ns / 1.0e6)
    } else if elapsed_ns >= 1.0e3 {
        format!("{:.3} us", elapsed_ns / 1.0e3)
    } else {
        format!("{elapsed_ns:.0} ns")
    };
    match throughput {
        Some(Throughput::Bytes(n)) if elapsed_ns > 0.0 => {
            let mbps = n as f64 / (elapsed_ns / 1.0e9) / 1.0e6;
            println!("{id:<40} {human:>12}/iter  {mbps:.1} MB/s");
        }
        Some(Throughput::Elements(n)) if elapsed_ns > 0.0 => {
            let eps = n as f64 / (elapsed_ns / 1.0e9);
            println!("{id:<40} {human:>12}/iter  {eps:.0} elem/s");
        }
        _ => println!("{id:<40} {human:>12}/iter"),
    }
}

#[derive(Default)]
pub struct Criterion {
    iters: Option<u32>,
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = Some((n as u32).max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters.unwrap_or(DEFAULT_ITERS));
        f(&mut b);
        report(id.as_ref(), b.elapsed_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters.unwrap_or(DEFAULT_ITERS),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    iters: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        let full = format!("{}/{}", self.name, id.as_ref());
        report(&full, b.elapsed_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Bundles bench functions into a single runner named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/iter", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
