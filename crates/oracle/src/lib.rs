//! **The latency oracle**: a long-running, snapshot-isolated query
//! service over the all-pairs Tor RTT matrix.
//!
//! §4.6 of the Ting paper argues measurements are stable enough to
//! cache and serve as a dataset; every §5 application — and ShorTor's
//! multi-hop overlay routing after it — consumes exactly that dataset.
//! This crate is the read-side serving layer: it loads a matrix from
//! the §4.6 TSV cache or a sharded scan's merged checkpoint document,
//! freezes it into an immutable [`Snapshot`] (dense index-addressed
//! [`ting::RttView`] + freshness metadata), and answers three query
//! families:
//!
//! * **point lookup** — [`Oracle::rtt`]: `R(x, y)` with the
//!   measurement timestamp, age, and generation it came from;
//! * **k-nearest relays** — [`Oracle::k_nearest`]: the `k` lowest-RTT
//!   neighbors of a relay, deterministic tie-breaks;
//! * **via-relay detour** — [`Oracle::best_via`]: ShorTor-style
//!   `argmin_v R(x,v) + R(v,y)`, the same kernel `analysis::tiv` uses
//!   for Figs. 14–15, so research analysis and serving path cannot
//!   drift apart.
//!
//! Concurrency model: publishes swap an `Arc<Snapshot>` behind a lock
//! held for nanoseconds; readers ([`OracleReader`], `Send + Sync`)
//! clone the `Arc` and query immutable data, so a scanner/ingest loop
//! can publish fresher generations forever without ever blocking a
//! reader or tearing a dataset mid-query.

pub mod journal;
pub mod pipeline;
pub mod service;
pub mod snapshot;
pub mod ttl;

pub use journal::{Journal, Recovered};
pub use pipeline::{GuardedPoint, Pipeline, PipelineConfig, SloConfig};
pub use service::{Oracle, OracleReader};
pub use snapshot::{
    DetourAnswer, KNearestAnswer, Neighbor, PointAnswer, QueryError, ShardSummary, Snapshot,
    SnapshotMeta, SnapshotSource,
};
pub use ttl::{ServingState, TtlPolicy};
