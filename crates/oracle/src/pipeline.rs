//! The live scan→serve pipeline: a continuous control loop that turns
//! a running [`ting::shard::Supervisor`]'s incremental merge deltas
//! into crash-consistent oracle generations.
//!
//! One cycle: the scan side [`Pipeline::offer`]s deltas drained with
//! [`ting::shard::Supervisor::take_delta`] (never blocking — a bounded
//! queue coalesces on overflow, because delta application is
//! idempotent assignment); [`Pipeline::tick`] then folds the queue
//! into the accumulated matrix, renders the same CRC-sealed merged
//! document an offline [`ting::shard::Supervisor::merge`] would
//! produce, stages it through the publish [`Journal`] (append → seal →
//! swap → truncate), and publishes the generation through the oracle's
//! swap cell under the *journal's* generation number — so a kill at
//! any byte and a [`Pipeline::recover`] always serve exactly the last
//! sealed generation, bit-identical to an uninterrupted run.
//!
//! Serving is guarded by the [`TtlPolicy`] ladder, judged against the
//! snapshot's newest measurement in virtual time: `Fresh` answers pass
//! through, `Stale` ones carry a flag, and in `Degraded` mode point
//! lookups serve-with-warning while ranking queries (`k_nearest`,
//! `best_via`) refuse — a stale ordering is the one silent wrong
//! answer this layer exists to prevent.

use crate::journal::{Journal, Recovered};
use crate::service::{Oracle, OracleReader};
use crate::snapshot::{DetourAnswer, KNearestAnswer, PointAnswer, QueryError, Snapshot};
use crate::ttl::{ServingState, TtlPolicy};
use netsim::{NodeId, SimDuration, SimTime};
use obs::slo::{SLO_COVERAGE, SLO_PUBLISH_LATENCY, SLO_SHARD_PROGRESS, SLO_STALENESS};
use obs::{names, Counter, Hist, Lineage, Obs, SloEngine, SloSpec, Value, WindowSpec};
use std::collections::{HashMap, VecDeque};
use ting::shard::{
    parse_merged_document, partition_pairs, MergeDelta, MergeOutcome, ShardCoverage,
};
use ting::RttMatrix;

/// Tuning knobs for the publish loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Most deltas held before the two oldest coalesce (≥ 1). The
    /// queue never refuses an offer — backpressure folds history
    /// instead of blocking the scan.
    pub queue_cap: usize,
    /// Minimum virtual time between publishes; zero publishes on every
    /// tick that has queued data.
    pub publish_interval: SimDuration,
    /// Staleness horizon for the document's coverage rows. Must match
    /// the supervisor's `ScannerConfig::staleness` for pipeline output
    /// to stay bit-identical with an offline merge.
    pub staleness: SimDuration,
    /// Snapshot-level freshness SLOs.
    pub ttl: TtlPolicy,
    /// Live SLO evaluation over the control loop itself; `None` runs
    /// the pipeline exactly as before (the engine is observational —
    /// it never changes what publishes or serves).
    pub slo: Option<SloConfig>,
}

/// Window geometry and objectives for the pipeline's live SLOs. All
/// integer fields so [`PipelineConfig`] stays `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Width of one aggregation bucket in virtual time.
    pub bucket: SimDuration,
    /// Ring length; the window spans `bucket × buckets`.
    pub buckets: u32,
    /// Pair-coverage objective at publish (measured / owned), ppm.
    pub coverage_objective_ppm: u32,
    /// Per-shard scan-progress objective (live shards / all), ppm.
    pub progress_objective_ppm: u32,
    /// Offer→publish latency budget per delta.
    pub latency_budget: SimDuration,
    /// Fraction of deltas published within the budget, ppm.
    pub latency_objective_ppm: u32,
    /// Fraction of TTL judgments landing `Fresh`, ppm — burn against
    /// this is the staleness-budget burn of the serving ladder.
    pub staleness_objective_ppm: u32,
    /// Shared burn-rate threshold in milli-multiples of each budget.
    pub burn_threshold_milli: u32,
}

impl SloConfig {
    fn engine(&self, obs: &Obs) -> SloEngine {
        let slo = |name, objective_ppm| SloSpec {
            name,
            objective_ppm,
            burn_threshold_milli: self.burn_threshold_milli,
        };
        SloEngine::new(
            obs.clone(),
            WindowSpec {
                bucket_ns: self.bucket.as_nanos(),
                buckets: self.buckets,
            },
            &[
                slo(SLO_COVERAGE, self.coverage_objective_ppm),
                slo(SLO_SHARD_PROGRESS, self.progress_objective_ppm),
                slo(SLO_PUBLISH_LATENCY, self.latency_objective_ppm),
                slo(SLO_STALENESS, self.staleness_objective_ppm),
            ],
        )
    }
}

/// A point answer qualified by the serving state it was produced in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedPoint {
    pub answer: PointAnswer,
    /// `Stale`/`Degraded` is the serve-with-warning flag: the value is
    /// real, but the dataset behind it has outlived an SLO.
    pub state: ServingState,
}

/// Pre-resolved metric handles for the publish loop.
#[derive(Debug, Clone, Default)]
struct Metrics {
    deltas: Counter,
    coalesced: Counter,
    published: Counter,
    served_stale: Counter,
    refused: Counter,
    batch_pairs: Hist,
}

impl Metrics {
    fn new(obs: &Obs) -> Metrics {
        Metrics {
            deltas: obs.counter_handle("oracle.pipeline.deltas"),
            coalesced: obs.counter_handle("oracle.pipeline.coalesced"),
            published: obs.counter_handle("oracle.pipeline.published"),
            served_stale: obs.counter_handle("oracle.stale.served_stale"),
            refused: obs.counter_handle("oracle.stale.refused"),
            batch_pairs: obs.hist_handle("oracle.pipeline.batch_pairs"),
        }
    }
}

/// The scan→serve control loop. Single-threaded like the [`Oracle`] it
/// owns; hand [`Pipeline::reader`]s to concurrent consumers.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    nodes: Vec<NodeId>,
    /// Pair ownership per shard, mirroring the supervisor's partition.
    owned: Vec<Vec<(NodeId, NodeId)>>,
    /// Accumulated dataset: every pair any delta ever carried.
    matrix: RttMatrix,
    measured_at: HashMap<(NodeId, NodeId), SimTime>,
    /// Per-pair provenance mirroring `measured_at`'s key set for pairs
    /// that arrived through deltas (recovered v1 documents may lack it).
    lineage: HashMap<(NodeId, NodeId), Lineage>,
    /// Shard status tags from the most recent delta.
    statuses: Vec<&'static str>,
    journal: Option<Journal>,
    oracle: Oracle,
    queue: VecDeque<MergeDelta>,
    /// Current generation — equals the oracle version *and* the
    /// journal's record number; keeping all three in lockstep is what
    /// makes recovery unambiguous.
    generation: u64,
    last_publish: Option<SimTime>,
    state: ServingState,
    /// Dataset age at the last judgment, cited in refusals.
    age_ns: Option<u64>,
    /// Highest delta sequence folded into the served generation —
    /// stamped on the publish trace so a lineage walk can tie a pair's
    /// drain back to the generation that first served it.
    last_seq: u64,
    slo: Option<SloEngine>,
    obs: Obs,
    metrics: Metrics,
}

impl Pipeline {
    /// A pipeline without observability or a journal (volatile mode —
    /// tests and in-process consumers that don't need crash safety).
    pub fn new(nodes: Vec<NodeId>, shards: usize, config: PipelineConfig) -> Pipeline {
        Pipeline::with_obs(nodes, shards, config, Obs::off(), None)
    }

    /// The fully wired constructor. `shards` must match the supervisor
    /// feeding this pipeline; `journal`, when given, makes every
    /// publish crash-consistent. Serving starts `Degraded` on an empty
    /// bootstrap generation — there is no data to certify yet.
    pub fn with_obs(
        nodes: Vec<NodeId>,
        shards: usize,
        config: PipelineConfig,
        obs: Obs,
        journal: Option<Journal>,
    ) -> Pipeline {
        assert!(config.queue_cap >= 1, "queue capacity must be positive");
        let owned = partition_pairs(&nodes, shards);
        let matrix = RttMatrix::new(nodes.clone());
        let oracle = Oracle::with_obs(Snapshot::from_matrix(&matrix), obs.clone());
        let metrics = Metrics::new(&obs);
        obs.set_gauge("oracle.stale.state", ServingState::Degraded.gauge());
        obs.set_gauge("oracle.pipeline.generation", 1);
        let slo = config.slo.map(|c| c.engine(&obs));
        Pipeline {
            config,
            nodes,
            owned,
            matrix,
            measured_at: HashMap::new(),
            lineage: HashMap::new(),
            statuses: vec!["live"; shards],
            journal,
            oracle,
            queue: VecDeque::new(),
            generation: 1,
            last_publish: None,
            state: ServingState::Degraded,
            age_ns: None,
            last_seq: 0,
            slo,
            obs,
            metrics,
        }
    }

    /// Reopens a journaled pipeline after a kill: replays the journal
    /// directory, republishes exactly the last sealed generation (the
    /// pending record when the kill landed between seal and swap, else
    /// the published file), rebuilds the accumulated dataset from it,
    /// and re-judges serving at `now`. Returns what recovery found so
    /// harnesses can assert on the crash window they injected.
    pub fn recover(
        nodes: Vec<NodeId>,
        shards: usize,
        config: PipelineConfig,
        obs: Obs,
        journal: Journal,
        now: SimTime,
    ) -> Result<(Pipeline, Recovered), String> {
        let recovered = journal.recover()?;
        let mut p = Pipeline::with_obs(nodes, shards, config, obs, Some(journal));
        if let Some((gen, doc)) = recovered.serve().cloned() {
            let parsed = parse_merged_document(&doc)?;
            if parsed.matrix.nodes() != p.nodes.as_slice() {
                return Err("recovered generation's node list differs from the pipeline's".into());
            }
            if parsed.shards.len() != shards {
                return Err(format!(
                    "recovered generation has {} shards, pipeline expects {shards}",
                    parsed.shards.len()
                ));
            }
            p.matrix = parsed.matrix;
            p.measured_at = parsed
                .measured_at_ns
                .iter()
                .map(|(&k, &v)| (k, SimTime(v)))
                .collect();
            p.lineage = parsed.lineage.clone();
            p.statuses = parsed.shards.iter().map(|c| c.status).collect();
            let snapshot = Snapshot::from_merged_document(&doc)?;
            p.oracle
                .publish_versioned_at(snapshot, gen, Some(now.as_nanos()));
            p.generation = gen;
            p.last_publish = Some(SimTime(parsed.now_ns));
            p.obs.set_gauge("oracle.pipeline.generation", gen as i64);
            // A pending record sealed but never swapped: finish its
            // interrupted publish so the directory converges.
            if recovered.pending.is_some() {
                p.journal
                    .as_ref()
                    .expect("recovering pipeline has a journal")
                    .mark_published(gen, &doc)
                    .map_err(|e| format!("completing interrupted publish: {e}"))?;
            }
            if p.obs.is_tracing() {
                p.obs.event(
                    names::ORACLE_PIPELINE_RECOVER,
                    now.as_nanos(),
                    vec![
                        ("generation", Value::U64(gen)),
                        ("pending", Value::U64(recovered.pending.is_some() as u64)),
                        ("torn_tail", Value::U64(recovered.torn_tail as u64)),
                    ],
                );
            }
        }
        p.rejudge(now);
        Ok((p, recovered))
    }

    /// Accepts a delta from the scan side. Never blocks and never
    /// refuses: past `queue_cap` the two oldest queued deltas coalesce
    /// into one (later pairs win collisions — application order is
    /// preserved), trading publish granularity for bounded memory so a
    /// supervisor outrunning the publisher is slowed by nothing.
    pub fn offer(&mut self, delta: MergeDelta) {
        self.metrics.deltas.inc();
        if let Some(slo) = &mut self.slo {
            let live = delta.statuses.iter().filter(|s| **s == "live").count() as u64;
            let total = delta.statuses.len() as u64;
            slo.observe(SLO_SHARD_PROGRESS, delta.now.as_nanos(), live, total - live);
        }
        if self.obs.is_tracing() {
            self.obs.event(
                names::ORACLE_PIPELINE_DELTA,
                delta.now.as_nanos(),
                vec![
                    ("seq", Value::U64(delta.seq)),
                    ("pairs", Value::U64(delta.pairs.len() as u64)),
                ],
            );
        }
        self.queue.push_back(delta);
        if self.queue.len() > self.config.queue_cap {
            let oldest = self.queue.pop_front().expect("queue is over capacity");
            let into = self.queue.front_mut().expect("cap is at least 1");
            let mut pairs = oldest.pairs;
            pairs.append(&mut into.pairs);
            into.pairs = pairs;
            self.metrics.coalesced.inc();
            if self.obs.is_tracing() {
                self.obs.event(
                    names::ORACLE_PIPELINE_COALESCE,
                    into.now.as_nanos(),
                    vec![
                        ("from_seq", Value::U64(oldest.seq)),
                        ("into_seq", Value::U64(into.seq)),
                        ("pairs", Value::U64(into.pairs.len() as u64)),
                    ],
                );
            }
        }
        self.obs
            .set_gauge("oracle.pipeline.queue_depth", self.queue.len() as i64);
    }

    /// One control-loop turn at virtual instant `now`: publishes a new
    /// generation when the queue has data and the publish interval has
    /// elapsed, then re-judges the TTL ladder (which moves even when
    /// nothing publishes — expiry is a function of time, not traffic).
    /// Returns the generation published this turn, if any.
    pub fn tick(&mut self, now: SimTime) -> Result<Option<u64>, String> {
        let due = self
            .last_publish
            .is_none_or(|at| now.since(at) >= self.config.publish_interval);
        let published = if !self.queue.is_empty() && due {
            Some(self.publish_queued(now)?)
        } else {
            None
        };
        self.rejudge(now);
        if let Some(slo) = &mut self.slo {
            slo.evaluate(now.as_nanos());
        }
        Ok(published)
    }

    /// Drains the queue into the accumulated dataset and pushes one
    /// generation through journal and swap cell.
    fn publish_queued(&mut self, now: SimTime) -> Result<u64, String> {
        let span = self.obs.span_begin(
            names::ORACLE_PIPELINE_PUBLISH_BEGIN,
            now.as_nanos(),
            vec![("queued", Value::U64(self.queue.len() as u64))],
        );
        let mut batch_pairs: u64 = 0;
        while let Some(delta) = self.queue.pop_front() {
            batch_pairs += delta.pairs.len() as u64;
            if let Some(slo) = &mut self.slo {
                // One observation per delta: did it reach a served
                // generation within its offer→publish budget?
                let waited = now.as_nanos().saturating_sub(delta.now.as_nanos());
                let on_time = waited
                    <= self
                        .config
                        .slo
                        .expect("engine implies config")
                        .latency_budget
                        .as_nanos();
                slo.observe(
                    SLO_PUBLISH_LATENCY,
                    now.as_nanos(),
                    on_time as u64,
                    !on_time as u64,
                );
            }
            for p in delta.pairs {
                self.matrix.set(p.a, p.b, p.rtt_ms);
                self.measured_at.insert(ordered(p.a, p.b), p.measured_at);
                self.lineage.insert(ordered(p.a, p.b), p.lineage);
            }
            self.last_seq = self.last_seq.max(delta.seq);
            self.statuses = delta.statuses;
        }
        if let Some(slo) = &mut self.slo {
            let owned: u64 = self.owned.iter().map(|o| o.len() as u64).sum();
            let covered = self.measured_at.len() as u64;
            slo.observe(
                SLO_COVERAGE,
                now.as_nanos(),
                covered,
                owned.saturating_sub(covered),
            );
        }
        self.obs.set_gauge("oracle.pipeline.queue_depth", 0);

        let doc = self.outcome(now).to_document();
        let next = self.generation + 1;
        if let Some(j) = &self.journal {
            j.append(next, &doc)
                .map_err(|e| format!("journal append (gen {next}): {e}"))?;
        }
        let snapshot = Snapshot::from_merged_document(&doc)?;
        self.oracle.publish_versioned(snapshot, next);
        self.generation = next;
        if let Some(j) = &self.journal {
            j.mark_published(next, &doc)
                .map_err(|e| format!("journal publish (gen {next}): {e}"))?;
        }
        self.last_publish = Some(now);
        self.metrics.published.inc();
        self.metrics.batch_pairs.record_us(batch_pairs);
        self.obs
            .set_gauge("oracle.pipeline.generation", next as i64);
        if self.obs.is_tracing() {
            self.obs.span_end(
                names::ORACLE_PIPELINE_PUBLISH_END,
                span,
                now.as_nanos(),
                vec![
                    ("generation", Value::U64(next)),
                    ("batch_pairs", Value::U64(batch_pairs)),
                    ("last_seq", Value::U64(self.last_seq)),
                ],
            );
        }
        Ok(next)
    }

    /// Renders the accumulated dataset exactly as
    /// [`ting::shard::merge_checkpoints`] would: coverage rows over the
    /// same partition, staleness judged at `now` against the same
    /// horizon, shard statuses from the latest delta.
    fn outcome(&self, now: SimTime) -> MergeOutcome {
        let mut shards = Vec::with_capacity(self.owned.len());
        for (k, owned) in self.owned.iter().enumerate() {
            let mut covered = 0;
            let mut stale = 0;
            let mut oldest: Option<u64> = None;
            let mut newest: Option<u64> = None;
            for &(a, b) in owned {
                let Some(&t) = self.measured_at.get(&ordered(a, b)) else {
                    continue;
                };
                covered += 1;
                if now.since(t) >= self.config.staleness {
                    stale += 1;
                }
                let t_ns = t.as_nanos();
                oldest = Some(oldest.map_or(t_ns, |o| o.min(t_ns)));
                newest = Some(newest.map_or(t_ns, |n| n.max(t_ns)));
            }
            shards.push(ShardCoverage {
                shard: k as u32,
                status: self.statuses[k],
                owned: owned.len(),
                covered,
                stale,
                uncovered: owned.len() - covered,
                oldest_ns: oldest,
                newest_ns: newest,
            });
        }
        MergeOutcome {
            matrix: self.matrix.clone(),
            measured_at: self.measured_at.clone(),
            lineage: self.lineage.clone(),
            shards,
            now,
        }
    }

    /// Re-judges the TTL ladder against the served snapshot's newest
    /// measurement and traces every transition.
    fn rejudge(&mut self, now: SimTime) {
        let freshness = self.oracle.snapshot().freshness_ns();
        self.age_ns = freshness.map(|f| now.as_nanos().saturating_sub(f));
        let next = self.config.ttl.judge(freshness, now.as_nanos());
        if let Some(slo) = &mut self.slo {
            // Every judgment burns the staleness budget when it lands
            // anywhere below `Fresh` on the ladder.
            let fresh = next == ServingState::Fresh;
            slo.observe(SLO_STALENESS, now.as_nanos(), fresh as u64, !fresh as u64);
        }
        if next != self.state {
            if self.obs.is_tracing() {
                self.obs.event(
                    names::ORACLE_STALE_TRANSITION,
                    now.as_nanos(),
                    vec![
                        ("from", Value::Str(self.state.tag().to_owned())),
                        ("to", Value::Str(next.tag().to_owned())),
                        ("age_ns", Value::U64(self.age_ns.unwrap_or(u64::MAX))),
                    ],
                );
            }
            self.obs.set_gauge("oracle.stale.state", next.gauge());
            self.state = next;
        }
    }

    /// Guarded point lookup: always answers (a stale `R(x, y)` beats
    /// none), qualified by the serving state so the client knows what
    /// it got.
    pub fn rtt(&self, x: NodeId, y: NodeId) -> Result<GuardedPoint, QueryError> {
        let answer = self.oracle.rtt(x, y)?;
        if self.state != ServingState::Fresh {
            self.metrics.served_stale.inc();
        }
        Ok(GuardedPoint {
            answer,
            state: self.state,
        })
    }

    /// Guarded k-nearest: refuses outright in `Degraded` mode — a
    /// stale ordering is a silent wrong answer.
    pub fn k_nearest(&self, x: NodeId, k: usize) -> Result<KNearestAnswer, QueryError> {
        self.refuse_if_degraded()?;
        self.oracle.k_nearest(x, k)
    }

    /// Guarded detour search: refuses outright in `Degraded` mode.
    pub fn best_via(&self, x: NodeId, y: NodeId) -> Result<DetourAnswer, QueryError> {
        self.refuse_if_degraded()?;
        self.oracle.best_via(x, y)
    }

    fn refuse_if_degraded(&self) -> Result<(), QueryError> {
        if self.state == ServingState::Degraded {
            self.metrics.refused.inc();
            return Err(QueryError::Degraded {
                age_ns: self.age_ns,
                hard_ttl_ns: self.config.ttl.hard_ttl.as_nanos(),
            });
        }
        Ok(())
    }

    /// Current serving state on the TTL ladder.
    pub fn state(&self) -> ServingState {
        self.state
    }

    /// Current generation (== oracle version == journal record).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Deltas currently queued for the next publish.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Windowed totals for one live SLO as of the last `tick`; `None`
    /// without an [`SloConfig`] or for an unknown name.
    pub fn slo_totals(&self, name: &str) -> Option<obs::SloTotals> {
        self.slo.as_ref()?.totals(name)
    }

    /// The served generation's sealed document, re-rendered at its own
    /// publish instant — what the chaos harness compares bit-for-bit
    /// across kill/resume boundaries.
    pub fn serving_document(&self) -> String {
        let at = self.last_publish.unwrap_or(SimTime::ZERO);
        self.outcome(at).to_document()
    }

    /// A `Send + Sync` handle into the underlying swap cell.
    pub fn reader(&self) -> OracleReader {
        self.oracle.reader()
    }

    /// The underlying oracle (e.g. for unguarded access in tests).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ting::shard::DeltaPair;

    fn delta(seq: u64, pairs: Vec<(NodeId, NodeId, f64, SimTime)>, now: u64) -> MergeDelta {
        MergeDelta {
            seq,
            pairs: pairs
                .into_iter()
                .map(|(a, b, rtt_ms, measured_at)| DeltaPair {
                    a,
                    b,
                    rtt_ms,
                    measured_at,
                    lineage: Lineage {
                        shard: 0,
                        round: seq,
                    },
                })
                .collect(),
            statuses: vec!["live"],
            now: SimTime(now),
        }
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            queue_cap: 4,
            publish_interval: SimDuration(0),
            staleness: SimDuration::from_hours(24),
            ttl: TtlPolicy::new(SimDuration::from_secs(60), SimDuration::from_secs(600)).unwrap(),
            slo: None,
        }
    }

    fn slo_config() -> SloConfig {
        SloConfig {
            bucket: SimDuration::from_secs(60),
            buckets: 10,
            coverage_objective_ppm: 500_000,
            progress_objective_ppm: 990_000,
            latency_budget: SimDuration::from_secs(30),
            latency_objective_ppm: 990_000,
            staleness_objective_ppm: 990_000,
            burn_threshold_milli: 1000,
        }
    }

    fn nodes() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(1), NodeId(2)]
    }

    #[test]
    fn bootstrap_is_degraded_until_first_publish() {
        let mut p = Pipeline::new(nodes(), 1, config());
        assert_eq!(p.state(), ServingState::Degraded);
        assert_eq!(p.generation(), 1);
        assert!(matches!(
            p.k_nearest(NodeId(0), 2),
            Err(QueryError::Degraded { .. })
        ));
        // Point lookups still serve, with the warning attached.
        let g = p.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.state, ServingState::Degraded);
        assert_eq!(g.answer.rtt_ms, None);

        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 7.0, SimTime(5))], 10));
        let published = p.tick(SimTime(10)).unwrap();
        assert_eq!(published, Some(2));
        assert_eq!(p.state(), ServingState::Fresh);
        let g = p.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.answer.rtt_ms, Some(7.0));
        assert_eq!(g.state, ServingState::Fresh);
        assert!(p.k_nearest(NodeId(0), 2).is_ok());
    }

    #[test]
    fn ttl_ladder_descends_in_virtual_time_and_recovers_on_publish() {
        let mut p = Pipeline::new(nodes(), 1, config());
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 7.0, SimTime(0))], 0));
        p.tick(SimTime(0)).unwrap();
        assert_eq!(p.state(), ServingState::Fresh);

        let soft = SimDuration::from_secs(60).as_nanos();
        let hard = SimDuration::from_secs(600).as_nanos();
        p.tick(SimTime(soft)).unwrap();
        assert_eq!(p.state(), ServingState::Stale);
        let g = p.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.state, ServingState::Stale, "stale answers are flagged");
        assert!(
            p.best_via(NodeId(0), NodeId(1)).is_ok(),
            "stale still ranks"
        );

        p.tick(SimTime(hard)).unwrap();
        assert_eq!(p.state(), ServingState::Degraded);
        let err = p.best_via(NodeId(0), NodeId(1)).unwrap_err();
        assert_eq!(
            err,
            QueryError::Degraded {
                age_ns: Some(hard),
                hard_ttl_ns: hard
            }
        );
        assert!(
            p.rtt(NodeId(0), NodeId(1)).is_ok(),
            "points serve-with-warning"
        );

        // Fresh data recovers serving on the next publish.
        p.offer(delta(
            2,
            vec![(NodeId(0), NodeId(2), 3.0, SimTime(hard))],
            hard,
        ));
        p.tick(SimTime(hard)).unwrap();
        assert_eq!(p.state(), ServingState::Fresh);
    }

    #[test]
    fn republishing_old_data_does_not_reset_the_clock() {
        let mut p = Pipeline::new(nodes(), 1, config());
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 7.0, SimTime(0))], 0));
        p.tick(SimTime(0)).unwrap();
        let hard = SimDuration::from_secs(600).as_nanos();
        // A status-only delta republishes the same pairs at `hard`.
        p.offer(delta(2, vec![], hard));
        p.tick(SimTime(hard)).unwrap();
        assert_eq!(
            p.state(),
            ServingState::Degraded,
            "freshness follows the data, not the publish instant"
        );
    }

    #[test]
    fn overflow_coalesces_oldest_and_preserves_replay_order() {
        let obs = Obs::new(obs::ObsConfig::Metrics);
        let mut cfg = config();
        cfg.queue_cap = 2;
        let mut p = Pipeline::with_obs(nodes(), 1, cfg, obs.clone(), None);
        // Same pair three times: the last write must win after
        // coalescing, or replay order broke.
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 1.0, SimTime(1))], 1));
        p.offer(delta(2, vec![(NodeId(0), NodeId(1), 2.0, SimTime(2))], 2));
        p.offer(delta(3, vec![(NodeId(0), NodeId(1), 3.0, SimTime(3))], 3));
        assert_eq!(p.queue_depth(), 2, "overflow folded the two oldest");
        assert_eq!(obs.counter_value("oracle.pipeline.coalesced"), 1);
        p.tick(SimTime(3)).unwrap();
        let g = p.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.answer.rtt_ms, Some(3.0));
        assert_eq!(g.answer.measured_at_ns, Some(3));
    }

    #[test]
    fn publish_interval_batches_deltas() {
        let mut cfg = config();
        cfg.publish_interval = SimDuration::from_secs(10);
        let mut p = Pipeline::new(nodes(), 1, cfg);
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 1.0, SimTime(1))], 1));
        assert_eq!(
            p.tick(SimTime(1)).unwrap(),
            Some(2),
            "first publish is free"
        );
        p.offer(delta(2, vec![(NodeId(0), NodeId(2), 2.0, SimTime(2))], 2));
        assert_eq!(p.tick(SimTime(2)).unwrap(), None, "interval not elapsed");
        assert_eq!(p.queue_depth(), 1);
        let later = SimTime(1 + SimDuration::from_secs(10).as_nanos());
        assert_eq!(p.tick(later).unwrap(), Some(3));
        assert_eq!(p.queue_depth(), 0);
    }

    #[test]
    fn slo_engine_tracks_latency_coverage_and_staleness() {
        let mut cfg = config();
        cfg.slo = Some(slo_config());
        let mut p = Pipeline::new(nodes(), 1, cfg);
        assert_eq!(p.slo_totals("nonsense"), None);
        // One delta drained the instant it was offered: within budget.
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 7.0, SimTime(5))], 10));
        p.tick(SimTime(10)).unwrap();
        let lat = p.slo_totals(SLO_PUBLISH_LATENCY).unwrap();
        assert_eq!((lat.good, lat.bad), (1, 0));
        assert!(!lat.breaching);
        let prog = p.slo_totals(SLO_SHARD_PROGRESS).unwrap();
        assert_eq!((prog.good, prog.bad), (1, 0));
        // 1 of 3 owned pairs measured: a 50% coverage objective with a
        // 2/3 bad fraction is burning beyond its budget.
        let cov = p.slo_totals(SLO_COVERAGE).unwrap();
        assert_eq!((cov.good, cov.bad), (1, 2));
        assert!(cov.breaching);
        // The single TTL judgment landed Fresh.
        let st = p.slo_totals(SLO_STALENESS).unwrap();
        assert_eq!((st.good, st.bad), (1, 0));
        assert!(!st.breaching);
    }

    #[test]
    fn staleness_slo_burns_while_serving_degraded() {
        let mut cfg = config();
        cfg.slo = Some(slo_config());
        let mut p = Pipeline::new(nodes(), 1, cfg);
        p.offer(delta(1, vec![(NodeId(0), NodeId(1), 7.0, SimTime(0))], 0));
        p.tick(SimTime(0)).unwrap();
        assert!(!p.slo_totals(SLO_STALENESS).unwrap().breaching);
        // By the hard TTL the window has slid past the healthy epoch:
        // the judgment at `hard` lands Degraded and burns the budget.
        let hard = SimDuration::from_secs(600).as_nanos();
        p.tick(SimTime(hard)).unwrap();
        assert_eq!(p.state(), ServingState::Degraded);
        let st = p.slo_totals(SLO_STALENESS).unwrap();
        assert_eq!((st.good, st.bad), (0, 1));
        assert!(st.breaching);
    }

    #[test]
    fn lineage_flows_from_delta_to_served_answer() {
        let mut p = Pipeline::new(nodes(), 1, config());
        p.offer(delta(4, vec![(NodeId(0), NodeId(1), 7.0, SimTime(5))], 10));
        p.tick(SimTime(10)).unwrap();
        let origin = p.rtt(NodeId(0), NodeId(1)).unwrap().answer.origin.unwrap();
        // The test helper stamps `round = seq`; the pair was first
        // served by generation 2 (bootstrap is generation 1).
        assert_eq!((origin.shard, origin.round, origin.generation), (0, 4, 2));
        // The document renders it, so recovery round-trips it too.
        assert!(p.serving_document().contains("\t0\t4\n"));
    }
}
