//! The crash-consistent publish journal: append → seal → swap →
//! truncate.
//!
//! Every generation the pipeline publishes passes through two files in
//! the journal directory:
//!
//! * **`oracle.journal`** — an append-only staging log. A publish
//!   first appends one framed record (`@gen` header, the merged
//!   document's bytes, `@seal` trailer with a CRC-32 over the body)
//!   and fsyncs; the completed `@seal` line is the commit point. A
//!   kill mid-append leaves a torn tail that recovery discards.
//! * **`oracle.published`** — the last served generation, an
//!   outer-sealed wrapper around the same document, replaced with
//!   [`ting::checkpoint::write_atomic`] (tmp + fsync + rename + dir
//!   fsync). After the swap the journal is truncated; a kill between
//!   swap and truncate leaves a record whose generation equals the
//!   published one, which recovery recognizes as already applied.
//!
//! The invariant, for a kill at **any byte offset**: recovery always
//! reproduces exactly the last *sealed* state — the pending journal
//! record if one sealed after the published generation, otherwise the
//! published file — bit-identical to what an uninterrupted run would
//! have served. The chaos tests drive this by replaying every prefix
//! of the on-disk bytes.

use std::io::Write as _;
use std::path::PathBuf;
use ting::checkpoint;

/// The append-only staging log's file name.
pub const JOURNAL_FILE: &str = "oracle.journal";
/// The last-published-generation file's name.
pub const PUBLISHED_FILE: &str = "oracle.published";
/// First line of the published file's (outer-sealed) body.
pub const PUBLISHED_MAGIC: &str = "# ting oracle published v1";

/// What recovery found on disk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recovered {
    /// The last atomically published generation, if any.
    pub published: Option<(u64, String)>,
    /// A journal record sealed *after* the published generation — a
    /// kill landed between seal and swap; the caller must apply it.
    pub pending: Option<(u64, String)>,
    /// Whether the journal carried a torn (unsealed) tail that was
    /// discarded.
    pub torn_tail: bool,
}

impl Recovered {
    /// The generation recovery says must be served: the pending record
    /// when one exists, else the published one.
    pub fn serve(&self) -> Option<&(u64, String)> {
        self.pending.as_ref().or(self.published.as_ref())
    }
}

/// Handle on a journal directory. All methods are synchronous and
/// crash-ordered: when one returns, its effect survives a kill.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Journal { dir })
    }

    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    pub fn published_path(&self) -> PathBuf {
        self.dir.join(PUBLISHED_FILE)
    }

    /// Stages generation `gen` (a merged-matrix document) into the
    /// append-only log. Durable on return; the record is committed by
    /// its `@seal` line. This is step one of a publish — the caller
    /// swaps the oracle next, then calls [`Journal::mark_published`].
    pub fn append(&self, gen: u64, doc: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.journal_path())?;
        f.write_all(frame_record(gen, doc).as_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Completes a publish: atomically replaces the published file
    /// with generation `gen`, then truncates the staging log. A kill
    /// between the two leaves an already-applied record recovery
    /// recognizes by its generation number.
    pub fn mark_published(&self, gen: u64, doc: &str) -> std::io::Result<()> {
        checkpoint::write_atomic(&self.published_path(), &render_published(gen, doc))?;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.journal_path())?;
        f.set_len(0)?;
        f.sync_all()?;
        Ok(())
    }

    /// Replays the directory after a kill. Corrupt *sealed* state (a
    /// published file that fails its CRC) is an error — that is disk
    /// rot, not a crash window, and must be loud. Torn tails and stale
    /// `.tmp` siblings are expected crash debris and are ignored.
    pub fn recover(&self) -> Result<Recovered, String> {
        let published = match std::fs::read_to_string(self.published_path()) {
            Ok(text) => Some(parse_published(&text)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("published file unreadable: {e}")),
        };
        let (records, torn_tail) = match std::fs::read(self.journal_path()) {
            Ok(bytes) => scan_journal(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), false),
            Err(e) => return Err(format!("journal unreadable: {e}")),
        };
        let published_gen = published.as_ref().map_or(0, |&(g, _)| g);
        let pending = records.into_iter().rfind(|&(g, _)| g > published_gen);
        Ok(Recovered {
            published,
            pending,
            torn_tail,
        })
    }
}

/// Frames one journal record: `@gen <g> <len>\n` + the document bytes +
/// `@seal <g> <crc32-hex>\n`. Public so fault-injection tests can
/// compute byte offsets inside a record without writing one.
pub fn frame_record(gen: u64, doc: &str) -> String {
    let mut out = format!("@gen {gen} {}\n", doc.len());
    out.push_str(doc);
    out.push_str(&format!(
        "@seal {gen} {:08x}\n",
        checkpoint::crc32(doc.as_bytes())
    ));
    out
}

/// Renders the published file's contents (outer seal included).
pub fn render_published(gen: u64, doc: &str) -> String {
    checkpoint::seal(format!("{PUBLISHED_MAGIC}\n# gen: {gen}\n{doc}"))
}

/// Parses the published file: outer CRC, magic, generation, document.
fn parse_published(text: &str) -> Result<(u64, String), String> {
    let body = checkpoint::verify_sealed(text).map_err(|e| format!("published file: {e}"))?;
    let rest = body
        .strip_prefix(PUBLISHED_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or_else(|| {
            format!("published file: unsupported header (expected {PUBLISHED_MAGIC:?})")
        })?;
    let (gen_line, doc) = rest
        .split_once('\n')
        .ok_or("published file: missing generation line")?;
    let gen: u64 = gen_line
        .strip_prefix("# gen: ")
        .ok_or_else(|| format!("published file: not a generation line: {gen_line:?}"))?
        .parse()
        .map_err(|e| format!("published file: invalid generation: {e}"))?;
    Ok((gen, doc.to_owned()))
}

/// Walks the journal bytes record by record. Any framing violation —
/// truncated header, short body, missing or mismatched `@seal` — ends
/// the walk there: everything before it is sealed state, everything
/// from it on is a torn tail.
fn scan_journal(bytes: &[u8]) -> (Vec<(u64, String)>, bool) {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let Some((gen, len, body_start)) = parse_frame_header(bytes, pos) else {
            return (records, true);
        };
        let body_end = body_start + len;
        if body_end > bytes.len() {
            return (records, true);
        }
        let Ok(body) = std::str::from_utf8(&bytes[body_start..body_end]) else {
            return (records, true);
        };
        let Some(tail_end) = verify_frame_seal(bytes, body_end, gen, body) else {
            return (records, true);
        };
        records.push((gen, body.to_owned()));
        pos = tail_end;
    }
    (records, false)
}

/// Parses `@gen <g> <len>\n` at `pos`; returns `(gen, len, body
/// start)`.
fn parse_frame_header(bytes: &[u8], pos: usize) -> Option<(u64, usize, usize)> {
    let nl = bytes[pos..].iter().position(|&b| b == b'\n')? + pos;
    let line = std::str::from_utf8(&bytes[pos..nl]).ok()?;
    let rest = line.strip_prefix("@gen ")?;
    let (gen, len) = rest.split_once(' ')?;
    Some((gen.parse().ok()?, len.parse().ok()?, nl + 1))
}

/// Verifies `@seal <gen> <crc>\n` at `pos` against `body`; returns the
/// offset just past the trailer.
fn verify_frame_seal(bytes: &[u8], pos: usize, gen: u64, body: &str) -> Option<usize> {
    let nl = bytes[pos..].iter().position(|&b| b == b'\n')? + pos;
    let line = std::str::from_utf8(&bytes[pos..nl]).ok()?;
    let rest = line.strip_prefix("@seal ")?;
    let (seal_gen, hex) = rest.split_once(' ')?;
    if seal_gen.parse::<u64>().ok()? != gen {
        return None;
    }
    if u32::from_str_radix(hex, 16).ok()? != checkpoint::crc32(body.as_bytes()) {
        return None;
    }
    Some(nl + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ting-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_cycle_recovers_to_published_generation() {
        let dir = tempdir("cycle");
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.recover().unwrap(), Recovered::default());

        j.append(1, "doc one\n").unwrap();
        let r = j.recover().unwrap();
        assert_eq!(r.pending, Some((1, "doc one\n".to_owned())));
        assert_eq!(r.serve().unwrap().0, 1);
        assert!(!r.torn_tail);

        j.mark_published(1, "doc one\n").unwrap();
        let r = j.recover().unwrap();
        assert_eq!(r.published, Some((1, "doc one\n".to_owned())));
        assert_eq!(r.pending, None, "an applied record is not pending");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_sealed_prefix_survives() {
        let dir = tempdir("torn");
        let j = Journal::open(&dir).unwrap();
        j.append(1, "alpha\n").unwrap();
        j.append(2, "beta\n").unwrap();
        // Simulate a kill mid-append of generation 3: write only part
        // of the frame.
        let frame = frame_record(3, "gamma\n");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(j.journal_path())
            .unwrap();
        f.write_all(&frame.as_bytes()[..frame.len() - 4]).unwrap();
        drop(f);
        let r = j.recover().unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.pending, Some((2, "beta\n".to_owned())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_published_file_is_a_loud_error() {
        let dir = tempdir("rot");
        let j = Journal::open(&dir).unwrap();
        j.append(1, "doc\n").unwrap();
        j.mark_published(1, "doc\n").unwrap();
        let mut bytes = std::fs::read(j.published_path()).unwrap();
        bytes[3] ^= 0x20;
        std::fs::write(j.published_path(), &bytes).unwrap();
        let err = j.recover().unwrap_err();
        assert!(err.contains("CRC"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frame_roundtrips_and_rejects_a_flipped_body_byte() {
        let frame = frame_record(7, "payload line\n");
        let (records, torn) = scan_journal(frame.as_bytes());
        assert_eq!(records, vec![(7, "payload line\n".to_owned())]);
        assert!(!torn);
        let mut corrupt = frame.into_bytes();
        let at = "@gen 7 13\npay".len() - 1;
        corrupt[at] ^= 0x01;
        let (records, torn) = scan_journal(&corrupt);
        assert!(records.is_empty());
        assert!(torn);
    }

    #[test]
    fn every_prefix_of_the_journal_recovers_a_sealed_state() {
        let full = format!("{}{}", frame_record(1, "one\n"), frame_record(2, "two\n"));
        let first = frame_record(1, "one\n").len();
        for cut in 0..=full.len() {
            let (records, _) = scan_journal(&full.as_bytes()[..cut]);
            let expect: &[(u64, &str)] = if cut == full.len() {
                &[(1, "one\n"), (2, "two\n")]
            } else if cut >= first {
                &[(1, "one\n")]
            } else {
                &[]
            };
            let got: Vec<(u64, &str)> = records.iter().map(|(g, d)| (*g, d.as_str())).collect();
            assert_eq!(got, expect, "prefix of {cut} bytes");
        }
    }
}
