//! Staleness SLOs for the serving layer: how old is too old.
//!
//! The paper's §5 applications assume a *fresh* all-pairs matrix, and
//! ShorTor after it showed detour quality degrades with matrix age —
//! so the oracle must know, and enforce, how stale its dataset is. A
//! [`TtlPolicy`] maps the age of the served snapshot's data onto a
//! three-state ladder, mirroring the supervisor's quarantine
//! philosophy (degrade loudly, never silently serve garbage):
//!
//! * [`ServingState::Fresh`] — age below the soft TTL; answers are
//!   served unqualified.
//! * [`ServingState::Stale`] — past the soft TTL; every answer is
//!   flagged so clients can decide for themselves.
//! * [`ServingState::Degraded`] — past the hard TTL (or the dataset
//!   carries no timestamps at all): point lookups still
//!   serve-with-warning — a stale `R(x, y)` beats none for debugging —
//!   but ranking queries (`k_nearest`, `best_via`) refuse, because a
//!   stale *ordering* is exactly the silent wrong answer the SLO
//!   exists to prevent.
//!
//! Age is judged against the **newest measurement** in the snapshot,
//! not the publish instant: republishing unchanged data (a status-only
//! generation) must not reset the clock.

use netsim::SimDuration;

/// Where the serving layer sits on the freshness ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingState {
    /// Data age below the soft TTL.
    Fresh,
    /// Past the soft TTL: served, but flagged.
    Stale,
    /// Past the hard TTL (or unknowable age): ranking queries refuse.
    Degraded,
}

impl ServingState {
    /// Stable tag for gauges and trace fields.
    pub fn tag(&self) -> &'static str {
        match self {
            ServingState::Fresh => "fresh",
            ServingState::Stale => "stale",
            ServingState::Degraded => "degraded",
        }
    }

    /// Numeric encoding for the `oracle.stale.state` gauge.
    pub fn gauge(&self) -> i64 {
        match self {
            ServingState::Fresh => 0,
            ServingState::Stale => 1,
            ServingState::Degraded => 2,
        }
    }
}

/// Snapshot-level freshness SLOs, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlPolicy {
    /// Age at which answers start carrying a staleness flag.
    pub soft_ttl: SimDuration,
    /// Age at which ranking queries refuse outright.
    pub hard_ttl: SimDuration,
}

impl TtlPolicy {
    /// A policy with `soft ≤ hard` enforced at construction — an
    /// inverted ladder would make `Stale` unreachable and mask the
    /// misconfiguration forever.
    pub fn new(soft_ttl: SimDuration, hard_ttl: SimDuration) -> Result<TtlPolicy, String> {
        if soft_ttl > hard_ttl {
            return Err(format!(
                "soft TTL ({} ns) must not exceed hard TTL ({} ns)",
                soft_ttl.as_nanos(),
                hard_ttl.as_nanos()
            ));
        }
        Ok(TtlPolicy { soft_ttl, hard_ttl })
    }

    /// Judges a dataset whose newest measurement is `data_ns` against
    /// the virtual instant `now_ns`. `None` — a dataset with no
    /// timestamps at all — is `Degraded`: an age that cannot be
    /// certified cannot satisfy an SLO.
    pub fn judge(&self, data_ns: Option<u64>, now_ns: u64) -> ServingState {
        let Some(at) = data_ns else {
            return ServingState::Degraded;
        };
        let age = now_ns.saturating_sub(at);
        if age >= self.hard_ttl.as_nanos() {
            ServingState::Degraded
        } else if age >= self.soft_ttl.as_nanos() {
            ServingState::Stale
        } else {
            ServingState::Fresh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(soft_s: u64, hard_s: u64) -> TtlPolicy {
        TtlPolicy::new(
            SimDuration::from_secs(soft_s),
            SimDuration::from_secs(hard_s),
        )
        .unwrap()
    }

    #[test]
    fn ladder_boundaries_are_inclusive() {
        let p = policy(10, 100);
        let ns = |s: u64| SimDuration::from_secs(s).as_nanos();
        assert_eq!(p.judge(Some(0), ns(9)), ServingState::Fresh);
        assert_eq!(p.judge(Some(0), ns(10)), ServingState::Stale);
        assert_eq!(p.judge(Some(0), ns(99)), ServingState::Stale);
        assert_eq!(p.judge(Some(0), ns(100)), ServingState::Degraded);
        // Age is relative to the data, not the epoch.
        assert_eq!(p.judge(Some(ns(95)), ns(100)), ServingState::Fresh);
    }

    #[test]
    fn unknown_age_is_degraded_and_clock_skew_is_fresh() {
        let p = policy(10, 100);
        assert_eq!(p.judge(None, 0), ServingState::Degraded);
        // Data "from the future" (drained mid-round) saturates to age 0.
        assert_eq!(p.judge(Some(50), 10), ServingState::Fresh);
    }

    #[test]
    fn inverted_ladder_is_refused() {
        let err = TtlPolicy::new(SimDuration::from_secs(2), SimDuration::from_secs(1)).unwrap_err();
        assert!(err.contains("must not exceed"), "{err}");
    }

    #[test]
    fn zero_soft_ttl_is_immediately_stale() {
        let p = policy(0, 100);
        assert_eq!(p.judge(Some(5), 5), ServingState::Stale);
    }
}
