//! Immutable matrix snapshots: what the oracle actually serves.
//!
//! A [`Snapshot`] is a fully materialized, read-only copy of one
//! generation of the RTT dataset — the dense [`RttView`] for lookups,
//! per-pair measurement timestamps when the source carries them (the
//! merged shard checkpoint does; a bare TSV does not), and the
//! [`SnapshotMeta`] freshness/coverage summary every answer cites.
//! Snapshots are plain data (`Send + Sync`), so the service can hand
//! `Arc<Snapshot>`s to any number of reader threads and swap in a
//! fresher generation without blocking or mutating anything a reader
//! already holds.

use netsim::NodeId;
use obs::{Lineage, Origin};
use ting::shard::{parse_merged_document, ShardCoverage};
use ting::{RttMatrix, RttView};

/// Where a snapshot's data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// Built directly from an in-memory [`RttMatrix`].
    Matrix,
    /// Loaded from the [`RttMatrix::to_tsv`] cache format (§4.6).
    Tsv,
    /// Loaded from a CRC-sealed merged shard checkpoint document
    /// ([`ting::MergeOutcome::to_document`]) — carries per-pair
    /// timestamps and per-shard coverage.
    MergedCheckpoint,
}

/// Shard-coverage summary of a merged-checkpoint snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSummary {
    pub total: usize,
    pub live: usize,
    pub restarting: usize,
    pub dead: usize,
    /// Covered pairs the merge judged stale.
    pub stale_pairs: usize,
}

/// Freshness and coverage metadata for one snapshot generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    /// Publish generation, stamped by the service on swap-in (0 until
    /// then). Strictly increasing per oracle, so clients can detect a
    /// dataset change between two answers.
    pub version: u64,
    pub source: SnapshotSource,
    pub nodes: usize,
    /// Off-diagonal pairs the node set implies.
    pub total_pairs: usize,
    /// Off-diagonal pairs with a measurement.
    pub measured_pairs: usize,
    /// The instant the dataset was judged against (the merge's
    /// `now_ns`); `None` for sources without a clock.
    pub now_ns: Option<u64>,
    /// Oldest / newest measurement timestamp in the dataset.
    pub oldest_ns: Option<u64>,
    pub newest_ns: Option<u64>,
    /// Per-shard status tallies (merged checkpoints only).
    pub shards: Option<ShardSummary>,
}

impl SnapshotMeta {
    /// Measured fraction of the pair space, `[0, 1]` (1.0 when empty).
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            return 1.0;
        }
        self.measured_pairs as f64 / self.total_pairs as f64
    }
}

/// A query that cannot be answered against the snapshot's node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The named node is not in the snapshot's relay set.
    UnknownNode(NodeId),
    /// The serving layer refused a ranking query: the dataset aged
    /// past its hard TTL (or its age is unknowable), and a stale
    /// *ordering* is exactly the silent wrong answer the SLO exists to
    /// prevent. Point lookups still serve-with-warning in this state.
    Degraded {
        /// The dataset's age when judged, when known.
        age_ns: Option<u64>,
        /// The hard TTL it violated.
        hard_ttl_ns: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownNode(n) => write!(f, "unknown node {}", n.0),
            QueryError::Degraded {
                age_ns: Some(age),
                hard_ttl_ns,
            } => write!(
                f,
                "serving degraded: dataset age {age} ns exceeds hard TTL {hard_ttl_ns} ns"
            ),
            QueryError::Degraded {
                age_ns: None,
                hard_ttl_ns,
            } => write!(
                f,
                "serving degraded: dataset age unknown (hard TTL {hard_ttl_ns} ns)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A point-lookup answer: the RTT (if measured) plus the freshness
/// metadata a cache-consuming client needs to decide whether to trust
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointAnswer {
    /// `R(x, y)` in milliseconds; `None` when the pair is in the relay
    /// set but unmeasured. The diagonal is 0.
    pub rtt_ms: Option<f64>,
    /// When the pair was measured (merged-checkpoint snapshots only).
    pub measured_at_ns: Option<u64>,
    /// Age at the snapshot's `now_ns`, when both instants are known.
    pub age_ns: Option<u64>,
    /// Full provenance of the served cell — the shard and scan round
    /// that measured it plus this snapshot's generation. `None` when
    /// the source carries no lineage (bare matrices, v1 documents) or
    /// the pair is unmeasured.
    pub origin: Option<Origin>,
    /// The generation that produced this answer.
    pub snapshot_version: u64,
}

/// One relay in a k-nearest answer, or the via relay of a detour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub node: NodeId,
    pub rtt_ms: f64,
}

/// A k-nearest ranking with the provenance a consumer needs to audit
/// it: a ranking is only as trustworthy as its *stalest* input, so
/// `origin` cites the oldest contributing pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KNearestAnswer {
    /// Nearest relays, ascending by RTT, index order breaking ties.
    pub neighbors: Vec<Neighbor>,
    /// Provenance of the oldest pair contributing to the ranking
    /// (first-in-ranking-order on timestamp ties). `None` when the
    /// source carries no timestamps/lineage or the ranking is empty.
    pub origin: Option<Origin>,
    pub snapshot_version: u64,
}

/// A ShorTor-style via-relay answer for `x → y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetourAnswer {
    pub src: NodeId,
    pub dst: NodeId,
    /// Direct `R(src, dst)`; `None` when unmeasured.
    pub direct_ms: Option<f64>,
    /// Best via relay with its combined `R(src, v) + R(v, dst)`;
    /// `None` when no third relay has both legs measured.
    pub via: Option<Neighbor>,
    /// Freshness of the *cited path*: for a via answer, the **older**
    /// of the two leg measurements — a detour is only as fresh as its
    /// stalest leg; for a direct-only answer, the direct pair's
    /// instant. `None` when a contributing leg lacks a timestamp.
    pub measured_at_ns: Option<u64>,
    /// Age of `measured_at_ns` at the snapshot's `now_ns`, when both
    /// are known — what TTL policy judges for detours.
    pub age_ns: Option<u64>,
    /// Provenance of the *cited* pair: the older leg for a via answer,
    /// the direct pair otherwise — the same selection as
    /// `measured_at_ns`. `None` when the source carries no lineage.
    pub origin: Option<Origin>,
    pub snapshot_version: u64,
}

impl DetourAnswer {
    /// Whether routing through the via relay beats the direct path —
    /// the pair has a triangle-inequality violation. A detour with no
    /// measured direct path counts: it offers connectivity where the
    /// dataset offers none.
    pub fn is_improvement(&self) -> bool {
        match (&self.via, self.direct_ms) {
            (Some(v), Some(d)) => v.rtt_ms < d,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Relative saving in percent (Fig. 14's x-axis); 0 when no
    /// improvement or no measured direct path to compare against.
    pub fn savings_percent(&self) -> f64 {
        match (&self.via, self.direct_ms) {
            (Some(v), Some(d)) if v.rtt_ms < d => (1.0 - v.rtt_ms / d) * 100.0,
            _ => 0.0,
        }
    }
}

/// Sentinel for "no timestamp" in the dense timestamp table, chosen so
/// a legitimate `t = 0` (the virtual epoch) stays representable.
const NO_TIMESTAMP: u64 = u64::MAX;

/// Sentinel for "no lineage" in the dense lineage table — no real
/// measurement ever carries `shard = u32::MAX`.
const NO_LINEAGE: Lineage = Lineage {
    shard: u32::MAX,
    round: u64::MAX,
};

/// One immutable generation of the served dataset.
#[derive(Debug, Clone)]
pub struct Snapshot {
    view: RttView,
    /// Dense `n × n` measurement instants mirroring the view's layout;
    /// `None` for sources without timestamps.
    measured_at_ns: Option<Vec<u64>>,
    /// Dense `n × n` per-pair provenance mirroring the view's layout;
    /// `None` for sources without lineage (bare matrices, TSVs, v1
    /// documents).
    lineage: Option<Vec<Lineage>>,
    meta: SnapshotMeta,
}

impl Snapshot {
    /// Builds a snapshot straight from an in-memory matrix (no
    /// timestamps — e.g. a freshly measured dataset).
    pub fn from_matrix(matrix: &RttMatrix) -> Snapshot {
        let view = matrix.view();
        let n = view.len();
        let measured_pairs = view.measured_pairs();
        Snapshot {
            view,
            measured_at_ns: None,
            lineage: None,
            meta: SnapshotMeta {
                version: 0,
                source: SnapshotSource::Matrix,
                nodes: n,
                total_pairs: n * (n.max(1) - 1) / 2,
                measured_pairs,
                now_ns: None,
                oldest_ns: None,
                newest_ns: None,
                shards: None,
            },
        }
    }

    /// Loads the [`RttMatrix::to_tsv`] cache format.
    pub fn from_tsv(text: &str) -> Result<Snapshot, String> {
        let matrix = RttMatrix::from_tsv(text)?;
        let mut snap = Snapshot::from_matrix(&matrix);
        snap.meta.source = SnapshotSource::Tsv;
        Ok(snap)
    }

    /// Loads a CRC-sealed merged shard checkpoint document — the
    /// richest source: per-pair timestamps, the merge instant, and
    /// per-shard coverage all survive into the snapshot metadata.
    pub fn from_merged_document(text: &str) -> Result<Snapshot, String> {
        let doc = parse_merged_document(text)?;
        let mut snap = Snapshot::from_matrix(&doc.matrix);
        snap.meta.source = SnapshotSource::MergedCheckpoint;
        snap.meta.now_ns = Some(doc.now_ns);
        snap.meta.shards = Some(summarize_shards(&doc.shards));

        let n = snap.view.len();
        let mut table = vec![NO_TIMESTAMP; n * n];
        let (mut oldest, mut newest) = (None::<u64>, None::<u64>);
        for (&(a, b), &t) in &doc.measured_at_ns {
            let (Some(i), Some(j)) = (snap.view.index_of(a), snap.view.index_of(b)) else {
                continue;
            };
            table[i as usize * n + j as usize] = t;
            table[j as usize * n + i as usize] = t;
            oldest = Some(oldest.map_or(t, |o: u64| o.min(t)));
            newest = Some(newest.map_or(t, |o: u64| o.max(t)));
        }
        snap.measured_at_ns = Some(table);
        snap.meta.oldest_ns = oldest;
        snap.meta.newest_ns = newest;
        if !doc.lineage.is_empty() {
            let mut table = vec![NO_LINEAGE; n * n];
            for (&(a, b), &l) in &doc.lineage {
                let (Some(i), Some(j)) = (snap.view.index_of(a), snap.view.index_of(b)) else {
                    continue;
                };
                table[i as usize * n + j as usize] = l;
                table[j as usize * n + i as usize] = l;
            }
            snap.lineage = Some(table);
        }
        Ok(snap)
    }

    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// The underlying read view (for bulk consumers that want to work
    /// in index space themselves).
    pub fn view(&self) -> &RttView {
        &self.view
    }

    pub(crate) fn stamp_version(&mut self, version: u64) {
        self.meta.version = version;
    }

    fn resolve(&self, n: NodeId) -> Result<u32, QueryError> {
        self.view.index_of(n).ok_or(QueryError::UnknownNode(n))
    }

    /// The newest measurement instant in the dataset — what snapshot-
    /// level TTL policy judges. Tied to the *data*, not the publish:
    /// republishing unchanged pairs (a status-only generation) does
    /// not move it. `None` for sources without timestamps.
    pub fn freshness_ns(&self) -> Option<u64> {
        self.meta.newest_ns
    }

    /// The pair's measurement instant, in index space.
    fn timestamp_idx(&self, i: u32, j: u32) -> Option<u64> {
        let t = self.measured_at_ns.as_deref()?;
        let v = t[i as usize * self.view.len() + j as usize];
        if v == NO_TIMESTAMP {
            None
        } else {
            Some(v)
        }
    }

    /// Age of a measurement at the snapshot's `now_ns`.
    fn age_of(&self, measured_at_ns: Option<u64>) -> Option<u64> {
        match (self.meta.now_ns, measured_at_ns) {
            (Some(now), Some(at)) => Some(now.saturating_sub(at)),
            _ => None,
        }
    }

    /// The pair's provenance, in index space.
    fn lineage_idx(&self, i: u32, j: u32) -> Option<Lineage> {
        let t = self.lineage.as_deref()?;
        let l = t[i as usize * self.view.len() + j as usize];
        if l == NO_LINEAGE {
            None
        } else {
            Some(l)
        }
    }

    /// The pair's full origin triple: lineage plus the generation this
    /// snapshot serves it under.
    fn origin_idx(&self, i: u32, j: u32) -> Option<Origin> {
        self.lineage_idx(i, j)
            .map(|l| Origin::of(l, self.meta.version))
    }

    /// Point lookup `R(x, y)` with freshness metadata.
    #[inline]
    pub fn rtt(&self, x: NodeId, y: NodeId) -> Result<PointAnswer, QueryError> {
        let (i, j) = (self.resolve(x)?, self.resolve(y)?);
        let rtt_ms = self.view.get_idx(i, j);
        let measured_at_ns = self.timestamp_idx(i, j);
        let age_ns = self.age_of(measured_at_ns);
        Ok(PointAnswer {
            rtt_ms,
            measured_at_ns,
            age_ns,
            snapshot_version: self.meta.version,
            origin: self.origin_idx(i, j),
        })
    }

    /// The `k` relays nearest to `x` (measured pairs only, `x` itself
    /// excluded), ascending by RTT with index order breaking ties —
    /// fully deterministic for a given snapshot.
    pub fn k_nearest(&self, x: NodeId, k: usize) -> Result<KNearestAnswer, QueryError> {
        let i = self.resolve(x)?;
        let row = self.view.row(i);
        let mut candidates: Vec<(f64, u32)> = row
            .iter()
            .enumerate()
            .filter(|&(v, &ms)| v as u32 != i && !ms.is_nan())
            .map(|(v, &ms)| (ms, v as u32))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        // The answer's origin is its weakest link: the *stalest*
        // contributing pair, first-in-order breaking timestamp ties.
        let mut stalest: Option<(u64, u32)> = None;
        for &(_, v) in &candidates {
            if let Some(t) = self.timestamp_idx(i, v) {
                if stalest.is_none_or(|(best, _)| t < best) {
                    stalest = Some((t, v));
                }
            }
        }
        let origin = stalest.and_then(|(_, v)| self.origin_idx(i, v));
        Ok(KNearestAnswer {
            neighbors: candidates
                .into_iter()
                .map(|(rtt_ms, v)| Neighbor {
                    node: self.view.node(v),
                    rtt_ms,
                })
                .collect(),
            origin,
            snapshot_version: self.meta.version,
        })
    }

    /// ShorTor-style detour search: the via relay minimizing
    /// `R(x, v) + R(v, y)`, via the same kernel `analysis::tiv` uses.
    pub fn best_via(&self, x: NodeId, y: NodeId) -> Result<DetourAnswer, QueryError> {
        let (i, j) = (self.resolve(x)?, self.resolve(y)?);
        let best = self.view.best_detour(i, j);
        // A detour is only as fresh as its stalest leg: cite the older
        // of the two leg instants so TTL policy applies to detours.
        // `cited` is the pair whose provenance the answer reports: the
        // older leg of a detour, or the direct pair when no via exists.
        let (measured_at_ns, cited) = match &best {
            Some(b) => match (self.timestamp_idx(i, b.via), self.timestamp_idx(b.via, j)) {
                (Some(p), Some(q)) if p <= q => (Some(p), Some((i, b.via))),
                (Some(_), Some(q)) => (Some(q), Some((b.via, j))),
                _ => (None, None),
            },
            None => (self.timestamp_idx(i, j), Some((i, j))),
        };
        let via = best.map(|best| Neighbor {
            node: self.view.node(best.via),
            rtt_ms: best.rtt_ms,
        });
        Ok(DetourAnswer {
            src: x,
            dst: y,
            direct_ms: self.view.get_idx(i, j),
            via,
            measured_at_ns,
            age_ns: self.age_of(measured_at_ns),
            snapshot_version: self.meta.version,
            origin: cited.and_then(|(p, q)| self.origin_idx(p, q)),
        })
    }
}

fn summarize_shards(shards: &[ShardCoverage]) -> ShardSummary {
    let mut s = ShardSummary {
        total: shards.len(),
        ..ShardSummary::default()
    };
    for c in shards {
        match c.status {
            "live" => s.live += 1,
            "restarting" => s.restarting += 1,
            _ => s.dead += 1,
        }
        s.stale_pairs += c.stale;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> RttMatrix {
        let mut m = RttMatrix::new(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        m.set(NodeId(1), NodeId(2), 10.0);
        m.set(NodeId(1), NodeId(3), 30.0);
        m.set(NodeId(2), NodeId(3), 5.0);
        // (1, 4), (2, 4), (3, 4) unmeasured.
        m
    }

    #[test]
    fn point_lookup_and_coverage() {
        let s = Snapshot::from_matrix(&matrix());
        assert_eq!(s.meta().total_pairs, 6);
        assert_eq!(s.meta().measured_pairs, 3);
        assert!((s.meta().coverage() - 0.5).abs() < 1e-12);
        let a = s.rtt(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(a.rtt_ms, Some(10.0));
        assert_eq!(a.measured_at_ns, None, "matrix sources carry no timestamps");
        assert_eq!(s.rtt(NodeId(1), NodeId(4)).unwrap().rtt_ms, None);
        assert_eq!(s.rtt(NodeId(3), NodeId(3)).unwrap().rtt_ms, Some(0.0));
        assert_eq!(
            s.rtt(NodeId(9), NodeId(1)),
            Err(QueryError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn k_nearest_orders_and_excludes() {
        let s = Snapshot::from_matrix(&matrix());
        let near = s.k_nearest(NodeId(1), 10).unwrap();
        // Node 4 is unmeasured from 1; node 1 itself excluded.
        assert_eq!(
            near.neighbors,
            vec![
                Neighbor {
                    node: NodeId(2),
                    rtt_ms: 10.0
                },
                Neighbor {
                    node: NodeId(3),
                    rtt_ms: 30.0
                },
            ]
        );
        assert_eq!(near.origin, None, "matrix sources carry no lineage");
        assert_eq!(s.k_nearest(NodeId(1), 1).unwrap().neighbors.len(), 1);
        assert_eq!(s.k_nearest(NodeId(4), 5).unwrap().neighbors, vec![]);
        assert!(s.k_nearest(NodeId(9), 1).is_err());
    }

    #[test]
    fn k_nearest_breaks_ties_by_index() {
        let mut m = RttMatrix::new(vec![NodeId(5), NodeId(6), NodeId(7)]);
        m.set(NodeId(5), NodeId(6), 4.0);
        m.set(NodeId(5), NodeId(7), 4.0);
        let s = Snapshot::from_matrix(&m);
        let near = s.k_nearest(NodeId(5), 2).unwrap().neighbors;
        assert_eq!(near[0].node, NodeId(6));
        assert_eq!(near[1].node, NodeId(7));
    }

    #[test]
    fn detour_answers_and_improvement() {
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), 100.0);
        m.set(NodeId(0), NodeId(2), 20.0);
        m.set(NodeId(1), NodeId(2), 20.0);
        let s = Snapshot::from_matrix(&m);
        let d = s.best_via(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(d.direct_ms, Some(100.0));
        assert_eq!(
            d.via,
            Some(Neighbor {
                node: NodeId(2),
                rtt_ms: 40.0
            })
        );
        assert!(d.is_improvement());
        assert!((d.savings_percent() - 60.0).abs() < 1e-9);
        // The cheap legs have no improving detour.
        let d = s.best_via(NodeId(0), NodeId(2)).unwrap();
        assert!(!d.is_improvement());
        assert_eq!(d.savings_percent(), 0.0);
    }

    #[test]
    fn detour_freshness_cites_the_older_leg() {
        use netsim::SimTime;
        use std::collections::HashMap;
        use ting::shard::MergeOutcome;
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), 100.0);
        m.set(NodeId(0), NodeId(2), 20.0);
        m.set(NodeId(1), NodeId(2), 20.0);
        let mut measured_at = HashMap::new();
        measured_at.insert((NodeId(0), NodeId(1)), SimTime(5_000));
        measured_at.insert((NodeId(0), NodeId(2)), SimTime(1_000));
        measured_at.insert((NodeId(1), NodeId(2)), SimTime(4_000));
        let mut lineage = HashMap::new();
        lineage.insert((NodeId(0), NodeId(1)), Lineage { shard: 0, round: 5 });
        lineage.insert((NodeId(0), NodeId(2)), Lineage { shard: 1, round: 2 });
        lineage.insert((NodeId(1), NodeId(2)), Lineage { shard: 2, round: 4 });
        let doc = MergeOutcome {
            matrix: m,
            measured_at,
            lineage,
            shards: vec![],
            now: SimTime(10_000),
        }
        .to_document();
        let s = Snapshot::from_merged_document(&doc).unwrap();
        assert_eq!(s.freshness_ns(), Some(5_000));
        let d = s.best_via(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(d.via.unwrap().node, NodeId(2));
        // Legs (0,2) @ 1000 and (2,1) @ 4000: the detour is exactly as
        // fresh as its *stalest* leg — the min, never the max.
        assert_eq!(d.measured_at_ns, Some(1_000));
        assert_eq!(d.age_ns, Some(9_000));
        // The origin cites that same older leg's probe.
        assert_eq!(
            d.origin,
            Some(Origin {
                shard: 1,
                round: 2,
                generation: s.meta().version,
            })
        );
        // A point answer cites its own pair's probe.
        let p = s.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(p.origin.unwrap().shard, 0);
        assert_eq!(p.origin.unwrap().round, 5);
        // k-nearest cites the stalest contributing pair: from 0 the
        // neighbors are 2 (@1000) and 1 (@5000) — (0,2) is older.
        let near = s.k_nearest(NodeId(0), 2).unwrap();
        assert_eq!(near.origin.unwrap().shard, 1);
        assert_eq!(near.origin.unwrap().round, 2);

        // With no candidate via relay the answer cites the direct pair.
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), 50.0);
        let mut measured_at = HashMap::new();
        measured_at.insert((NodeId(0), NodeId(1)), SimTime(7_000));
        let mut lineage = HashMap::new();
        lineage.insert((NodeId(0), NodeId(1)), Lineage { shard: 3, round: 9 });
        let doc = MergeOutcome {
            matrix: m,
            measured_at,
            lineage,
            shards: vec![],
            now: SimTime(10_000),
        }
        .to_document();
        let s = Snapshot::from_merged_document(&doc).unwrap();
        let d = s.best_via(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(d.via, None);
        assert_eq!(d.measured_at_ns, Some(7_000));
        assert_eq!(d.age_ns, Some(3_000));
        assert_eq!(d.origin.unwrap().shard, 3);
        assert_eq!(d.origin.unwrap().round, 9);

        // Timestamp-free sources stay `None` all the way through.
        let d = Snapshot::from_matrix(&matrix())
            .best_via(NodeId(1), NodeId(2))
            .unwrap();
        assert_eq!((d.measured_at_ns, d.age_ns), (None, None));
        assert_eq!(d.origin, None);
    }

    #[test]
    fn tsv_snapshot_roundtrip_and_errors() {
        let m = matrix();
        let s = Snapshot::from_tsv(&m.to_tsv()).unwrap();
        assert_eq!(s.meta().source, SnapshotSource::Tsv);
        assert_eq!(s.rtt(NodeId(2), NodeId(3)).unwrap().rtt_ms, Some(5.0));
        // Load-path failures surface the matrix parser's errors.
        let err = Snapshot::from_tsv("junk\n").unwrap_err();
        assert!(err.contains("unsupported matrix header"), "{err}");
    }
}
