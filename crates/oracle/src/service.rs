//! The long-running query service: publish/swap on one side, wait-free
//! reads on the other.
//!
//! The [`Oracle`] owns the mutable end — it stamps each published
//! [`Snapshot`] with a strictly increasing version and swaps it behind
//! an `RwLock<Arc<Snapshot>>`. The lock is held only long enough to
//! clone or replace the `Arc` (nanoseconds), never while answering a
//! query, so ingest-side swaps never block readers and a reader
//! holding an old `Arc` keeps a perfectly consistent generation for as
//! long as it likes — snapshot isolation by immutability.
//!
//! [`OracleReader`] is the `Send + Sync` handle for reader threads; it
//! shares the swap cell but carries no metrics (the `obs` registry is
//! deliberately single-threaded). Queries through the `Oracle` itself
//! tick per-family counters and record answered-RTT histograms under
//! the `oracle.*` names registered in `obs::names`.

use crate::snapshot::{DetourAnswer, KNearestAnswer, PointAnswer, QueryError, Snapshot};
use netsim::NodeId;
use obs::{names, Counter, Hist, Obs, Value};
use std::sync::{Arc, RwLock};

/// Pre-resolved metric handles for the query hot path.
#[derive(Debug, Clone, Default)]
struct Metrics {
    point: Counter,
    nearest: Counter,
    detour: Counter,
    unknown: Counter,
    unmeasured: Counter,
    h_point: Hist,
    h_nearest: Hist,
    h_detour: Hist,
}

impl Metrics {
    fn new(obs: &Obs) -> Metrics {
        Metrics {
            point: obs.counter_handle(names::ORACLE_QUERY_POINT),
            nearest: obs.counter_handle(names::ORACLE_QUERY_NEAREST),
            detour: obs.counter_handle(names::ORACLE_QUERY_DETOUR),
            unknown: obs.counter_handle(names::ORACLE_QUERY_UNKNOWN_NODE),
            unmeasured: obs.counter_handle(names::ORACLE_QUERY_UNMEASURED),
            h_point: obs.hist_handle(names::ORACLE_ANSWER_POINT_US),
            h_nearest: obs.hist_handle(names::ORACLE_ANSWER_NEAREST_US),
            h_detour: obs.hist_handle(names::ORACLE_ANSWER_DETOUR_US),
        }
    }
}

/// The service-side handle: owns publishing and the instrumented query
/// front. Single-threaded by design (the `obs` registry is `Rc`-based);
/// hand [`OracleReader`]s to concurrent consumers.
#[derive(Debug)]
pub struct Oracle {
    shared: Arc<RwLock<Arc<Snapshot>>>,
    version: u64,
    obs: Obs,
    metrics: Metrics,
}

impl Oracle {
    /// Creates a service serving `initial` as generation 1, without
    /// observability.
    pub fn new(initial: Snapshot) -> Oracle {
        Oracle::with_obs(initial, Obs::off())
    }

    /// Creates a service with metrics/trace wired to `obs`.
    pub fn with_obs(mut initial: Snapshot, obs: Obs) -> Oracle {
        initial.stamp_version(1);
        let metrics = Metrics::new(&obs);
        let oracle = Oracle {
            shared: Arc::new(RwLock::new(Arc::new(initial))),
            version: 1,
            obs,
            metrics,
        };
        let at = oracle.snapshot().meta().now_ns;
        oracle.note_swap(at);
        oracle
    }

    /// Publishes a fresher generation: stamps the next version and
    /// swaps it in. Readers already holding the previous `Arc` are
    /// untouched; new reads see the new generation. Returns the
    /// published version.
    pub fn publish(&mut self, snapshot: Snapshot) -> u64 {
        self.publish_versioned(snapshot, self.version + 1)
    }

    /// Publishes under an explicit version number. The journaled
    /// pipeline keeps its generation counter in lockstep with its
    /// publish journal, so a crash-recovery republish must carry the
    /// *same* number an uninterrupted run would have — not whatever
    /// `publish` would hand out next. Versions stay strictly
    /// increasing; a regression panics (it would silently break every
    /// client's dataset-change detection).
    pub fn publish_versioned(&mut self, snapshot: Snapshot, version: u64) -> u64 {
        let at = snapshot.meta().now_ns;
        self.publish_versioned_at(snapshot, version, at)
    }

    /// [`Oracle::publish_versioned`] with an explicit swap instant for
    /// the trace. A live publish happens at the dataset's own `now`,
    /// but a crash recovery republishes an *old* dataset at a *later*
    /// instant — stamping the dataset's time would run the trace clock
    /// backwards.
    pub fn publish_versioned_at(
        &mut self,
        mut snapshot: Snapshot,
        version: u64,
        swap_t_ns: Option<u64>,
    ) -> u64 {
        assert!(
            version > self.version,
            "oracle versions are strictly increasing: {} -> {version}",
            self.version
        );
        self.version = version;
        snapshot.stamp_version(version);
        let next = Arc::new(snapshot);
        *self.shared.write().expect("oracle swap cell poisoned") = next;
        self.note_swap(swap_t_ns);
        version
    }

    fn note_swap(&self, t_ns: Option<u64>) {
        let snap = self.snapshot();
        let meta = snap.meta();
        self.obs
            .set_gauge("oracle.snapshot.version", meta.version as i64);
        self.obs
            .set_gauge("oracle.snapshot.measured_pairs", meta.measured_pairs as i64);
        // A swap with no instant (a matrix-source bootstrap — no
        // clock) has no place on the virtual-time event log; the
        // gauges above still record it.
        if self.obs.is_tracing() {
            if let Some(t_ns) = t_ns {
                self.obs.event(
                    names::ORACLE_SNAPSHOT_SWAP,
                    t_ns,
                    vec![
                        ("version", Value::U64(meta.version)),
                        ("nodes", Value::U64(meta.nodes as u64)),
                        ("measured_pairs", Value::U64(meta.measured_pairs as u64)),
                    ],
                );
            }
        }
    }

    /// The currently served generation.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared
            .read()
            .expect("oracle swap cell poisoned")
            .clone()
    }

    /// The latest published version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A `Send + Sync` handle for concurrent reader threads.
    pub fn reader(&self) -> OracleReader {
        OracleReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Instrumented point lookup `R(x, y)`.
    #[inline]
    pub fn rtt(&self, x: NodeId, y: NodeId) -> Result<PointAnswer, QueryError> {
        self.metrics.point.inc();
        let answer = self.snapshot().rtt(x, y);
        match &answer {
            Ok(a) => match a.rtt_ms {
                Some(ms) => self.metrics.h_point.record_ms(ms),
                None => self.metrics.unmeasured.inc(),
            },
            Err(_) => self.metrics.unknown.inc(),
        }
        answer
    }

    /// Instrumented k-nearest-relay query.
    pub fn k_nearest(&self, x: NodeId, k: usize) -> Result<KNearestAnswer, QueryError> {
        self.metrics.nearest.inc();
        let answer = self.snapshot().k_nearest(x, k);
        match &answer {
            Ok(a) => {
                for n in &a.neighbors {
                    self.metrics.h_nearest.record_ms(n.rtt_ms);
                }
            }
            Err(_) => self.metrics.unknown.inc(),
        }
        answer
    }

    /// Instrumented ShorTor-style via-relay detour search.
    pub fn best_via(&self, x: NodeId, y: NodeId) -> Result<DetourAnswer, QueryError> {
        self.metrics.detour.inc();
        let answer = self.snapshot().best_via(x, y);
        match &answer {
            Ok(d) => {
                if let Some(v) = &d.via {
                    self.metrics.h_detour.record_ms(v.rtt_ms);
                }
            }
            Err(_) => self.metrics.unknown.inc(),
        }
        answer
    }
}

/// A thread-safe read handle: shares the oracle's swap cell, never
/// blocks on (or observes a half-applied) publish. Clone freely.
#[derive(Debug, Clone)]
pub struct OracleReader {
    shared: Arc<RwLock<Arc<Snapshot>>>,
}

impl OracleReader {
    /// The currently served generation. Hold the `Arc` to pin a
    /// consistent dataset across many queries.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared
            .read()
            .expect("oracle swap cell poisoned")
            .clone()
    }

    /// Convenience point lookup against the current generation.
    pub fn rtt(&self, x: NodeId, y: NodeId) -> Result<PointAnswer, QueryError> {
        self.snapshot().rtt(x, y)
    }

    /// Convenience k-nearest against the current generation.
    pub fn k_nearest(&self, x: NodeId, k: usize) -> Result<KNearestAnswer, QueryError> {
        self.snapshot().k_nearest(x, k)
    }

    /// Convenience detour search against the current generation.
    pub fn best_via(&self, x: NodeId, y: NodeId) -> Result<DetourAnswer, QueryError> {
        self.snapshot().best_via(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{names, Obs, ObsConfig};
    use ting::RttMatrix;

    fn snap(value: f64) -> Snapshot {
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), value);
        m.set(NodeId(0), NodeId(2), value);
        m.set(NodeId(1), NodeId(2), value);
        Snapshot::from_matrix(&m)
    }

    #[test]
    fn publish_bumps_versions_and_answers_cite_them() {
        let mut oracle = Oracle::new(snap(5.0));
        assert_eq!(oracle.version(), 1);
        let a = oracle.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!((a.rtt_ms, a.snapshot_version), (Some(5.0), 1));
        assert_eq!(oracle.publish(snap(6.0)), 2);
        let a = oracle.rtt(NodeId(0), NodeId(1)).unwrap();
        assert_eq!((a.rtt_ms, a.snapshot_version), (Some(6.0), 2));
    }

    #[test]
    fn held_snapshot_survives_a_publish() {
        let mut oracle = Oracle::new(snap(5.0));
        let held = oracle.snapshot();
        oracle.publish(snap(6.0));
        assert_eq!(held.rtt(NodeId(0), NodeId(1)).unwrap().rtt_ms, Some(5.0));
        assert_eq!(
            oracle.snapshot().rtt(NodeId(0), NodeId(1)).unwrap().rtt_ms,
            Some(6.0)
        );
    }

    #[test]
    fn query_families_tick_their_counters() {
        let obs = Obs::new(ObsConfig::Metrics);
        let oracle = Oracle::with_obs(snap(5.0), obs.clone());
        let _ = oracle.rtt(NodeId(0), NodeId(1));
        let _ = oracle.rtt(NodeId(0), NodeId(9)); // unknown node
        let _ = oracle.k_nearest(NodeId(0), 2);
        let _ = oracle.best_via(NodeId(0), NodeId(1));
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_POINT), 2);
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_NEAREST), 1);
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_DETOUR), 1);
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_UNKNOWN_NODE), 1);
        let h = obs.histogram(names::ORACLE_ANSWER_POINT_US).unwrap();
        assert_eq!(h.count(), 1);
        let h = obs.histogram(names::ORACLE_ANSWER_NEAREST_US).unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn unmeasured_pairs_count_separately_from_unknown_nodes() {
        let obs = Obs::new(ObsConfig::Metrics);
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1)]);
        m.set(NodeId(0), NodeId(1), 1.0);
        let mut sparse = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        sparse.set(NodeId(0), NodeId(1), 1.0);
        let oracle = Oracle::with_obs(Snapshot::from_matrix(&sparse), obs.clone());
        let _ = oracle.rtt(NodeId(0), NodeId(2)); // in set, unmeasured
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_UNMEASURED), 1);
        assert_eq!(obs.counter_value(names::ORACLE_QUERY_UNKNOWN_NODE), 0);
    }

    #[test]
    fn swap_emits_the_registered_trace_event() {
        use std::collections::HashMap;
        use ting::shard::MergeOutcome;
        let obs = Obs::new(ObsConfig::Trace);
        // Matrix-source snapshots carry no dataset instant: swapping
        // them moves gauges but must not enter the virtual-time event
        // log (a t=0 record would run a live trace's clock backwards).
        let mut oracle = Oracle::with_obs(snap(5.0), obs.clone());
        oracle.publish(snap(6.0));
        let swaps = |obs: &Obs| {
            obs.events()
                .into_iter()
                .filter(|e| e.name == names::ORACLE_SNAPSHOT_SWAP)
                .count()
        };
        assert_eq!(swaps(&obs), 0, "clockless snapshots stay off the log");

        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1)]);
        m.set(NodeId(0), NodeId(1), 7.0);
        let mut measured_at = HashMap::new();
        measured_at.insert((NodeId(0), NodeId(1)), netsim::SimTime(5_000));
        let doc = MergeOutcome {
            matrix: m,
            measured_at,
            lineage: HashMap::new(),
            shards: vec![],
            now: netsim::SimTime(10_000),
        }
        .to_document();
        oracle.publish(Snapshot::from_merged_document(&doc).unwrap());
        assert_eq!(swaps(&obs), 1, "a timestamped publish is traced");
    }
}
