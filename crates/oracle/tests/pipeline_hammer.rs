//! Publish-under-load hammer for the live pipeline: one writer thread
//! of truth (the pipeline is single-threaded by design) interleaves
//! journal appends, oracle swaps, and journal recoveries while four
//! reader threads hammer the swap cell. The invariant under fire: **no
//! reader ever observes a generation that was not sealed in the
//! journal first**, and no recovery ever reports one either — the
//! seal-before-swap ordering is what makes a kill at any instant
//! recoverable.

use netsim::{NodeId, SimDuration, SimTime};
use oracle::{Journal, Pipeline, PipelineConfig, ServingState, TtlPolicy};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use ting::obs::Lineage;
use ting::shard::{DeltaPair, MergeDelta};

const ROUNDS: u64 = 200;
const READERS: usize = 4;
const BOOTSTRAP_GEN: u64 = 1;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ting-phammer-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> PipelineConfig {
    PipelineConfig {
        queue_cap: 4,
        publish_interval: SimDuration(0),
        staleness: SimDuration::from_hours(24),
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(24)).unwrap(),
        slo: None,
    }
}

fn nodes() -> Vec<NodeId> {
    (0..6).map(NodeId).collect()
}

/// A synthetic one-shard delta: round `seq` measures one pair at a
/// deterministic instant, so every publish changes the dataset.
fn delta(seq: u64) -> MergeDelta {
    let a = NodeId((seq % 5) as u32);
    let b = NodeId((seq % 5) as u32 + 1);
    MergeDelta {
        seq,
        pairs: vec![DeltaPair {
            a,
            b,
            rtt_ms: 1.0 + seq as f64,
            measured_at: SimTime(seq * 1_000),
            lineage: Lineage {
                shard: 0,
                round: seq,
            },
        }],
        statuses: vec!["live"],
        now: SimTime(seq * 1_000),
    }
}

#[test]
fn readers_never_observe_an_unsealed_generation() {
    let dir = tempdir("storm");
    let mut p = Pipeline::with_obs(
        nodes(),
        1,
        config(),
        ting::obs::Obs::off(),
        Some(Journal::open(&dir).unwrap()),
    );

    // Generations recorded as sealed *before* the corresponding swap
    // is allowed to happen — mirroring the pipeline's own append →
    // seal → swap ordering. A reader seeing a version outside this set
    // (plus the bootstrap generation) saw state that could be lost by
    // a kill.
    let sealed: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let mut observers = Vec::new();
        for _ in 0..READERS {
            let reader = p.reader();
            let sealed = &sealed;
            let stop = &stop;
            observers.push(s.spawn(move || {
                let mut seen = HashSet::new();
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    let version = snap.meta().version;
                    if seen.insert(version) && version != BOOTSTRAP_GEN {
                        assert!(
                            sealed.lock().unwrap().contains(&version),
                            "reader observed generation {version} before it was sealed"
                        );
                    }
                    // Exercise the dataset, not just the version: the
                    // snapshot must be internally consistent.
                    let _ = snap.rtt(NodeId(0), NodeId(1));
                }
                seen
            }));
        }

        for seq in 1..=ROUNDS {
            p.offer(delta(seq));
            // Seal-before-swap: the generation this tick will publish
            // enters the sealed set first, exactly as the journal
            // append commits before the oracle swap.
            sealed.lock().unwrap().insert(p.generation() + 1);
            let published = p.tick(SimTime(seq * 1_000)).unwrap();
            assert_eq!(published, Some(seq + 1));

            // Interleave read-only recoveries against the live
            // directory: whatever they find must already be sealed.
            if seq % 16 == 0 {
                let r = Journal::open(&dir).unwrap().recover().unwrap();
                let (gen, _) = r.serve().expect("publishes have happened");
                assert!(
                    sealed.lock().unwrap().contains(gen),
                    "recovery surfaced unsealed generation {gen}"
                );
                assert!(!r.torn_tail, "writer-only traffic never tears the log");
            }
        }
        stop.store(true, Ordering::Relaxed);

        let mut total_seen = HashSet::new();
        for o in observers {
            let seen = o.join().unwrap();
            let sealed = sealed.lock().unwrap();
            assert!(
                seen.iter()
                    .all(|v| *v == BOOTSTRAP_GEN || sealed.contains(v)),
                "a reader retired with an unsealed generation"
            );
            drop(sealed);
            total_seen.extend(seen);
        }
        // Liveness: the readers actually raced the publisher — they
        // saw generations beyond bootstrap, and the final generation
        // is observable after the storm.
        assert!(total_seen.len() > 1, "readers never saw a publish");
        assert_eq!(p.generation(), ROUNDS + 1);
        assert_eq!(p.reader().snapshot().meta().version, ROUNDS + 1);
    });

    // The directory the storm left behind is a clean, converged
    // journal: recovery serves exactly the final generation.
    let (recovered, r) = Pipeline::recover(
        nodes(),
        1,
        config(),
        ting::obs::Obs::off(),
        Journal::open(&dir).unwrap(),
        SimTime(ROUNDS * 1_000),
    )
    .unwrap();
    assert_eq!(recovered.generation(), ROUNDS + 1);
    assert_eq!(recovered.serving_document(), p.serving_document());
    assert!(r.pending.is_none());
    assert_eq!(recovered.state(), ServingState::Fresh);
    std::fs::remove_dir_all(&dir).unwrap();
}
