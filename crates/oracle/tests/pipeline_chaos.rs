//! Chaos acceptance for the live scan→serve pipeline: a kill at **any
//! byte** of the publish journal, in any crash window (mid-append,
//! post-seal pre-swap, mid-swap, mid-truncate), must recover to
//! exactly the last sealed generation — and resuming the delta stream
//! from there must converge bit-identically to an uninterrupted run.
//! Plus the staleness SLO: hard-TTL expiry flips serving to `Degraded`
//! at a deterministic virtual instant and recovers on the next
//! publish of fresh data.

use netsim::{NodeId, SimDuration, SimTime};
use oracle::journal::{frame_record, render_published, Journal};
use oracle::{Pipeline, PipelineConfig, QueryError, ServingState, TtlPolicy};
use std::path::PathBuf;
use ting::obs::{Lineage, Obs};
use ting::shard::{DeltaPair, MergeDelta, Supervisor, SupervisorConfig};
use ting::{checkpoint, ScannerConfig, TingConfig};
use tor_sim::TorNetworkBuilder;

const SHARDS: usize = 3;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ting-pchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        queue_cap: 8,
        publish_interval: SimDuration(0),
        // Must mirror the scanners feeding the stream, or coverage
        // rows drift from an offline merge.
        staleness: ScannerConfig::default().staleness,
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(24)).unwrap(),
        slo: None,
    }
}

/// A deterministic supervised scan: returns the node set, the drained
/// per-round delta stream, and the offline merge document at the final
/// instant (the ground truth every pipeline variant must reproduce).
fn fixture(rounds: usize) -> (Vec<NodeId>, Vec<MergeDelta>, String) {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let config = SupervisorConfig {
        shards: SHARDS,
        scanner: ScannerConfig {
            pairs_per_round: 7,
            ..ScannerConfig::default()
        },
        heartbeat_timeout: SimDuration::from_hours(4),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    };
    let mut sup = Supervisor::new(nodes.clone(), config, TingConfig::fast());
    sup.load_locations(&net);
    let mut deltas = Vec::new();
    for _ in 0..rounds {
        sup.run_round(&mut net);
        deltas.push(sup.take_delta(net.sim.now()));
    }
    let merged = sup.merge(net.sim.now()).unwrap().to_document();
    (nodes, deltas, merged)
}

/// Feeds `deltas` through a pipeline, one tick per delta.
fn drive(p: &mut Pipeline, deltas: &[MergeDelta]) {
    for d in deltas {
        let now = d.now;
        p.offer(d.clone());
        p.tick(now).unwrap();
    }
}

/// The uninterrupted journaled run is the baseline everything else is
/// judged against: it matches a volatile (journal-less) run, matches
/// the offline merge, and leaves a converged journal directory
/// (published = served generation, no pending record, empty log).
#[test]
fn journaled_run_matches_volatile_run_and_offline_merge() {
    let (nodes, deltas, merged) = fixture(4);
    let dir = tempdir("baseline");

    let mut journaled = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Some(Journal::open(&dir).unwrap()),
    );
    let mut volatile = Pipeline::new(nodes, SHARDS, pipeline_config());
    drive(&mut journaled, &deltas);
    drive(&mut volatile, &deltas);

    assert_eq!(journaled.serving_document(), volatile.serving_document());
    assert_eq!(
        journaled.serving_document(),
        merged,
        "the pipeline serves exactly what an offline merge would produce"
    );
    assert_eq!(journaled.generation(), deltas.len() as u64 + 1);

    let r = Journal::open(&dir).unwrap().recover().unwrap();
    let (gen, doc) = r.published.expect("published generation on disk");
    assert_eq!(gen, journaled.generation());
    assert_eq!(doc, journaled.serving_document());
    assert!(r.pending.is_none(), "a finished publish leaves no pending");
    assert!(!r.torn_tail);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Byte-offset fault injection over the append window: for **every**
/// prefix length of the staged record, recovery serves exactly the
/// last sealed generation (the previous one until the final byte is
/// down, the new one after), and resuming the remaining delta stream
/// converges bit-identically to the uninterrupted run.
#[test]
fn kill_at_any_append_byte_recovers_the_last_sealed_generation() {
    let (nodes, deltas, _) = fixture(3);
    let mut baseline = Pipeline::new(nodes.clone(), SHARDS, pipeline_config());
    // Per-generation documents: docs[i] is what generation i + 2
    // served, having consumed deltas[..=i].
    let mut docs = Vec::new();
    for d in &deltas {
        let now = d.now;
        baseline.offer(d.clone());
        baseline.tick(now).unwrap();
        docs.push((baseline.generation(), baseline.serving_document(), now));
    }
    let (final_gen, ref final_doc, _) = *docs.last().unwrap();

    // Crash during the append of generation g1 = docs[1].0, with
    // generation g0 = docs[0].0 already published.
    let (g0, ref doc0, now0) = docs[0];
    let (g1, ref doc1, _) = docs[1];
    let frame = frame_record(g1, doc1);
    for cut in 0..=frame.len() {
        let dir = tempdir("append");
        let j = Journal::open(&dir).unwrap();
        j.append(g0, doc0).unwrap();
        j.mark_published(g0, doc0).unwrap();
        std::fs::write(j.journal_path(), &frame.as_bytes()[..cut]).unwrap();

        let sealed_next = cut == frame.len();
        let expect_gen = if sealed_next { g1 } else { g0 };
        let expect_doc = if sealed_next { doc1 } else { doc0 };
        let (mut p, r) = Pipeline::recover(
            nodes.clone(),
            SHARDS,
            pipeline_config(),
            Obs::off(),
            Journal::open(&dir).unwrap(),
            now0,
        )
        .unwrap();
        assert_eq!(p.generation(), expect_gen, "cut at byte {cut}");
        assert_eq!(&p.serving_document(), expect_doc, "cut at byte {cut}");
        assert_eq!(r.pending.is_some(), sealed_next, "cut at byte {cut}");

        // Resume the stream from the recovered generation onward: the
        // end state must be bit-identical to the uninterrupted run.
        drive(&mut p, &deltas[(expect_gen - 1) as usize..]);
        assert_eq!(p.generation(), final_gen);
        assert_eq!(&p.serving_document(), final_doc, "cut at byte {cut}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The swap and truncate windows: a record sealed but never swapped is
/// applied on recovery (including over a torn `published.tmp` the kill
/// left behind), and a swap that completed but never truncated is
/// recognized as already applied.
#[test]
fn post_seal_and_post_swap_windows_recover_without_loss() {
    let (nodes, deltas, _) = fixture(2);
    let mut baseline = Pipeline::new(nodes.clone(), SHARDS, pipeline_config());
    let mut docs = Vec::new();
    for d in &deltas {
        let now = d.now;
        baseline.offer(d.clone());
        baseline.tick(now).unwrap();
        docs.push((baseline.generation(), baseline.serving_document(), now));
    }
    let (g0, ref doc0, now0) = docs[0];
    let (g1, ref doc1, _) = docs[1];

    // Post-seal pre-swap, with a half-written published.tmp from the
    // interrupted write_atomic: the tmp is crash debris, the sealed
    // journal record is truth.
    let dir = tempdir("postseal");
    let j = Journal::open(&dir).unwrap();
    j.append(g0, doc0).unwrap();
    j.mark_published(g0, doc0).unwrap();
    j.append(g1, doc1).unwrap();
    let torn = &render_published(g1, doc1)[..40];
    std::fs::write(checkpoint::tmp_path(&j.published_path()), torn).unwrap();
    let (p, r) = Pipeline::recover(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Journal::open(&dir).unwrap(),
        now0,
    )
    .unwrap();
    assert_eq!(p.generation(), g1);
    assert_eq!(&p.serving_document(), doc1);
    assert_eq!(r.pending.as_ref().map(|&(g, _)| g), Some(g1));
    // Recovery completed the interrupted publish: the directory has
    // converged and a second recovery finds nothing pending.
    let r2 = Journal::open(&dir).unwrap().recover().unwrap();
    assert_eq!(r2.published.as_ref().map(|&(g, _)| g), Some(g1));
    assert!(r2.pending.is_none());
    std::fs::remove_dir_all(&dir).unwrap();

    // Post-swap pre-truncate: the published file already carries g1
    // while its journal record still exists. The record is recognized
    // as applied, not replayed as new.
    let dir = tempdir("posttrunc");
    let j = Journal::open(&dir).unwrap();
    j.append(g1, doc1).unwrap();
    checkpoint::write_atomic(&j.published_path(), &render_published(g1, doc1)).unwrap();
    let (p, r) = Pipeline::recover(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Journal::open(&dir).unwrap(),
        now0,
    )
    .unwrap();
    assert_eq!(p.generation(), g1);
    assert_eq!(&p.serving_document(), doc1);
    assert!(r.pending.is_none(), "an applied record is not pending");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Hard-TTL expiry is a deterministic function of virtual time: the
/// flip to `Degraded` lands exactly on the boundary instant, ranking
/// queries refuse while point lookups serve-with-warning, and the next
/// publish of fresh data restores `Fresh` — identically across runs.
#[test]
fn hard_ttl_expiry_flips_serving_deterministically_in_virtual_time() {
    let run = || {
        let (nodes, deltas, _) = fixture(1);
        let mut p = Pipeline::new(nodes.clone(), SHARDS, pipeline_config());
        let mut ladder = vec![p.state()];
        drive(&mut p, &deltas);
        ladder.push(p.state());

        let newest = p
            .reader()
            .snapshot()
            .freshness_ns()
            .expect("published data carries timestamps");
        let soft = SimDuration::from_hours(1).as_nanos();
        let hard = SimDuration::from_hours(24).as_nanos();
        // One nanosecond before each boundary, then the boundary.
        for t in [
            newest + soft - 1,
            newest + soft,
            newest + hard - 1,
            newest + hard,
        ] {
            p.tick(SimTime(t)).unwrap();
            ladder.push(p.state());
        }
        let (a, b) = (nodes[0], nodes[1]);
        let refusal = p.k_nearest(a, 4).unwrap_err();
        assert_eq!(
            refusal,
            QueryError::Degraded {
                age_ns: Some(hard),
                hard_ttl_ns: hard
            }
        );
        let point = p.rtt(a, b).unwrap();
        assert_eq!(point.state, ServingState::Degraded);

        // Fresh data recovers serving on the next publish.
        let revive_at = SimTime(newest + hard + 1);
        p.offer(MergeDelta {
            seq: deltas.len() as u64 + 1,
            pairs: vec![DeltaPair {
                a,
                b,
                rtt_ms: 12.5,
                measured_at: revive_at,
                lineage: Lineage { shard: 0, round: 9 },
            }],
            statuses: vec!["live"; SHARDS],
            now: revive_at,
        });
        p.tick(revive_at).unwrap();
        ladder.push(p.state());
        ladder
    };

    let ladder = run();
    assert_eq!(
        ladder,
        vec![
            ServingState::Degraded, // bootstrap: nothing to certify
            ServingState::Fresh,    // first publish
            ServingState::Fresh,    // soft boundary - 1
            ServingState::Stale,    // soft boundary (inclusive)
            ServingState::Stale,    // hard boundary - 1
            ServingState::Degraded, // hard boundary (inclusive)
            ServingState::Fresh,    // fresh publish recovers
        ]
    );
    assert_eq!(ladder, run(), "the ladder is deterministic");
}

/// Recovery re-judges the TTL ladder at the resume instant: the same
/// directory is `Fresh` when reopened promptly and `Degraded` when
/// reopened past the hard TTL — staleness survives the crash, it is
/// not reset by it.
#[test]
fn recovery_judges_staleness_at_the_resume_instant() {
    let (nodes, deltas, _) = fixture(1);
    let dir = tempdir("ttl");
    let mut p = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Some(Journal::open(&dir).unwrap()),
    );
    drive(&mut p, &deltas);
    let newest = p.reader().snapshot().freshness_ns().unwrap();
    drop(p);

    let (p, _) = Pipeline::recover(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Journal::open(&dir).unwrap(),
        SimTime(newest + 1),
    )
    .unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    let hard = SimDuration::from_hours(24).as_nanos();
    let (a, b) = (nodes[0], nodes[1]);
    let (p, _) = Pipeline::recover(
        nodes,
        SHARDS,
        pipeline_config(),
        Obs::off(),
        Journal::open(&dir).unwrap(),
        SimTime(newest + hard),
    )
    .unwrap();
    assert_eq!(p.state(), ServingState::Degraded);
    assert!(matches!(p.best_via(a, b), Err(QueryError::Degraded { .. })));
    assert_eq!(p.rtt(a, b).unwrap().state, ServingState::Degraded);
    std::fs::remove_dir_all(&dir).unwrap();
}
