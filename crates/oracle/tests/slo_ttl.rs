//! The TTL ladder's boundary instants driven against the staleness
//! SLO window: each `tick` re-judges the dataset's age *and* feeds the
//! verdict into the windowed burn-rate engine, so the exact instants
//! where `TtlPolicy::judge` flips states are also the instants where
//! budget burn accrues. These tests pin the full deterministic
//! transition sequence — ladder states at the inclusive boundaries,
//! the breach window the burn opens, and the rotation that closes it.

use netsim::{NodeId, SimDuration, SimTime};
use obs::slo::SLO_STALENESS;
use obs::{config_hash, names, ExportMeta, Lineage, Obs, ObsConfig, Value};
use oracle::{Pipeline, PipelineConfig, ServingState, SloConfig, TtlPolicy};
use ting::shard::{DeltaPair, MergeDelta};

const SOFT_S: u64 = 10;
const HARD_S: u64 = 100;

fn secs(s: u64) -> SimTime {
    SimTime(SimDuration::from_secs(s).as_nanos())
}

/// Soft 10s / hard 100s ladder over a 10×10s SLO window: one judgment
/// per bucket, so window rotation and TTL boundaries interact on the
/// same clock.
fn config(staleness_objective_ppm: u32) -> PipelineConfig {
    PipelineConfig {
        queue_cap: 4,
        publish_interval: SimDuration(0),
        staleness: SimDuration::from_secs(HARD_S),
        ttl: TtlPolicy::new(
            SimDuration::from_secs(SOFT_S),
            SimDuration::from_secs(HARD_S),
        )
        .unwrap(),
        slo: Some(SloConfig {
            bucket: SimDuration::from_secs(SOFT_S),
            buckets: 10,
            coverage_objective_ppm: 0,
            progress_objective_ppm: 0,
            latency_budget: SimDuration::from_secs(HARD_S),
            latency_objective_ppm: 0,
            staleness_objective_ppm,
            burn_threshold_milli: 1000,
        }),
    }
}

fn nodes() -> Vec<NodeId> {
    (0..4).map(NodeId).collect()
}

fn delta(seq: u64, at: SimTime) -> MergeDelta {
    MergeDelta {
        seq,
        pairs: vec![DeltaPair {
            a: NodeId(0),
            b: NodeId(1),
            rtt_ms: 5.0,
            measured_at: at,
            lineage: Lineage {
                shard: 0,
                round: seq,
            },
        }],
        statuses: vec!["live"],
        now: at,
    }
}

/// Ladder states at the inclusive boundary instants, with each
/// judgment feeding the staleness window: `soft` and `hard` flip on
/// the boundary itself (age ≥ ttl), one nanosecond earlier does not.
#[test]
fn boundary_instants_flip_states_and_accrue_burn() {
    // Objective 40%: breach once more than 60% of windowed judgments
    // land off-Fresh.
    let mut p = Pipeline::new(nodes(), 1, config(400_000));
    p.offer(delta(1, secs(0)));
    p.tick(secs(0)).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad, t.breaching), (1, 0, false));

    // One nanosecond shy of the soft TTL: still Fresh.
    p.tick(SimTime(secs(SOFT_S).as_nanos() - 1)).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    // Exactly the soft boundary: age == soft_ttl is Stale, and the
    // judgment burns budget.
    p.tick(secs(SOFT_S)).unwrap();
    assert_eq!(p.state(), ServingState::Stale);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad, t.breaching), (2, 1, false));

    // One nanosecond shy of the hard TTL: still Stale (and still
    // under the 60% bad threshold: 2 bad of 4).
    p.tick(SimTime(secs(HARD_S).as_nanos() - 1)).unwrap();
    assert_eq!(p.state(), ServingState::Stale);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad, t.breaching), (2, 2, false));

    // Exactly the hard boundary: Degraded. The window also rotates —
    // both good judgments (t=0 and t=soft−1ns) sat in bucket 0, now
    // ten buckets back — so only the bad judgments remain and the
    // breach begins.
    p.tick(secs(HARD_S)).unwrap();
    assert_eq!(p.state(), ServingState::Degraded);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad, t.breaching), (0, 3, true));

    // Fresh data a full window later: every burnt bucket has rotated
    // out, the ladder re-judges Fresh, and the breach closes.
    p.offer(delta(2, secs(2 * HARD_S)));
    p.tick(secs(2 * HARD_S)).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad, t.breaching), (1, 0, false));
}

/// A dataset with no timestamps at all — the clockless bootstrap —
/// judges Degraded from the first tick, and every judgment burns.
#[test]
fn clockless_bootstrap_burns_from_the_first_judgment() {
    let mut p = Pipeline::new(nodes(), 1, config(990_000));
    assert_eq!(p.state(), ServingState::Degraded);
    p.tick(secs(1)).unwrap();
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    // 1 bad of 1 total blows a 1% budget instantly.
    assert_eq!((t.good, t.bad, t.breaching), (0, 1, true));
}

/// The full event-level pin: the exact `(from, to, t_ns)` transition
/// sequence and the breach window the walk opens and closes, as seen
/// by `ting-prof` on the exported trace.
#[test]
fn transition_and_breach_sequences_are_pinned() {
    let obs = Obs::new(ObsConfig::Trace);
    let mut p = Pipeline::with_obs(nodes(), 1, config(400_000), obs.clone(), None);
    p.offer(delta(1, secs(0)));
    p.tick(secs(0)).unwrap();
    p.tick(SimTime(secs(SOFT_S).as_nanos() - 1)).unwrap();
    p.tick(secs(SOFT_S)).unwrap();
    p.tick(SimTime(secs(HARD_S).as_nanos() - 1)).unwrap();
    p.tick(secs(HARD_S)).unwrap();
    p.offer(delta(2, secs(2 * HARD_S)));
    p.tick(secs(2 * HARD_S)).unwrap();

    let text = obs.export_jsonl(&ExportMeta {
        seed: 1,
        config_hash: config_hash("slo-ttl-v1"),
    });
    let doc = obs_analyze::parse_document(&text).unwrap();

    let field_str = |ev: &obs::EventRecord, key: &str| -> String {
        ev.fields
            .iter()
            .find_map(|(k, v)| match (k.as_str(), v) {
                (k2, Value::Str(s)) if k2 == key => Some(s.clone()),
                _ => None,
            })
            .unwrap()
    };
    let transitions: Vec<(String, String, u64)> = doc
        .events
        .iter()
        .filter(|ev| ev.name == names::ORACLE_STALE_TRANSITION)
        .map(|ev| (field_str(ev, "from"), field_str(ev, "to"), ev.t_ns))
        .collect();
    let owned = |s: &str| s.to_owned();
    assert_eq!(
        transitions,
        vec![
            (owned("degraded"), owned("fresh"), secs(0).as_nanos()),
            (owned("fresh"), owned("stale"), secs(SOFT_S).as_nanos()),
            (owned("stale"), owned("degraded"), secs(HARD_S).as_nanos()),
            (
                owned("degraded"),
                owned("fresh"),
                secs(2 * HARD_S).as_nanos()
            ),
        ],
        "the ladder walk must transition exactly at the boundaries"
    );

    let windows = obs_analyze::breaches(&doc);
    assert_eq!(windows.len(), 1, "{windows:?}");
    assert_eq!(windows[0].slo, "staleness");
    assert_eq!(windows[0].begin_ns, secs(HARD_S).as_nanos());
    assert_eq!(windows[0].end_ns, Some(secs(2 * HARD_S).as_nanos()));
}

/// Republishing unchanged data must not reset the staleness clock:
/// a status-only generation still judges against the newest probe.
#[test]
fn status_only_republish_does_not_reset_the_clock() {
    let mut p = Pipeline::new(nodes(), 1, config(400_000));
    p.offer(delta(1, secs(0)));
    p.tick(secs(0)).unwrap();

    // An empty delta past the soft TTL: a new generation publishes,
    // but the dataset's newest measurement is still t=0 — Stale.
    p.offer(MergeDelta {
        seq: 2,
        pairs: vec![],
        statuses: vec!["live"],
        now: secs(SOFT_S),
    });
    p.tick(secs(SOFT_S)).unwrap();
    assert_eq!(p.state(), ServingState::Stale);
    let t = p.slo_totals(SLO_STALENESS).unwrap();
    assert_eq!((t.good, t.bad), (1, 1));
}
