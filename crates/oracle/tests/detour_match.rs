//! The oracle's via-relay answers must bit-match the `analysis::tiv`
//! reference on a seeded 40-relay matrix: same via relay, same
//! combined RTT (compared as raw f64 bits), same direct path. The TIV
//! report is the research-grade implementation behind Figs. 14–15; the
//! oracle serves the same question at query time, and the two must
//! never drift.

use analysis::tiv::TivReport;
use netsim::NodeId;
use oracle::{Oracle, Snapshot};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ting::RttMatrix;

/// A complete seeded 40-relay matrix with planted triangle structure:
/// nodes on a plane (so most triangles are sane) plus multiplicative
/// inflation (so detours genuinely win for many pairs).
fn seeded_matrix(seed: u64, n: u32) -> RttMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect();
    let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut m = RttMatrix::new(nodes.clone());
    for i in 0..n as usize {
        for j in (i + 1)..n as usize {
            let (dx, dy) = (coords[i].0 - coords[j].0, coords[i].1 - coords[j].1);
            let base = (dx * dx + dy * dy).sqrt() + 1.0;
            let inflation = rng.gen_range(1.0..3.0);
            m.set(nodes[i], nodes[j], base * inflation);
        }
    }
    m
}

#[test]
fn oracle_detours_bit_match_the_tiv_reference() {
    let matrix = seeded_matrix(2015, 40);
    let report = TivReport::analyze(&matrix);
    assert_eq!(report.findings.len(), 40 * 39 / 2);
    assert!(
        report.violation_fraction() > 0.3,
        "scenario must actually contain TIVs, got {}",
        report.violation_fraction()
    );

    let oracle = Oracle::new(Snapshot::from_matrix(&matrix));
    for f in &report.findings {
        let d = oracle.best_via(f.src, f.dst).unwrap();
        let via = d.via.expect("complete 40-relay matrix always has a via");
        assert_eq!(via.node, f.best_relay, "pair ({:?}, {:?})", f.src, f.dst);
        assert_eq!(
            via.rtt_ms.to_bits(),
            f.best_detour_ms.to_bits(),
            "pair ({:?}, {:?}): {} vs {}",
            f.src,
            f.dst,
            via.rtt_ms,
            f.best_detour_ms
        );
        assert_eq!(
            d.direct_ms.unwrap().to_bits(),
            f.direct_ms.to_bits(),
            "pair ({:?}, {:?})",
            f.src,
            f.dst
        );
        assert_eq!(d.is_improvement(), f.is_violation());
        assert!(
            (d.savings_percent() - f.savings_percent()).abs() < 1e-12,
            "pair ({:?}, {:?})",
            f.src,
            f.dst
        );
    }
}

#[test]
fn detour_matches_reference_through_a_tsv_roundtrip() {
    // The serving path usually loads from the §4.6 cache file; the
    // round-trip through TSV must not perturb a single bit.
    let matrix = seeded_matrix(7, 40);
    let report = TivReport::analyze(&matrix);
    let oracle = Oracle::new(Snapshot::from_tsv(&matrix.to_tsv()).unwrap());
    for f in &report.findings {
        let d = oracle.best_via(f.src, f.dst).unwrap();
        assert_eq!(d.via.unwrap().rtt_ms.to_bits(), f.best_detour_ms.to_bits());
        assert_eq!(d.via.unwrap().node, f.best_relay);
    }
}
