//! Snapshot isolation: a reader holding an old snapshot sees one
//! consistent matrix across a concurrent swap, and no reader ever
//! observes a half-published generation.

use netsim::NodeId;
use oracle::{Oracle, Snapshot};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use ting::RttMatrix;

const N: u32 = 8;

/// A complete matrix where every pair carries the same `value` — any
/// mix of values inside one observed snapshot is a torn read.
fn homogeneous(value: f64) -> Snapshot {
    let nodes: Vec<NodeId> = (0..N).map(NodeId).collect();
    let mut m = RttMatrix::new(nodes.clone());
    for i in 0..N as usize {
        for j in (i + 1)..N as usize {
            m.set(nodes[i], nodes[j], value);
        }
    }
    Snapshot::from_matrix(&m)
}

fn all_pairs() -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for i in 0..N {
        for j in 0..N {
            if i != j {
                pairs.push((NodeId(i), NodeId(j)));
            }
        }
    }
    pairs
}

/// Deterministic barrier-sequenced interleaving: the reader pins a
/// snapshot, the writer publishes a new generation *while the reader
/// still holds the old one*, and the held snapshot must keep answering
/// from the old generation while fresh reads see the new one.
#[test]
fn held_snapshot_is_consistent_across_a_concurrent_swap() {
    let mut oracle = Oracle::new(homogeneous(10.0));
    let reader = oracle.reader();
    let pinned = Arc::new(Barrier::new(2));
    let published = Arc::new(Barrier::new(2));
    let (tx, rx) = mpsc::channel();

    let handle = {
        let (pinned, published) = (Arc::clone(&pinned), Arc::clone(&published));
        thread::spawn(move || {
            let held = reader.snapshot();
            pinned.wait(); // writer may now publish
            published.wait(); // generation 2 is live
            for (a, b) in all_pairs() {
                assert_eq!(
                    held.rtt(a, b).unwrap().rtt_ms,
                    Some(10.0),
                    "held snapshot must not see the concurrent publish"
                );
            }
            assert_eq!(held.meta().version, 1);
            let fresh = reader.snapshot();
            assert_eq!(fresh.meta().version, 2);
            assert_eq!(fresh.rtt(NodeId(0), NodeId(1)).unwrap().rtt_ms, Some(20.0));
            tx.send(()).unwrap();
        })
    };

    pinned.wait();
    assert_eq!(oracle.publish(homogeneous(20.0)), 2);
    published.wait();
    rx.recv().expect("reader thread failed");
    handle.join().unwrap();
}

/// Hammer test: four reader threads race ~50 publishes. Every snapshot
/// a reader pins must be internally homogeneous (all pairs share one
/// value) and versions must be monotone per reader.
#[test]
fn racing_readers_never_observe_a_torn_generation() {
    const GENERATIONS: u64 = 50;
    const READERS: usize = 4;

    let mut oracle = Oracle::new(homogeneous(1.0));
    let start = Arc::new(Barrier::new(READERS + 1));
    let pairs = all_pairs();

    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = oracle.reader();
            let start = Arc::clone(&start);
            let pairs = pairs.clone();
            thread::spawn(move || {
                start.wait();
                let mut last_version = 0;
                loop {
                    let snap = reader.snapshot();
                    let version = snap.meta().version;
                    assert!(version >= last_version, "versions went backwards");
                    last_version = version;
                    let expected = version as f64;
                    for &(a, b) in &pairs {
                        assert_eq!(
                            snap.rtt(a, b).unwrap().rtt_ms,
                            Some(expected),
                            "torn generation: snapshot v{version} mixes values"
                        );
                    }
                    if version >= GENERATIONS {
                        return;
                    }
                }
            })
        })
        .collect();

    start.wait();
    for g in 2..=GENERATIONS {
        oracle.publish(homogeneous(g as f64));
    }
    for h in handles {
        h.join().unwrap();
    }
}
