//! Criterion benches for the event engine and the measurement path.
//!
//! These time the simulator operations the figure binaries execute
//! millions of times: network construction, circuit build, a single
//! echo probe, and a full Ting pair measurement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn bench_network_build(c: &mut Criterion) {
    c.bench_function("netbuild/testbed_31", |b| {
        b.iter(|| TorNetworkBuilder::testbed(7).build())
    });
    c.bench_function("netbuild/live_150", |b| {
        b.iter(|| TorNetworkBuilder::live(7, 150).build())
    });
}

fn bench_circuit_build(c: &mut Criterion) {
    c.bench_function("circuit/build_4hop", |b| {
        b.iter_batched(
            || TorNetworkBuilder::testbed(7).build(),
            |mut net| {
                let (x, y) = (net.relays[3], net.relays[17]);
                let path = vec![net.local_w, x, y, net.local_z];
                net.controller
                    .build_and_wait(&mut net.sim, path)
                    .expect("built")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_echo_probe(c: &mut Criterion) {
    // Steady-state echo probes through an established 4-hop circuit —
    // the inner loop of every Ting measurement.
    let mut net = TorNetworkBuilder::testbed(7).build();
    let (x, y) = (net.relays[3], net.relays[17]);
    let circuit = net
        .controller
        .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
        .expect("circuit");
    let stream = net
        .controller
        .open_stream_and_wait(&mut net.sim, circuit, net.echo_server)
        .expect("stream");
    c.bench_function("probe/echo_roundtrip_4hop", |b| {
        b.iter(|| {
            net.controller
                .echo_roundtrip_ms(&mut net.sim, stream, vec![0u8; 8])
                .expect("echo")
        })
    });
}

fn bench_full_measurement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ting");
    g.sample_size(10);
    g.bench_function("measure_pair_30samples", |b| {
        b.iter_batched(
            || TorNetworkBuilder::testbed(7).build(),
            |mut net| {
                let (x, y) = (net.relays[5], net.relays[25]);
                Ting::new(TingConfig::with_samples(30))
                    .measure_pair(&mut net, x, y)
                    .expect("measured")
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ping(c: &mut Criterion) {
    let mut net = TorNetworkBuilder::testbed(7).build();
    let (x, y) = (net.relays[2], net.relays[9]);
    c.bench_function("probe/ping_sample", |b| {
        b.iter(|| net.sim.ping_rtt_ms(x, y))
    });
}

criterion_group!(
    benches,
    bench_network_build,
    bench_circuit_build,
    bench_echo_probe,
    bench_full_measurement,
    bench_ping
);
criterion_main!(benches);
