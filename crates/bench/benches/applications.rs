//! Criterion benches for the §5 application algorithms, including the
//! strategy ablation: how much *compute* the RTT-aware deanonymization
//! strategies trade for their probe savings.

use analysis::{CircuitLengthAnalysis, DeanonSimulator, Strategy, TivReport};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ting::RttMatrix;

/// A synthetic 50-node all-pairs matrix with geographic structure.
fn matrix() -> RttMatrix {
    let mut rng = SmallRng::seed_from_u64(42);
    let nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
    let pos: Vec<(f64, f64)> = (0..50)
        .map(|_| (rng.gen_range(0.0..300.0), rng.gen_range(0.0..120.0)))
        .collect();
    let mut m = RttMatrix::new(nodes.clone());
    for i in 0..50 {
        for j in (i + 1)..50 {
            let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
            m.set(nodes[i], nodes[j], d + rng.gen_range(3.0..25.0));
        }
    }
    m
}

fn bench_deanon(c: &mut Criterion) {
    let m = matrix();
    let sim = DeanonSimulator::new(&m);
    let mut g = c.benchmark_group("deanon");
    for (name, strategy) in [
        ("rtt_unaware", Strategy::RttUnaware),
        ("ignore_too_large", Strategy::IgnoreTooLarge),
        ("informed", Strategy::Informed),
    ] {
        g.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| sim.run_once(strategy, &mut rng))
        });
    }
    g.finish();
}

fn bench_tiv(c: &mut Criterion) {
    let m = matrix();
    c.bench_function("tiv/analyze_50_nodes", |b| {
        b.iter(|| TivReport::analyze(&m))
    });
}

fn bench_circuits(c: &mut Criterion) {
    let m = matrix();
    let mut g = c.benchmark_group("circuits");
    g.sample_size(10);
    g.bench_function("lengths_3_to_10_1k_samples", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| CircuitLengthAnalysis::run(&m, 3..=10, 1000, 2.5, &mut rng))
    });
    g.finish();
}

fn bench_matrix_io(c: &mut Criterion) {
    let m = matrix();
    let tsv = m.to_tsv();
    c.bench_function("matrix/to_tsv", |b| b.iter(|| m.to_tsv()));
    c.bench_function("matrix/from_tsv", |b| {
        b.iter(|| RttMatrix::from_tsv(&tsv).unwrap())
    });
}

criterion_group!(
    benches,
    bench_deanon,
    bench_tiv,
    bench_circuits,
    bench_matrix_io
);
criterion_main!(benches);
