//! Criterion benches for the crypto substrate.
//!
//! Relay forwarding cost is dominated by symmetric crypto (§3.2), so
//! these numbers bound how fast a simulated (or real) relay can turn
//! cells around: SHA-256 digesting, ChaCha20 on cell-sized payloads,
//! X25519/ntor handshakes, and full onion-layer processing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use onion_crypto::{
    client_handshake_finish, client_handshake_start, server_handshake, sha256, ChaCha20, KeyPair,
};
use tor_protocol::{ClientCrypto, RelayCell, RelayCmd, RelayCrypto, RelayCryptoOutcome};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 509, 4096] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20");
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    for size in [509usize, 4096] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            let mut cipher = ChaCha20::new(&key, &nonce, 0);
            let mut buf = vec![0u8; size];
            b.iter(|| cipher.apply_keystream(std::hint::black_box(&mut buf)))
        });
    }
    g.finish();
}

fn bench_x25519(c: &mut Criterion) {
    c.bench_function("x25519/scalar_mult", |b| {
        let kp = KeyPair::from_secret([5u8; 32]);
        let peer = KeyPair::from_secret([9u8; 32]);
        b.iter(|| onion_crypto::x25519(std::hint::black_box(&kp.secret), &peer.public))
    });

    c.bench_function("ntor/full_handshake", |b| {
        let identity = KeyPair::from_secret([1u8; 32]);
        b.iter(|| {
            let (state, x) =
                client_handshake_start(KeyPair::from_secret([2u8; 32]), identity.public);
            let (reply, _) = server_handshake(&identity, KeyPair::from_secret([3u8; 32]), &x);
            client_handshake_finish(&state, &reply).unwrap()
        })
    });
}

fn circuit(n: usize) -> (ClientCrypto, Vec<RelayCrypto>) {
    let mut client = ClientCrypto::new();
    let mut relays = Vec::new();
    for i in 0..n {
        let identity = KeyPair::from_secret([(i as u8) + 1; 32]);
        let (state, x) =
            client_handshake_start(KeyPair::from_secret([(i as u8) + 100; 32]), identity.public);
        let (reply, server_keys) =
            server_handshake(&identity, KeyPair::from_secret([(i as u8) + 200; 32]), &x);
        let client_keys = client_handshake_finish(&state, &reply).unwrap();
        client.add_hop(&client_keys);
        relays.push(RelayCrypto::new(&server_keys));
    }
    (client, relays)
}

fn bench_onion(c: &mut Criterion) {
    let mut g = c.benchmark_group("onion");
    // Client-side onion wrap for a 3-hop circuit (3 cipher passes).
    g.bench_function("client_encrypt_3hop", |b| {
        let (mut client, _) = circuit(3);
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 64]);
        b.iter(|| client.encrypt_forward(2, std::hint::black_box(&rc)))
    });
    // One relay's per-cell work: strip a layer + recognition attempt.
    g.bench_function("relay_process_forward", |b| {
        let (mut client, mut relays) = circuit(3);
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 64]);
        // Pre-produce a batch of cells addressed to the exit so the
        // first relay only ever forwards (steady-state work).
        let cells: Vec<Vec<u8>> = (0..4096).map(|_| client.encrypt_forward(2, &rc)).collect();
        let mut idx = 0;
        b.iter(|| {
            let out = relays[0].process_forward(&cells[idx % cells.len()]);
            idx += 1;
            match out {
                RelayCryptoOutcome::Forward(p) => p.len(),
                RelayCryptoOutcome::Recognized(_) => 0,
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_chacha20,
    bench_x25519,
    bench_onion
);
criterion_main!(benches);
