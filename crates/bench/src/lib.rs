//! Shared machinery for the figure-regeneration binaries.
//!
//! Each `src/bin/figNN_*.rs` binary regenerates the data series behind
//! one figure of the paper, printing gnuplot-friendly columns plus a
//! summary comparing against the paper's reported numbers. Binaries
//! share the scenario builders, the parallel measurement driver, and a
//! TSV dataset cache (under `target/figdata/`) so related figures
//! (3/4/7, 11–17) don't re-measure the same networks.
//!
//! Every binary accepts environment-variable overrides so a quick smoke
//! run is possible without touching the paper-scale defaults:
//!
//! | var              | meaning                             |
//! |------------------|-------------------------------------|
//! | `TING_SEED`      | scenario seed (default 2015)        |
//! | `TING_SAMPLES`   | Ting samples per circuit            |
//! | `TING_PAIRS`     | number of pairs to measure          |
//! | `TING_RELAYS`    | live-network relay population       |
//! | `TING_THREADS`   | worker threads (default: all cores) |
//! | `TING_HOURS`     | duration of longitudinal runs       |

use netsim::{NodeId, SimDuration, SimTime};
use ting::{RttMatrix, Ting, TingConfig, TingMeasurement};
use tor_sim::{TorNetwork, TorNetworkBuilder};

/// Reads an integer environment override.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment override.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scenario seed shared by every figure unless overridden.
pub fn seed() -> u64 {
    env_u64("TING_SEED", 2015)
}

/// Worker thread count.
pub fn threads() -> usize {
    env_usize(
        "TING_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    )
}

/// Renders one `obs` histogram as the quantile JSON object shared by
/// every `BENCH_*.json` phase entry. `ting-prof diff` gates exactly
/// these fields, so the shape must stay in lockstep across baselines.
pub fn hist_quantiles_json(h: &ting::obs::LogHistogram) -> String {
    let q = |p: f64| h.quantile(p).unwrap_or(0);
    format!(
        "{{\"count\":{},\"min_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        h.count(),
        h.min().unwrap_or(0),
        q(0.5),
        q(0.9),
        q(0.99),
        h.max().unwrap_or(0)
    )
}

/// The figdata cache directory (created on demand).
pub fn figdata_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/figdata");
    std::fs::create_dir_all(&dir).expect("create target/figdata");
    dir
}

/// One accuracy observation: a pair's Ting estimate vs its ping ground
/// truth (the Figs. 3/4/7 dataset).
#[derive(Debug, Clone, Copy)]
pub struct AccuracyPoint {
    pub estimate_ms: f64,
    pub truth_ms: f64,
}

impl AccuracyPoint {
    /// `Measured / Real`, the x-axis of Figs. 3, 4, 7.
    pub fn ratio(&self) -> f64 {
        self.estimate_ms / self.truth_ms
    }
}

/// Measures `pairs` with Ting (at `samples` per circuit) against
/// min-of-100-ping ground truth on the §4.1 testbed, fanning the pairs
/// out over worker threads. Each worker rebuilds the network from the
/// same seed, so the underlay (and thus ground truth) is identical
/// across workers.
pub fn testbed_accuracy_dataset(samples: usize, pairs_limit: usize) -> Vec<AccuracyPoint> {
    let seed = seed();
    let cache = figdata_dir().join(format!("accuracy_s{seed}_k{samples}_p{pairs_limit}.tsv"));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        let pts: Vec<AccuracyPoint> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .filter_map(|l| {
                let mut f = l.split('\t');
                Some(AccuracyPoint {
                    estimate_ms: f.next()?.parse().ok()?,
                    truth_ms: f.next()?.parse().ok()?,
                })
            })
            .collect();
        if !pts.is_empty() {
            eprintln!("[bench] loaded cached accuracy dataset {}", cache.display());
            return pts;
        }
    }
    let probe = TorNetworkBuilder::testbed(seed).build();
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    // The paper's "930 pairs" are the ordered pairs of 31 relays; Ting
    // (x, y) and (y, x) build different circuits, so both are measured.
    for &a in &probe.relays {
        for &b in &probe.relays {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    pairs.truncate(pairs_limit);

    let results = measure_pairs_parallel(
        move || TorNetworkBuilder::testbed(seed).build(),
        &pairs,
        TingConfig::with_samples(samples),
    );
    let pts: Vec<AccuracyPoint> = results
        .into_iter()
        .map(|(truth, m)| AccuracyPoint {
            estimate_ms: m.estimate_ms(),
            truth_ms: truth,
        })
        .collect();
    let mut out = String::from("# estimate_ms\ttruth_ms\n");
    for p in &pts {
        out.push_str(&format!("{:.6}\t{:.6}\n", p.estimate_ms, p.truth_ms));
    }
    std::fs::write(&cache, out).expect("write accuracy cache");
    pts
}

/// Fans pair measurements out over [`threads`] workers. Returns, in
/// input order, `(ping ground truth, measurement)` per pair. Each
/// worker constructs its own [`Ting`] from the config (the driver's
/// metrics handle is single-threaded by design).
pub fn measure_pairs_parallel<F>(
    build: F,
    pairs: &[(NodeId, NodeId)],
    config: TingConfig,
) -> Vec<(f64, TingMeasurement)>
where
    F: Fn() -> TorNetwork + Sync,
{
    let n_threads = threads().max(1).min(pairs.len().max(1));
    let mut results: Vec<Option<(f64, TingMeasurement)>> = vec![None; pairs.len()];
    let chunk = pairs.len().div_ceil(n_threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, shard) in pairs.chunks(chunk).enumerate() {
            let build = &build;
            handles.push((
                t,
                scope.spawn(move || {
                    let mut net = build();
                    let ting = Ting::new(config);
                    shard
                        .iter()
                        .map(|&(x, y)| {
                            let truth = net.ping_min_rtt_ms(x, y, 100);
                            let m = ting.measure_pair(&mut net, x, y).expect("pair measured");
                            (truth, m)
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (t, handle) in handles {
            for (i, r) in handle.join().expect("worker").into_iter().enumerate() {
                results[t * chunk + i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all measured"))
        .collect()
}

/// Builds (or loads from the figdata cache) the §5 live-network
/// all-pairs matrix: `n` relays measured with `samples`-sample Ting.
/// The cache key includes every parameter, so changing an env override
/// re-measures.
pub fn live_matrix(n: usize, samples: usize) -> (TorNetwork, RttMatrix) {
    let seed = seed();
    let net = TorNetworkBuilder::live(seed, (n * 3).max(n + 10)).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(n).collect();
    let cache = figdata_dir().join(format!("matrix_s{seed}_n{n}_k{samples}.tsv"));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(m) = RttMatrix::from_tsv(&text) {
            if m.nodes() == nodes.as_slice() && m.is_complete() {
                eprintln!("[bench] loaded cached matrix {}", cache.display());
                return (net, m);
            }
        }
    }

    // Measure in parallel: shard the pair list, merge into one matrix.
    let mut pair_list: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            pair_list.push((nodes[i], nodes[j]));
        }
    }
    eprintln!(
        "[bench] measuring {} pairs over {} threads ({} samples/circuit)...",
        pair_list.len(),
        threads(),
        samples
    );
    let relay_pool = (n * 3).max(n + 10);
    let results = measure_pairs_parallel(
        move || TorNetworkBuilder::live(seed, relay_pool).build(),
        &pair_list,
        TingConfig::with_samples(samples),
    );
    let mut matrix = RttMatrix::new(nodes);
    for ((a, b), (_, m)) in pair_list.iter().zip(results) {
        matrix.set(*a, *b, m.estimate_ms());
    }
    std::fs::write(&cache, matrix.to_tsv()).expect("write matrix cache");
    eprintln!("[bench] cached matrix at {}", cache.display());
    (net, matrix)
}

/// Prints a CDF as `x  F(x)` rows, downsampled to at most `max_rows`.
pub fn print_cdf(title: &str, values: &[f64], max_rows: usize) {
    let cdf = stats::EmpiricalCdf::new(values);
    println!("# {title}");
    println!("# x\tcdf");
    let pts = cdf.points();
    let step = (pts.len() / max_rows).max(1);
    for (i, (x, f)) in pts.iter().enumerate() {
        if i % step == 0 || i == pts.len() - 1 {
            println!("{x:.4}\t{f:.4}");
        }
    }
}

/// Advances a network's virtual clock to the given hour-of-run.
pub fn advance_to_hour(net: &mut TorNetwork, hour: u64) {
    net.sim
        .advance_to(SimTime::ZERO + SimDuration::from_hours(hour));
}
