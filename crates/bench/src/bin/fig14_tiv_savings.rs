//! Figure 14: CDF of RTT savings from routing through a TIV detour
//! relay instead of the direct path.
//!
//! Paper expectations: 69% of pairs have at least one TIV; median
//! saving 7.5%; the top 10% of TIVs save 28% or more.

use analysis::TivReport;
use bench::{env_usize, live_matrix, print_cdf};

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let (_net, matrix) = live_matrix(n, samples);

    let report = TivReport::analyze(&matrix);
    let savings = report.savings_distribution();
    print_cdf(
        &format!("Fig. 14: TIV savings %, {} violating pairs", savings.len()),
        &savings,
        80,
    );

    let cdf = stats::EmpiricalCdf::new(&savings);
    println!("#");
    println!("# summary               paper    measured");
    println!(
        "# pairs with a TIV      69%      {:.0}%",
        report.violation_fraction() * 100.0
    );
    println!("# median saving         7.5%     {:.1}%", cdf.median());
    println!("# p90 saving            >=28%    {:.1}%", cdf.quantile(0.9));
}
