//! Figure 16: number of circuits achieving each RTT, per circuit length
//! 3–10 (10,000 sampled circuits per length, scaled to C(50, ℓ);
//! 50 ms bins).
//!
//! Paper expectations: longer circuits reach both higher maxima and —
//! because C(50, ℓ) explodes — vastly more circuits at the same
//! mid-range RTT: an order of magnitude more 4-hop than 3-hop circuits
//! in the 200–300 ms band, four orders more 10-hop.

use analysis::CircuitLengthAnalysis;
use bench::{env_usize, live_matrix, seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let per_length = env_usize("TING_RUNS", 10_000);
    let (_net, matrix) = live_matrix(n, samples);

    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xf16);
    let analysis = CircuitLengthAnalysis::run(&matrix, 3..=10, per_length, 2.5, &mut rng);

    println!("# Fig. 16: rtt_bin_center_s, then one column per length 3..10 (scaled counts)");
    let bins = analysis.series[0].bin_centers_s.len();
    for b in 0..bins {
        let mut row = format!("{:.3}", analysis.series[0].bin_centers_s[b]);
        for s in &analysis.series {
            row.push_str(&format!("\t{:.3e}", s.scaled_counts[b]));
        }
        println!("{row}");
    }

    let c3 = analysis.circuits_in_range(3, 0.2, 0.3);
    let c4 = analysis.circuits_in_range(4, 0.2, 0.3);
    let c10 = analysis.circuits_in_range(10, 0.2, 0.3);
    println!("#");
    println!("# circuits in the 200-300ms band   paper          measured");
    println!("# 3-hop                            ~1e4           {c3:.2e}");
    println!(
        "# 4-hop                            ~1 OoM more    {:.1}x the 3-hop count",
        c4 / c3.max(1.0)
    );
    println!(
        "# 10-hop                           ~4 OoM more    {:.1} OoM more",
        (c10 / c3.max(1.0)).log10()
    );
}
