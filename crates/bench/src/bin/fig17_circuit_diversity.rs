//! Figure 17: median probability of a given node appearing on a circuit,
//! per circuit length and RTT bin — the "how entropic are the circuits
//! at this latency?" diversity metric.
//!
//! Paper expectations: for most lengths, low-latency circuits do not
//! rely on a small set of nodes; only 10-hop circuits sacrifice
//! significant entropy below ~500 ms, and each length's probability is
//! elevated at its extremes (few circuits ⇒ concentrated nodes) with a
//! flat entropic middle.

use analysis::CircuitLengthAnalysis;
use bench::{env_usize, live_matrix, seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let per_length = env_usize("TING_RUNS", 10_000);
    let (_net, matrix) = live_matrix(n, samples);

    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xf17);
    let analysis = CircuitLengthAnalysis::run(&matrix, 3..=10, per_length, 2.5, &mut rng);

    println!("# Fig. 17: rtt_bin_center_s, then median node-probability per length 3..10");
    let bins = analysis.series[0].bin_centers_s.len();
    for b in 0..bins {
        let mut row = format!("{:.3}", analysis.series[0].bin_centers_s[b]);
        let mut any = false;
        for s in &analysis.series {
            match s.median_node_prob[b] {
                Some(p) => {
                    row.push_str(&format!("\t{p:.5}"));
                    any = true;
                }
                None => row.push_str("\t-"),
            }
        }
        if any {
            println!("{row}");
        }
    }

    // The expected baseline probability of a node on an l-hop circuit
    // over n relays is l/n; report how the entropic middle compares.
    println!("#");
    println!("# length  baseline l/n   busiest-bin median   (flat middle = entropic)");
    for s in &analysis.series {
        let busiest = s
            .scaled_counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        if let Some(p) = s.median_node_prob[busiest] {
            println!(
                "# {:>6}  {:>11.3}   {:>18.3}",
                s.length,
                s.length as f64 / n as f64,
                p
            );
        }
    }
}
