//! Pipeline soak: a fault storm against the live scan→serve pipeline.
//!
//! Drives a sharded supervised scan through the same hostile network as
//! `shard_storm` — link faults, relay overload, churn, a mid-storm
//! shard crash — and streams its merge deltas into journaled
//! [`oracle::Pipeline`]s in three phases:
//!
//! * **continuous serving** — every published generation must match
//!   what an offline `Supervisor::merge` at the same instant produces,
//!   the generation counter must track the oracle version in lockstep,
//!   and the final document must be bit-identical to the offline merge;
//! * **kill/resume** — the serving process is killed mid-storm with a
//!   torn journal tail (a mid-append kill at a seeded byte offset);
//!   recovery must report the torn tail, resume from the last sealed
//!   generation, and converge bit-identically to the uninterrupted run;
//! * **seal/swap window** — the kill lands *between* journal seal and
//!   publish swap (a fully sealed record, no published update);
//!   recovery must serve the pending generation and converge the same.
//!
//! Any violation exits non-zero.
//!
//! With `--trace-out PATH` the storm additionally runs a *no-fault*
//! control campaign — same topology and cadence, no injected faults —
//! with full tracing and the live SLO engine enabled, and writes its
//! JSONL export to PATH. CI feeds that trace to `ting-prof slo
//! --fail-on staleness`: under the no-fault baseline the staleness
//! SLO must never breach, so any breach there is a serving-loop
//! regression, not weather.
//!
//! Usage: `pipeline_storm [--seed N] [--virtual-hours H] [--trace-out PATH]`
//! (env fallbacks: `TING_SEED`, `TING_HOURS`).

use bench::env_u64;
use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use oracle::journal::frame_record;
use oracle::{Journal, Pipeline, PipelineConfig, SloConfig, TtlPolicy};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use ting::obs::{config_hash, ExportMeta, Obs, ObsConfig};
use ting::shard::{MergeDelta, Supervisor, SupervisorConfig};
use ting::{AdaptiveTimeoutConfig, HealthConfig, ScannerConfig, TingConfig, ValidationConfig};
use tor_sim::churn::ChurnConfig;
use tor_sim::{RelayFaultProfile, TorNetwork, TorNetworkBuilder};

const ROUND_SECS: u64 = 300;
const N_NODES: usize = 10;
const SHARDS: usize = 4;

fn storm_net(seed: u64) -> TorNetwork {
    TorNetworkBuilder::live(seed, 12)
        .vantages(2)
        .fault_plan(
            FaultPlan::new(seed ^ 0x7)
                .with_link_loss(0.003)
                .with_stalls(0.001, 300.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: 0.01,
            overload_drop_prob: 0.002,
            overload_queue_depth: 32,
            seed: seed ^ 0x9,
        })
        .build()
}

fn scan_config() -> ScannerConfig {
    ScannerConfig {
        staleness: SimDuration::from_hours(24),
        pairs_per_round: 8,
        retry_backoff: SimDuration::from_secs(60),
        retry_backoff_cap: SimDuration::from_hours(1),
        health: Some(HealthConfig::default()),
        validation: Some(ValidationConfig::default()),
    }
}

fn supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        shards: SHARDS,
        scanner: scan_config(),
        heartbeat_timeout: SimDuration::from_hours(2),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        queue_cap: 4,
        publish_interval: SimDuration(0),
        staleness: scan_config().staleness,
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(48))
            .expect("static TTL config"),
        slo: None,
    }
}

/// The traced control run's SLOs. Under the no-fault baseline the 99%
/// staleness objective must hold with zero burn, so any breach is a
/// serving-loop regression; the other objectives are sentinels (0 =
/// breach only when *nothing* succeeds) so the gate stays about
/// staleness. The soft TTL must exceed the scanner's own re-measure
/// period (`scan_config().staleness`): a healthy scanner leaves a
/// fresh-enough pair alone for that long, and a tighter serving TTL
/// would read that by-design quiet as staleness and poison the gate.
fn traced_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        ttl: TtlPolicy::new(
            scan_config().staleness + SimDuration::from_hours(1),
            SimDuration::from_hours(48),
        )
        .expect("static TTL config"),
        slo: Some(SloConfig {
            bucket: SimDuration::from_secs(ROUND_SECS),
            buckets: 48,
            coverage_objective_ppm: 0,
            progress_objective_ppm: 0,
            latency_budget: SimDuration::from_secs(ROUND_SECS),
            latency_objective_ppm: 0,
            staleness_objective_ppm: 990_000,
            burn_threshold_milli: 1000,
        }),
        ..pipeline_config()
    }
}

/// The no-fault control campaign: same topology, cadence, and sharding
/// as the storm, but a clean network, full tracing, and the SLO engine
/// live. Writes the JSONL export to `path`.
fn traced_run(seed: u64, rounds: u64, path: &Path) {
    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::live(seed, 12)
        .vantages(2)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(N_NODES).collect();
    let mut sup = Supervisor::with_obs(
        nodes.clone(),
        supervisor_config(),
        ting_config(),
        obs.clone(),
    );
    sup.load_locations(&net);
    let mut p = Pipeline::with_obs(nodes, SHARDS, traced_pipeline_config(), obs.clone(), None);
    for round in 0..rounds {
        let target = SimTime::ZERO + SimDuration::from_secs(round * ROUND_SECS);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        sup.run_round(&mut net);
        p.offer(sup.take_delta(net.sim.now()));
        p.tick(net.sim.now())
            .expect("volatile pipeline cannot fail");
    }
    let text = obs.export_jsonl(&ExportMeta {
        seed,
        config_hash: config_hash("pipeline-storm-trace-v1"),
    });
    std::fs::write(path, &text).expect("write trace output");
    println!(
        "# trace: {} rounds (no faults) -> {} ({} bytes, final state {})",
        rounds,
        path.display(),
        text.len(),
        p.state().tag()
    );
}

/// One supervised storm, drained round by round. Returns the node set,
/// the full delta stream, and the offline merge document at the end —
/// the ground truth every pipeline run must converge to.
fn storm_stream(seed: u64, rounds: u64) -> (Vec<NodeId>, Vec<MergeDelta>, String) {
    let mut net = storm_net(seed);
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(N_NODES).collect();
    let mut sup = Supervisor::new(nodes.clone(), supervisor_config(), ting_config());
    sup.load_locations(&net);
    let churn = ChurnConfig {
        initial_relays: 12,
        daily_departure_rate: 1.2,
        ..ChurnConfig::default()
    };
    let victim = (seed % SHARDS as u64) as usize;
    let mut deltas = Vec::new();
    for round in 0..rounds {
        let target = SimTime::ZERO + SimDuration::from_secs(round * ROUND_SECS);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        if round % 6 == 2 {
            net.churn_step(&churn, 1.0, seed ^ round);
            net.refresh_consensus();
        }
        if round % 9 == 8 {
            for &n in &net.relays.clone() {
                net.revive_relay(n);
            }
            net.refresh_consensus();
        }
        sup.run_round(&mut net);
        // A mid-storm shard crash puts "restarting" statuses and a
        // checkpoint re-emission into the delta stream.
        if round == rounds / 3 {
            sup.inject_crash(victim, net.sim.now());
        }
        deltas.push(sup.take_delta(net.sim.now()));
    }
    let merged = sup
        .merge(net.sim.now())
        .expect("storm merge must succeed")
        .to_document();
    (nodes, deltas, merged)
}

fn ting_config() -> TingConfig {
    TingConfig {
        max_attempts: 2,
        max_lost_probes: 4,
        adaptive_timeouts: Some(AdaptiveTimeoutConfig::default()),
        ..TingConfig::fast()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ting-pipe-storm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create pipeline journal dir");
    dir
}

/// Feeds `deltas` into `p`, checking lockstep invariants each round.
/// Returns the per-round serving documents (index = rounds consumed).
fn drive(p: &mut Pipeline, deltas: &[MergeDelta], violations: &mut Vec<String>) -> Vec<String> {
    let mut docs = Vec::new();
    for d in deltas {
        let now = d.now;
        let seq = d.seq;
        p.offer(d.clone());
        match p.tick(now) {
            Ok(Some(generation)) => {
                if generation != p.generation() {
                    violations.push(format!(
                        "round {seq}: tick returned generation {generation}, pipeline at {}",
                        p.generation()
                    ));
                }
                let version = p.reader().snapshot().meta().version;
                if version != generation {
                    violations.push(format!(
                        "round {seq}: oracle version {version} != generation {generation}"
                    ));
                }
            }
            Ok(None) => violations.push(format!(
                "round {seq}: zero-interval tick with queued data published nothing"
            )),
            Err(e) => violations.push(format!("round {seq}: publish failed: {e}")),
        }
        if p.queue_depth() != 0 {
            violations.push(format!("round {seq}: queue not drained after publish"));
        }
        docs.push(p.serving_document());
    }
    docs
}

fn recover_and_finish(
    nodes: &[NodeId],
    dir: &Path,
    resume_at: SimTime,
    deltas: &[MergeDelta],
    violations: &mut Vec<String>,
    label: &str,
) -> Option<Pipeline> {
    let journal = match Journal::open(dir) {
        Ok(j) => j,
        Err(e) => {
            violations.push(format!("{label}: journal reopen failed: {e}"));
            return None;
        }
    };
    match Pipeline::recover(
        nodes.to_vec(),
        SHARDS,
        pipeline_config(),
        ting::obs::Obs::off(),
        journal,
        resume_at,
    ) {
        Ok((mut p, _)) => {
            // Generation g corresponds to the delta-stream prefix of
            // length g − 1: resume from the first unconsumed delta.
            let consumed = (p.generation() - 1) as usize;
            drive(&mut p, &deltas[consumed..], violations);
            Some(p)
        }
        Err(e) => {
            violations.push(format!("{label}: recovery failed: {e}"));
            None
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", "TING_SEED", 2015);
    let hours = arg_u64(&args, "--virtual-hours", "TING_HOURS", 4);
    let rounds = (hours * 3600 / ROUND_SECS).max(4);
    let kill_round = (rounds / 2) as usize;
    println!(
        "# pipeline storm: seed={seed} virtual_hours={hours} rounds={rounds} \
         shards={SHARDS} (kill serving process after round {kill_round})"
    );

    let mut violations = Vec::new();
    let (nodes, deltas, offline_merge) = storm_stream(seed, rounds);

    // Phase 1: continuous serving, uninterrupted. The baseline run and
    // ground truth for both kill phases.
    let base_dir = tempdir("base");
    let mut baseline = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        ting::obs::Obs::off(),
        Some(Journal::open(&base_dir).expect("open baseline journal")),
    );
    let docs = drive(&mut baseline, &deltas, &mut violations);
    let final_doc = baseline.serving_document();
    if final_doc != offline_merge {
        violations.push("pipeline final document diverged from offline merge".into());
    }
    println!(
        "# phase 1: generations={} final_state={} (vs offline merge {})",
        baseline.generation(),
        baseline.state().tag(),
        if final_doc == offline_merge {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Phase 2: kill mid-append. Replay the stream up to the kill
    // round, then tear the journal exactly as a mid-append kill would —
    // a prefix of the next generation's frame, cut at a seeded offset.
    let dir = tempdir("torn");
    let mut p = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        ting::obs::Obs::off(),
        Some(Journal::open(&dir).expect("open torn-phase journal")),
    );
    drive(&mut p, &deltas[..kill_round], &mut violations);
    let resume_at = deltas[kill_round - 1].now;
    let next_gen = p.generation() + 1;
    drop(p);
    let frame = frame_record(next_gen, &docs[kill_round]);
    let cut = 1 + (seed as usize % (frame.len() - 1));
    {
        let journal = Journal::open(&dir).expect("reopen for tear");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(journal.journal_path())
            .expect("journal file exists after publishes");
        f.write_all(&frame.as_bytes()[..cut])
            .expect("write torn tail");
    }
    let torn_seen = Journal::open(&dir)
        .expect("reopen torn journal")
        .recover()
        .map(|r| r.torn_tail)
        .unwrap_or(false);
    if !torn_seen {
        violations.push(format!(
            "torn tail ({cut} of {} bytes) not reported by recovery",
            frame.len()
        ));
    }
    if let Some(p) = recover_and_finish(
        &nodes,
        &dir,
        resume_at,
        &deltas,
        &mut violations,
        "torn-tail phase",
    ) {
        if p.serving_document() != final_doc {
            violations.push("torn-tail kill/resume diverged from uninterrupted run".into());
        }
        println!(
            "# phase 2: torn tail at byte {cut}/{} -> resumed to generation {} ({})",
            frame.len(),
            p.generation(),
            if p.serving_document() == final_doc {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: kill between seal and swap. The next generation's frame
    // is fully sealed in the journal but the published file never
    // advanced; recovery must serve the pending generation.
    let dir = tempdir("sealed");
    let mut p = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        ting::obs::Obs::off(),
        Some(Journal::open(&dir).expect("open sealed-phase journal")),
    );
    drive(&mut p, &deltas[..kill_round], &mut violations);
    let next_gen = p.generation() + 1;
    drop(p);
    Journal::open(&dir)
        .expect("reopen for seal")
        .append(next_gen, &docs[kill_round])
        .expect("stage sealed record");
    if let Some(p) = recover_and_finish(
        &nodes,
        &dir,
        deltas[kill_round].now,
        &deltas,
        &mut violations,
        "sealed-window phase",
    ) {
        if p.serving_document() != final_doc {
            violations.push("seal/swap-window kill/resume diverged from uninterrupted run".into());
        }
        println!(
            "# phase 3: pending generation {next_gen} applied -> generation {} ({})",
            p.generation(),
            if p.serving_document() == final_doc {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);

    // The traced no-fault control run, when requested — written even
    // if the storm phases found violations, so CI always has the
    // artifact to post-mortem with.
    if let Some(path) = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
    {
        traced_run(seed, rounds, Path::new(path));
    }

    if violations.is_empty() {
        println!("pipeline storm PASSED: continuous serving exact, kill/resume bit-identical");
    } else {
        println!("pipeline storm FAILED:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}

/// Reads `--name value` from the CLI, falling back to `env_name`.
fn arg_u64(args: &[String], name: &str, env_name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64(env_name, default))
}
