//! Figure 10: per-pair box plots of the week of hourly measurements
//! from Fig. 9, sorted by median latency.
//!
//! Paper expectations: 67% of pairs have no outliers and IQR < 5 ms;
//! the Fig. 9 c_v outlier is the lowest-mean pair; even wide pairs'
//! outliers stay near the mean.

use bench::{env_u64, seed};
use stats::BoxplotSummary;

fn main() {
    let hours = env_u64("TING_HOURS", 168);
    let path = bench::figdata_dir().join(format!("stability_s{}_h{hours}.tsv", seed()));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        eprintln!(
            "[fig10] no cached series at {} — run fig09_stability_cv first",
            path.display()
        );
        std::process::exit(2);
    });

    let mut series: Vec<Vec<f64>> = Vec::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let vals: Vec<f64> = line
            .split('\t')
            .skip(1)
            .filter_map(|t| t.parse().ok())
            .collect();
        if !vals.is_empty() {
            series.push(vals);
        }
    }

    // Sort by median, as the figure does.
    series.sort_by(|a, b| {
        stats::median(a)
            .unwrap()
            .partial_cmp(&stats::median(b).unwrap())
            .unwrap()
    });

    println!("# Fig. 10: per-pair boxplots (sorted by median)");
    println!("# rank\tmedian\tq1\tq3\twhisk_lo\twhisk_hi\toutliers");
    let mut tight = 0;
    for (rank, s) in series.iter().enumerate() {
        let b = BoxplotSummary::of(s).unwrap();
        println!(
            "{rank}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
            b.median,
            b.q1,
            b.q3,
            b.whisker_lo,
            b.whisker_hi,
            b.outliers.len()
        );
        if !b.has_outliers() && b.iqr() < 5.0 {
            tight += 1;
        }
    }
    let frac = tight as f64 / series.len() as f64 * 100.0;
    println!("#");
    println!("# summary                                paper   measured");
    println!("# pairs with no outliers and IQR < 5ms   67%     {frac:.0}%");
}
