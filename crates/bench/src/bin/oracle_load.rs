//! Load benchmark for the latency oracle's serving path.
//!
//! Builds a seeded complete matrix, publishes it through an
//! [`oracle::Oracle`] with observability at `Metrics`, and drives the
//! three query families at volume: random point lookups (the hot path,
//! rate-gated), k-nearest-relay queries, and ShorTor-style via-relay
//! detour searches — then streams the same dataset through a live
//! [`oracle::Pipeline`] as incremental publishes. Results go to
//! `BENCH_oracle.json` (override with `TING_BENCH_OUT`) in the same
//! shape `ting-prof diff` gates for the scan baseline — the phase
//! histograms record *answered RTTs* (ms recorded on the µs scale) and,
//! for the publish phase, pairs folded per generation; both are a pure
//! function of the seed and config, so the gate catches silent changes
//! to what the oracle serves or how the pipeline batches, while
//! wall-clock throughput stays informational.
//!
//! Environment overrides: `TING_SEED` (default 2015), `TING_RELAYS`
//! (default 300), `TING_ORACLE_POINTS` (default 2_000_000),
//! `TING_ORACLE_NEAREST` (default 10_000), `TING_ORACLE_K` (default
//! 16), `TING_ORACLE_DETOURS` (default 20_000), `TING_ORACLE_PUBLISHES`
//! (default 32), `TING_REPS` (default 3; wall time is the minimum over
//! reps), and `TING_ORACLE_MIN_RATE` (default 1_000_000 point
//! lookups/s on one core; the run exits non-zero below the floor, 0
//! disables).

use bench::{env_u64, env_usize, hist_quantiles_json, seed};
use netsim::{NodeId, SimDuration, SimTime};
use oracle::{Oracle, Pipeline, PipelineConfig, Snapshot, TtlPolicy};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;
use ting::obs::{config_hash, names, Lineage, Obs, ObsConfig};
use ting::shard::{DeltaPair, MergeDelta};
use ting::RttMatrix;

struct Config {
    seed: u64,
    relays: usize,
    points: usize,
    nearest: usize,
    k: usize,
    detours: usize,
    publishes: usize,
}

struct RunResult {
    point_wall_s: f64,
    nearest_wall_s: f64,
    detour_wall_s: f64,
    publish_wall_s: f64,
    obs: Obs,
    checksum: f64,
}

/// A seeded complete matrix standing in for a §4.6 cached dataset.
fn seeded_matrix(seed: u64, relays: usize) -> RttMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = (0..relays as u32).map(NodeId).collect();
    let mut m = RttMatrix::new(nodes.clone());
    for i in 0..relays {
        for j in (i + 1)..relays {
            m.set(nodes[i], nodes[j], rng.gen_range(1.0..300.0));
        }
    }
    m
}

/// Pre-generates `count` distinct-node query pairs so pair selection
/// stays off the timed path.
fn query_pairs(rng: &mut SmallRng, n: u32, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            if a == b {
                b = (b + 1) % n;
            }
            (NodeId(a), NodeId(b))
        })
        .collect()
}

/// Chops the matrix's pairs into `publishes` incremental deltas — a
/// deterministic stand-in for a supervisor's live merge stream.
fn publish_batches(matrix: &RttMatrix, publishes: usize) -> Vec<MergeDelta> {
    let pairs: Vec<_> = matrix.pairs().collect();
    let chunk = pairs.len().div_ceil(publishes.max(1)).max(1);
    pairs
        .chunks(chunk)
        .enumerate()
        .map(|(i, slice)| {
            let now = SimTime((i as u64 + 1) * 1_000_000);
            MergeDelta {
                seq: i as u64 + 1,
                pairs: slice
                    .iter()
                    .map(|&(a, b, rtt)| DeltaPair {
                        a,
                        b,
                        rtt_ms: rtt,
                        measured_at: now,
                        lineage: Lineage {
                            shard: 0,
                            round: i as u64 + 1,
                        },
                    })
                    .collect(),
                statuses: vec!["live"],
                now,
            }
        })
        .collect()
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        queue_cap: 4,
        publish_interval: SimDuration(0),
        staleness: SimDuration::from_hours(24),
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(48))
            .expect("static TTL config"),
        slo: None,
    }
}

fn run_once(
    matrix: &RttMatrix,
    cfg: &Config,
    points: &[(NodeId, NodeId)],
    sources: &[NodeId],
    detours: &[(NodeId, NodeId)],
    batches: &[MergeDelta],
) -> RunResult {
    let obs = Obs::new(ObsConfig::Metrics);
    let oracle = Oracle::with_obs(Snapshot::from_matrix(matrix), obs.clone());

    // Accumulate served values so the query loops have a data
    // dependency the optimizer can't discard.
    let mut checksum = 0.0;

    let started = std::time::Instant::now();
    for &(a, b) in points {
        checksum += oracle.rtt(a, b).expect("known node").rtt_ms.unwrap_or(0.0);
    }
    let point_wall_s = started.elapsed().as_secs_f64();

    let started = std::time::Instant::now();
    for &x in sources {
        for n in oracle.k_nearest(x, cfg.k).expect("known node").neighbors {
            checksum += n.rtt_ms;
        }
    }
    let nearest_wall_s = started.elapsed().as_secs_f64();

    let started = std::time::Instant::now();
    for &(a, b) in detours {
        let d = oracle.best_via(a, b).expect("known node");
        checksum += d.via.map_or(0.0, |v| v.rtt_ms);
    }
    let detour_wall_s = started.elapsed().as_secs_f64();

    // Publish phase: stream the dataset through a live pipeline, one
    // generation per delta. The `oracle.pipeline.batch_pairs`
    // histogram (pairs folded per publish) is a pure function of seed
    // and config, so the diff gate pins it; wall time stays
    // informational like every other throughput number here.
    let mut pipeline = Pipeline::with_obs(
        matrix.nodes().to_vec(),
        1,
        pipeline_config(),
        obs.clone(),
        None,
    );
    let started = std::time::Instant::now();
    for d in batches {
        let now = d.now;
        pipeline.offer(d.clone());
        pipeline
            .tick(now)
            .expect("volatile pipeline publish cannot fail");
    }
    let publish_wall_s = started.elapsed().as_secs_f64();
    checksum += pipeline.generation() as f64;

    RunResult {
        point_wall_s,
        nearest_wall_s,
        detour_wall_s,
        publish_wall_s,
        obs,
        checksum,
    }
}

fn main() {
    let cfg = Config {
        seed: env_u64("TING_SEED", seed()),
        relays: env_usize("TING_RELAYS", 300),
        points: env_usize("TING_ORACLE_POINTS", 2_000_000),
        nearest: env_usize("TING_ORACLE_NEAREST", 10_000),
        k: env_usize("TING_ORACLE_K", 16),
        detours: env_usize("TING_ORACLE_DETOURS", 20_000),
        publishes: env_usize("TING_ORACLE_PUBLISHES", 32),
    };
    let reps = env_usize("TING_REPS", 3).max(1);
    let min_rate = env_u64("TING_ORACLE_MIN_RATE", 1_000_000);
    let out_path =
        std::env::var("TING_BENCH_OUT").unwrap_or_else(|_| "BENCH_oracle.json".to_owned());

    let matrix = seeded_matrix(cfg.seed, cfg.relays);
    // The workload stream is seeded independently of the matrix fill so
    // changing the query volume never changes the dataset itself.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x6f72_6163_6c65); // "oracle"
    let n = cfg.relays as u32;
    let points = query_pairs(&mut rng, n, cfg.points);
    let sources: Vec<NodeId> = (0..cfg.nearest)
        .map(|_| NodeId(rng.gen_range(0..n)))
        .collect();
    let detours = query_pairs(&mut rng, n, cfg.detours);
    let batches = publish_batches(&matrix, cfg.publishes);

    let mut best: Option<RunResult> = None;
    for rep in 0..reps {
        let r = run_once(&matrix, &cfg, &points, &sources, &detours, &batches);
        println!(
            "# rep {rep}: point_wall_s={:.3} nearest_wall_s={:.3} detour_wall_s={:.3} \
             publish_wall_s={:.3} checksum={:.3}",
            r.point_wall_s, r.nearest_wall_s, r.detour_wall_s, r.publish_wall_s, r.checksum
        );
        if best
            .as_ref()
            .is_none_or(|b| r.point_wall_s < b.point_wall_s)
        {
            best = Some(r);
        }
    }
    let best = best.expect("at least one rep");
    let wall_s = best.point_wall_s + best.nearest_wall_s + best.detour_wall_s + best.publish_wall_s;
    let rate = cfg.points as f64 / best.point_wall_s.max(f64::MIN_POSITIVE);

    let queries = cfg.points + cfg.nearest + cfg.detours;
    let failed = (best.obs.counter_value(names::ORACLE_QUERY_UNKNOWN_NODE)
        + best.obs.counter_value(names::ORACLE_QUERY_UNMEASURED)) as usize;
    let measured = queries - failed.min(queries);

    let config = format!(
        "oracle relays={} points={} nearest={} k={} detours={} publishes={}",
        cfg.relays, cfg.points, cfg.nearest, cfg.k, cfg.detours, cfg.publishes
    );
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"schema\":\"ting-bench-oracle-v2\",\"seed\":{},\"config_hash\":\"{:016x}\",\
         \"relays\":{},\"samples\":{},\"reps\":{reps},\
         \"pairs\":{queries},\"measured\":{measured},\"failed\":{failed},\
         \"wall_s\":{wall_s:.6},\"virtual_s\":0.000,\"pairs_per_wall_s\":{rate:.3}",
        cfg.seed,
        config_hash(&config),
        cfg.relays,
        cfg.k,
    );
    json.push_str(",\"phases\":{");
    for (i, (key, hist)) in [
        ("point", names::ORACLE_ANSWER_POINT_US),
        ("nearest", names::ORACLE_ANSWER_NEAREST_US),
        ("detour", names::ORACLE_ANSWER_DETOUR_US),
        ("publish", "oracle.pipeline.batch_pairs"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            json.push(',');
        }
        let h = best.obs.histogram(hist).unwrap_or_default();
        let _ = write!(json, "\"{key}\":{}", hist_quantiles_json(&h));
    }
    json.push_str("}}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write oracle bench json");

    println!(
        "# oracle_load: relays={} points={} seed={}",
        cfg.relays, cfg.points, cfg.seed
    );
    let publish_rate = cfg.publishes as f64 / best.publish_wall_s.max(f64::MIN_POSITIVE);
    println!(
        "point_lookups_per_s={rate:.1} nearest_wall_s={:.3} detour_wall_s={:.3} \
         publishes_per_s={publish_rate:.1}",
        best.nearest_wall_s, best.detour_wall_s
    );
    println!("wrote {out_path}");

    if min_rate > 0 && rate < min_rate as f64 {
        eprintln!("FAIL: point lookup rate {rate:.1}/s is below the {min_rate}/s floor");
        std::process::exit(1);
    }
}
