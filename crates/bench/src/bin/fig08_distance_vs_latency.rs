//! Figure 8: Ting-measured RTT vs great-circle distance for 10,000
//! random pairs of live relays, with geolocation-derived coordinates.
//!
//! Paper expectations: a strong linear trend; essentially no points
//! below the ⅔·c propagation bound (the handful that appear are
//! geolocation errors); a min-latency fit that sits *below* a
//! median-latency fit (the Htrae comparison — Htrae measured medians);
//! a surge of extra latency on long international paths.

use bench::{env_usize, seed};
use geo::{GeoDb, GeoErrorModel};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stats::linear_fit;
use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let n_pairs = env_usize("TING_PAIRS", 10_000);
    let relays = env_usize("TING_RELAYS", 300);
    let samples = env_usize("TING_SAMPLES", 50);

    let mut net = TorNetworkBuilder::live(seed(), relays).build();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed() ^ 0xf18);

    // The "Neustar" lookup: error-prone geolocation of each relay.
    let mut geodb = GeoDb::new(GeoErrorModel::default());
    for &r in &net.relays {
        let true_loc = net.sim.underlay().node(r.index()).location;
        geodb.insert(r.index(), true_loc);
    }

    let ting = Ting::new(TingConfig::with_samples(samples));
    println!("# Fig. 8: distance_km\tting_rtt_ms\tmedian_rtt_ms");
    let mut dists = Vec::new();
    let mut mins = Vec::new();
    let mut medians = Vec::new();
    let mut below_light = 0usize;
    let mut pool = net.relays.clone();
    for i in 0..n_pairs {
        pool.shuffle(&mut rng);
        let (x, y) = (pool[0], pool[1]);
        let m = match ting.measure_pair(&mut net, x, y) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let est = m.estimate_ms();
        // A median-filter variant of the same samples (the Htrae-style
        // statistic) for the second fit line.
        let med_full = stats::median(&m.full.samples).unwrap();
        let med_x = stats::median(&m.x_leg.samples).unwrap();
        let med_y = stats::median(&m.y_leg.samples).unwrap();
        let est_median = ting::ting_estimate_ms(med_full, med_x, med_y);

        let gx = geodb.estimate(x.index(), &mut rng).unwrap();
        let gy = geodb.estimate(y.index(), &mut rng).unwrap();
        let d_km = geo::great_circle_km(gx, gy);
        if !geo::lightspeed::physically_possible(est, d_km) {
            below_light += 1;
        }
        dists.push(d_km);
        mins.push(est);
        medians.push(est_median);
        if i % 20 == 0 {
            println!("{d_km:.1}\t{est:.2}\t{est_median:.2}");
        }
    }

    let fit_min = linear_fit(&dists, &mins).unwrap();
    let fit_med = linear_fit(&dists, &medians).unwrap();
    println!("#");
    println!("# pairs measured: {}", dists.len());
    println!(
        "# min-latency fit   : rtt = {:.5}*km + {:.2}  (r2 {:.3})",
        fit_min.slope, fit_min.intercept, fit_min.r_squared
    );
    println!(
        "# median-latency fit: rtt = {:.5}*km + {:.2}  (Htrae-like, above the min fit)",
        fit_med.slope, fit_med.intercept
    );
    println!(
        "# 2/3 c bound       : rtt = {:.5}*km   (physical floor)",
        2.0 / geo::FIBER_KM_PER_MS
    );
    println!(
        "# points below 2/3c : {} of {} ({:.2}%) — geolocation errors (paper: 'a handful')",
        below_light,
        dists.len(),
        below_light as f64 / dists.len() as f64 * 100.0
    );
    let gap_ok = fit_med.predict(5000.0) > fit_min.predict(5000.0);
    println!("# median fit above min fit at 5000 km: {gap_ok} (paper: Htrae above Ting)");
}
