//! The observability overhead gate.
//!
//! The `obs` layer's budget is ≤5% wall-clock overhead at `Metrics`
//! level on the scan hot path. This binary runs the same all-pairs
//! scan round alternately with observability off and at `Metrics`
//! (interleaved, so CPU frequency drift hits both modes equally),
//! takes the minimum wall time per mode, and **exits nonzero** when
//! the instrumented run exceeds `off · 1.05 + 50 ms` — the absolute
//! slack keeps sub-second smoke configurations from gating on noise.
//!
//! It also enforces the stronger determinism contract along the way:
//! every mode (including one ungated `Trace` rep) must end in a
//! bit-identical scanner checkpoint at the same virtual instant.
//!
//! Environment overrides: `TING_SEED`, `TING_RELAYS` (default 40),
//! `TING_SAMPLES` (default 3), `TING_REPS` (default 3 per mode).

use bench::{env_u64, env_usize, seed};
use netsim::{NodeId, SimTime};
use ting::obs::{Obs, ObsConfig};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

/// One scan round; returns (wall seconds, checkpoint, final instant).
fn run_once(seed: u64, relays: usize, samples: usize, mode: ObsConfig) -> (f64, String, u64) {
    let obs = Obs::new(mode);
    let mut net = TorNetworkBuilder::live(seed, relays)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.clone();
    let pairs = nodes.len() * (nodes.len() - 1) / 2;
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            pairs_per_round: pairs,
            ..ScannerConfig::default()
        },
    );
    let ting = Ting::with_obs(TingConfig::with_samples(samples), obs);
    let started = std::time::Instant::now();
    scanner.run_round(&mut net, &ting);
    let wall = started.elapsed().as_secs_f64();
    (
        wall,
        scanner.to_checkpoint(),
        (net.sim.now() - SimTime::ZERO).as_nanos(),
    )
}

fn main() {
    let relays = env_usize("TING_RELAYS", 40);
    let samples = env_usize("TING_SAMPLES", 3);
    let reps = env_usize("TING_REPS", 3).max(1);
    let seed = env_u64("TING_SEED", seed());

    let mut off_best = f64::INFINITY;
    let mut metrics_best = f64::INFINITY;
    let mut fingerprint: Option<(String, u64)> = None;
    let mut check = |mode: &str, ckpt: String, now: u64| match &fingerprint {
        None => fingerprint = Some((ckpt, now)),
        Some((c, t)) => {
            assert_eq!(*c, ckpt, "{mode} mode changed the scan outcome");
            assert_eq!(*t, now, "{mode} mode changed the virtual clock");
        }
    };
    for rep in 0..reps {
        let (off, ckpt, now) = run_once(seed, relays, samples, ObsConfig::Off);
        check("off", ckpt, now);
        let (met, ckpt, now) = run_once(seed, relays, samples, ObsConfig::Metrics);
        check("metrics", ckpt, now);
        println!("# rep {rep}: off_s={off:.3} metrics_s={met:.3}");
        off_best = off_best.min(off);
        metrics_best = metrics_best.min(met);
    }
    let (trace_s, ckpt, now) = run_once(seed, relays, samples, ObsConfig::Trace);
    check("trace", ckpt, now);

    let budget = off_best * 1.05 + 0.05;
    let overhead_pct = (metrics_best / off_best - 1.0) * 100.0;
    println!("# obs_overhead: relays={relays} samples={samples} seed={seed} reps={reps}");
    println!(
        "off_s={off_best:.3} metrics_s={metrics_best:.3} trace_s={trace_s:.3} \
         overhead_pct={overhead_pct:.1} budget_s={budget:.3}"
    );
    if metrics_best > budget {
        eprintln!(
            "FAIL: metrics-mode scan took {metrics_best:.3}s, over the \
             5% overhead budget ({budget:.3}s; off={off_best:.3}s)"
        );
        std::process::exit(1);
    }
    println!("PASS: instrumentation within the 5% overhead budget");
}
