//! Headline scalar claims from the paper, paper-vs-measured.
//!
//! Everything that isn't a figure: the Spearman rank correlation
//! (§4.2), the strawman's failure (§3.2), measurement time per pair
//! (§4.4: ~2.5 min at 200 samples, < 15 s at ~5% error), and the
//! forwarding-delay floor (§3.3: 0–3 ms minima).

use bench::{env_usize, seed, testbed_accuracy_dataset};
use ting::{measure_forwarding_delay, strawman::strawman_measure, ProbeProtocol, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let samples = env_usize("TING_SAMPLES", 200);
    println!("# headline scalars: paper vs measured\n");

    // ── Spearman ρ between Ting and ground truth (§4.2). ──
    let data = testbed_accuracy_dataset(samples, env_usize("TING_PAIRS", 930));
    let est: Vec<f64> = data.iter().map(|p| p.estimate_ms).collect();
    let truth: Vec<f64> = data.iter().map(|p| p.truth_ms).collect();
    let rho = stats::spearman(&est, &truth).unwrap();
    println!("spearman rank correlation      paper 0.997    measured {rho:.4}");

    // ── Strawman vs Ting error on discriminating networks (§3.2). ──
    let mut net = TorNetworkBuilder::testbed(seed()).build();
    let ting = Ting::new(TingConfig::with_samples(samples));
    let mut ting_errs = Vec::new();
    let mut straw_errs = Vec::new();
    // The §3.2 failure mode needs discriminating networks on the path:
    // compare on pairs whose endpoints' ASes treat protocols unequally
    // (~35% of testbed networks, §4.3).
    let discriminating: Vec<_> = net
        .relays
        .clone()
        .into_iter()
        .filter(|r| {
            let as_id = net.sim.underlay().node(r.index()).as_id;
            net.sim.underlay().as_profile(as_id).policy.discriminates()
        })
        .collect();
    let neutral: Vec<_> = net
        .relays
        .clone()
        .into_iter()
        .filter(|r| !discriminating.contains(r))
        .collect();
    let pair_list: Vec<_> = discriminating
        .iter()
        .flat_map(|&d| neutral.iter().take(3).map(move |&n| (d, n)))
        .take(24)
        .collect();
    for &(x, y) in &pair_list {
        let t = net.true_rtt_ms(x, y);
        let m = ting.measure_pair(&mut net, x, y).unwrap();
        let s = strawman_measure(&ting, &mut net, x, y, 100).unwrap();
        ting_errs.push(((m.estimate_ms() - t) / t).abs() * 100.0);
        straw_errs.push(((s.estimate_ms() - t) / t).abs() * 100.0);
    }
    println!(
        "median |error| vs truth        ting {:.1}%      strawman {:.1}%   (strawman mixes Tor+ping)",
        stats::median(&ting_errs).unwrap(),
        stats::median(&straw_errs).unwrap()
    );
    println!(
        "p90 |error| vs truth           ting {:.1}%      strawman {:.1}%   (anomalous networks break it)",
        stats::quantile(&ting_errs, 0.9).unwrap(),
        stats::quantile(&straw_errs, 0.9).unwrap()
    );

    // ── Measurement time per pair (§4.4). ──
    let (x, y) = (net.relays[3], net.relays[19]);
    let slow = Ting::new(TingConfig::with_samples(200))
        .measure_pair(&mut net, x, y)
        .unwrap();
    let fast = Ting::new(TingConfig::fast())
        .measure_pair(&mut net, x, y)
        .unwrap();
    println!(
        "time per pair (200 samples)    paper ~150s    measured {:.0}s (virtual)",
        slow.elapsed_s
    );
    println!(
        "time per pair (~5% error)      paper <15s     measured {:.1}s with {} samples",
        fast.elapsed_s,
        fast.total_samples()
    );

    // ── Forwarding-delay floor (§3.3/§4.3). ──
    let mut floors = Vec::new();
    for i in [0usize, 7, 14, 21, 28] {
        let r = net.relays[i];
        if let Ok(m) = measure_forwarding_delay(&ting, &mut net, r, ProbeProtocol::Tcp, 50) {
            floors.push(m.f_x_ms);
        }
    }
    println!(
        "forwarding-delay estimates     paper 0-3ms    measured {:.2}..{:.2} ms (TCP probes, 5 relays)",
        floors.iter().copied().fold(f64::INFINITY, f64::min),
        floors.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    );

    // ── Accuracy headline (§4.2 / abstract). ──
    let ratios: Vec<f64> = data.iter().map(|p| p.ratio()).collect();
    let cdf = stats::EmpiricalCdf::new(&ratios);
    println!(
        "estimates within 10% of truth  paper 80-91%   measured {:.0}% ({} samples/circuit)",
        cdf.fraction_within_relative(1.0, 0.10) * 100.0,
        samples
    );
}
