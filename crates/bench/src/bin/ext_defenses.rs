//! Extension experiment: quantifying §5.1.3's sketched defenses.
//!
//! The paper proposes two countermeasures against RTT-assisted
//! deanonymization but evaluates neither. This binary measures both on
//! the same 50-node matrix as Fig. 12:
//!
//! * latency padding — victims inflate Re2e by U[0, P] for several P;
//! * circuit-length randomization — victims pick 3/4/5-hop circuits.
//!
//! Output: median fraction-of-network probed with and without each
//! defense, plus the share of the attacker's advantage removed.

use analysis::{evaluate_length_randomization, evaluate_padding, DeanonSimulator, Strategy};
use bench::{env_usize, live_matrix, seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let runs = env_usize("TING_RUNS", 500);
    let (_net, matrix) = live_matrix(n, samples);
    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xdef);

    // Brute-force baseline for the advantage calculation.
    let sim = DeanonSimulator::new(&matrix);
    let unaware: Vec<f64> = sim
        .run_many(Strategy::RttUnaware, runs, &mut rng)
        .iter()
        .map(|o| o.fraction_probed())
        .collect();
    let unaware_med = stats::median(&unaware).unwrap();
    println!("# defenses vs the ignore-too-large + informed attacker");
    println!(
        "# brute-force baseline median: {:.0}%\n",
        unaware_med * 100.0
    );

    println!("# defense\tparams\tundefended\tdefended\tadvantage_removed");
    for strategy in [Strategy::IgnoreTooLarge, Strategy::Informed] {
        for pad_ms in [25.0, 50.0, 100.0, 200.0, 400.0] {
            let o = evaluate_padding(&matrix, strategy, pad_ms, runs, &mut rng);
            println!(
                "padding({strategy:?})\t{pad_ms}ms\t{:.1}%\t{:.1}%\t{:.0}%",
                o.undefended * 100.0,
                o.defended * 100.0,
                o.advantage_removed(unaware_med) * 100.0
            );
        }
        let o = evaluate_length_randomization(&matrix, strategy, &[3, 4, 5], runs, &mut rng);
        println!(
            "len-random({strategy:?})\t3..5\t{:.1}%\t{:.1}%\t{:.0}%",
            o.undefended * 100.0,
            o.defended * 100.0,
            o.advantage_removed(unaware_med) * 100.0
        );
    }
    println!("#");
    println!("# paper (§5.1.3): padding costly but effective; length randomization");
    println!("# 'would slow down, but not completely eliminate' the attack.");
}
