//! Figure 12: fraction of the network each deanonymization strategy
//! must probe, over 1000 simulated circuits on the 50-node matrix.
//!
//! Paper expectations (medians): RTT-unaware 72%; ignore-too-large-RTTs
//! 62%; + informed target selection 48% — a 1.5× speedup overall. The
//! weighted footnote: informed-weighted beats weight-ordered by ~2×.

use analysis::{DeanonSimulator, Strategy};
use bench::{env_usize, live_matrix, print_cdf, seed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let runs = env_usize("TING_RUNS", 1000);
    let (_net, matrix) = live_matrix(n, samples);

    let sim = DeanonSimulator::new(&matrix);
    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xf12);

    let mut medians = HashMap::new();
    for (name, strategy) in [
        ("RTT-unaware", Strategy::RttUnaware),
        ("ignore too-large RTTs", Strategy::IgnoreTooLarge),
        ("+ informed target selection", Strategy::Informed),
    ] {
        let outcomes = sim.run_many(strategy, runs, &mut rng);
        let fracs: Vec<f64> = outcomes.iter().map(|o| o.fraction_probed()).collect();
        print_cdf(&format!("Fig. 12: {name}"), &fracs, 60);
        medians.insert(name, stats::median(&fracs).unwrap());
    }

    // The §5.1.1 weighted comparison (footnote 5).
    let mut wrng = SmallRng::seed_from_u64(seed() ^ 0xf12a);
    let weights: HashMap<netsim::NodeId, f64> = matrix
        .nodes()
        .iter()
        .map(|&node| (node, 1.0 / wrng.gen_range(0.1..1.0f64)))
        .collect();
    let wsim = DeanonSimulator::new(&matrix).with_weights(weights);
    let base_w = wsim.run_many(Strategy::WeightOrdered, runs, &mut rng);
    let inf_w = wsim.run_many(Strategy::InformedWeighted, runs, &mut rng);
    let med_base: Vec<f64> = base_w.iter().map(|o| o.fraction_probed()).collect();
    let med_inf: Vec<f64> = inf_w.iter().map(|o| o.fraction_probed()).collect();
    let (mb, mi) = (
        stats::median(&med_base).unwrap(),
        stats::median(&med_inf).unwrap(),
    );

    let unaware = medians["RTT-unaware"];
    let ignore = medians["ignore too-large RTTs"];
    let informed = medians["+ informed target selection"];
    println!("#");
    println!("# medians                         paper   measured");
    println!(
        "# RTT-unaware                     72%     {:.0}%",
        unaware * 100.0
    );
    println!(
        "# ignore too-large RTTs           62%     {:.0}%",
        ignore * 100.0
    );
    println!(
        "# + informed target selection     48%     {:.0}%",
        informed * 100.0
    );
    println!(
        "# speedup (unaware/informed)      1.5x    {:.2}x",
        unaware / informed
    );
    println!(
        "# weighted: ordered vs informed   2.0x    {:.2}x  ({:.0}% vs {:.0}%)",
        mb / mi,
        mb * 100.0,
        mi * 100.0
    );
}
