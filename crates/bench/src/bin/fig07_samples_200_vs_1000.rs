//! Figure 7: accuracy with 200 samples per circuit vs 1000.
//!
//! Paper expectation: the two Measured/Real CDFs are "almost identical",
//! justifying 200 samples (and, with a 5% error budget, far fewer) for
//! the rest of the paper's experiments.

use bench::{env_usize, print_cdf, testbed_accuracy_dataset};

fn main() {
    let hi = env_usize("TING_SAMPLES", 1000);
    let lo = env_usize("TING_SAMPLES_LO", 200);
    let pairs = env_usize("TING_PAIRS", 930);

    let data_hi = testbed_accuracy_dataset(hi, pairs);
    let data_lo = testbed_accuracy_dataset(lo, pairs);

    let ratios_hi: Vec<f64> = data_hi.iter().map(|p| p.ratio()).collect();
    let ratios_lo: Vec<f64> = data_lo.iter().map(|p| p.ratio()).collect();

    print_cdf(&format!("Fig. 7: {hi} samples"), &ratios_hi, 100);
    print_cdf(&format!("Fig. 7: {lo} samples"), &ratios_lo, 100);

    // Quantify "almost identical": max vertical gap between the CDFs
    // (a two-sample Kolmogorov–Smirnov statistic).
    let cdf_hi = stats::EmpiricalCdf::new(&ratios_hi);
    let cdf_lo = stats::EmpiricalCdf::new(&ratios_lo);
    let mut ks: f64 = 0.0;
    for &x in cdf_hi
        .sorted_samples()
        .iter()
        .chain(cdf_lo.sorted_samples())
    {
        ks = ks.max((cdf_hi.eval(x) - cdf_lo.eval(x)).abs());
    }
    let w10_hi = cdf_hi.fraction_within_relative(1.0, 0.10) * 100.0;
    let w10_lo = cdf_lo.fraction_within_relative(1.0, 0.10) * 100.0;

    println!("#");
    println!("# summary                      {hi} samples   {lo} samples");
    println!("# within 10% of truth          {w10_hi:.1}%        {w10_lo:.1}%");
    println!("# KS distance between CDFs     {ks:.4}  (paper: 'almost identical')");
}
