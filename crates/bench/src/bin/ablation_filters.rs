//! Ablation: design choices in the Ting estimator.
//!
//! 1. **Sample filter** — the paper takes the *minimum* of the samples
//!    (§3.3) because forwarding delays are additive noise; this ablation
//!    compares min / median / mean filters on the same samples.
//! 2. **Sample count** — the §4.4 trade-off, swept from 10 to 1000.
//! 3. **Early stopping** — the fast policy vs fixed counts.

use bench::{env_usize, seed};
use ting::{ting_estimate_ms, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let n_pairs = env_usize("TING_PAIRS", 40);
    let mut net = TorNetworkBuilder::testbed(seed()).build();
    let pairs: Vec<_> = (0..n_pairs)
        .map(|i| (net.relays[i % 31], net.relays[(i * 7 + 11) % 31]))
        .filter(|(a, b)| a != b)
        .collect();

    // ── Filter ablation at 200 samples. ──
    let ting = Ting::new(TingConfig::with_samples(200));
    let mut errs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &(x, y) in &pairs {
        let truth = net.true_rtt_ms(x, y);
        let m = ting.measure_pair(&mut net, x, y).unwrap();
        let filters: [fn(&[f64]) -> f64; 3] = [
            |s| s.iter().copied().fold(f64::INFINITY, f64::min),
            |s| stats::median(s).unwrap(),
            |s| stats::mean(s).unwrap(),
        ];
        for (k, f) in filters.iter().enumerate() {
            let est =
                ting_estimate_ms(f(&m.full.samples), f(&m.x_leg.samples), f(&m.y_leg.samples));
            errs[k].push(((est - truth) / truth).abs() * 100.0);
        }
    }
    println!(
        "# ablation 1: sample filter (200 samples/circuit, {} pairs)",
        pairs.len()
    );
    println!("# filter   median |rel err|");
    for (name, e) in ["min", "median", "mean"].iter().zip(&errs) {
        println!("{name}\t{:.2}%", stats::median(e).unwrap());
    }
    println!("# expectation: min wins — queueing noise is strictly additive\n");

    // ── Sample-count sweep. ──
    println!("# ablation 2: sample count sweep");
    println!("# samples  median |rel err|  virtual s/pair");
    for count in [10usize, 25, 50, 100, 200, 500, 1000] {
        let ting = Ting::new(TingConfig::with_samples(count));
        let mut errs = Vec::new();
        let mut times = Vec::new();
        for &(x, y) in pairs.iter().take(15) {
            let truth = net.true_rtt_ms(x, y);
            let m = ting.measure_pair(&mut net, x, y).unwrap();
            errs.push(((m.estimate_ms() - truth) / truth).abs() * 100.0);
            times.push(m.elapsed_s);
        }
        println!(
            "{count}\t{:.2}%\t{:.1}",
            stats::median(&errs).unwrap(),
            stats::median(&times).unwrap()
        );
    }
    println!("# expectation: error plateaus long before 1000 (Fig. 7)\n");

    // ── Early stopping. ──
    println!("# ablation 3: early-stop policy vs fixed 200");
    let fast = Ting::new(TingConfig::fast());
    let fixed = Ting::new(TingConfig::with_samples(200));
    let mut fast_err = Vec::new();
    let mut fast_n = Vec::new();
    let mut fixed_err = Vec::new();
    for &(x, y) in pairs.iter().take(15) {
        let truth = net.true_rtt_ms(x, y);
        let mf = fast.measure_pair(&mut net, x, y).unwrap();
        let mx = fixed.measure_pair(&mut net, x, y).unwrap();
        fast_err.push(((mf.estimate_ms() - truth) / truth).abs() * 100.0);
        fast_n.push(mf.total_samples() as f64);
        fixed_err.push(((mx.estimate_ms() - truth) / truth).abs() * 100.0);
    }
    println!(
        "early-stop: median err {:.2}% with median {:.0} samples",
        stats::median(&fast_err).unwrap(),
        stats::median(&fast_n).unwrap()
    );
    println!(
        "fixed-200 : median err {:.2}% with 600 samples",
        stats::median(&fixed_err).unwrap()
    );
    println!("# expectation: ~5% error budget at a fraction of the probes (§4.4)");
}
