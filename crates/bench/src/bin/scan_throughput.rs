//! Scan throughput vs. vantage-pool size.
//!
//! §6 of the paper projects all-pairs coverage of the live network by
//! running "multiple instances of Ting in parallel". This binary
//! quantifies that projection in the simulator: it runs a full
//! all-pairs scan of the same network at several vantage-pool sizes K
//! and reports the virtual time each takes, the sustained measurement
//! rate in pairs per virtual hour, and the speedup over the sequential
//! (K = 1) scanner.
//!
//! Environment overrides (see `bench` crate docs): `TING_SEED`,
//! `TING_RELAYS` (default 40), `TING_SAMPLES` (default 3 per circuit),
//! `TING_MAX_K` (default 4; the sweep is 1, 2, 4, … up to this).

use bench::{env_u64, env_usize, seed};
use netsim::{NodeId, SimTime};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let relays = env_usize("TING_RELAYS", 40);
    let samples = env_usize("TING_SAMPLES", 3);
    let max_k = env_usize("TING_MAX_K", 4).max(1);
    let seed = env_u64("TING_SEED", seed());

    let mut ks = Vec::new();
    let mut k = 1;
    while k <= max_k {
        ks.push(k);
        k *= 2;
    }

    println!("# scan_throughput: relays={relays} samples={samples} seed={seed}");
    println!("# k\tmeasured\tfailed\tvirtual_s\tpairs_per_virtual_hour\tspeedup");
    let mut sequential_s = None;
    for k in ks {
        let mut net = TorNetworkBuilder::live(seed, relays).vantages(k).build();
        let nodes: Vec<NodeId> = net.relays.clone();
        let pairs = nodes.len() * (nodes.len() - 1) / 2;
        let mut scanner = Scanner::new(
            nodes,
            ScannerConfig {
                pairs_per_round: pairs,
                ..ScannerConfig::default()
            },
        );
        let ting = Ting::new(TingConfig::with_samples(samples));
        let report = scanner.run_round_parallel(&mut net, &ting);
        let virtual_s = (net.sim.now() - SimTime::ZERO).as_secs_f64();
        let rate = report.measured as f64 / (virtual_s / 3600.0);
        let speedup = sequential_s.get_or_insert(virtual_s).max(f64::MIN_POSITIVE) / virtual_s;
        println!(
            "{k}\t{}\t{}\t{virtual_s:.1}\t{rate:.0}\t{speedup:.2}",
            report.measured, report.failed
        );
        assert_eq!(
            report.measured + report.failed,
            pairs,
            "round must attempt every pair"
        );
    }
}
