//! The repo's first wall-clock performance baseline.
//!
//! Runs one all-pairs scan round of a live network with observability
//! at `Metrics` and reports *host* wall-clock throughput — how fast the
//! simulator grinds through the measurement pipeline — alongside the
//! virtual-time cost and the per-phase latency histograms the `obs`
//! layer collected. Results go to `BENCH_scan.json` (override with
//! `TING_BENCH_OUT`) so CI can archive one data point per commit and
//! regressions show up as a trend, not an anecdote.
//!
//! Environment overrides: `TING_SEED`, `TING_RELAYS` (default 40),
//! `TING_SAMPLES` (default 3), `TING_REPS` (default 3; wall time is
//! the minimum over reps, the least-noise estimator), and `TING_PAIRS`
//! (optional: cap pairs scanned in the round, so large-relay configs —
//! e.g. the 300-relay baseline — stay affordable in CI; when set it
//! joins the config hash, so capped and uncapped runs never compare).

use bench::{env_u64, env_usize, hist_quantiles_json, seed};
use netsim::{NodeId, SimTime};
use std::fmt::Write as _;
use ting::obs::{config_hash, Obs, ObsConfig};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

struct RunResult {
    wall_s: f64,
    virtual_s: f64,
    measured: usize,
    failed: usize,
    obs: Obs,
}

fn run_once(seed: u64, relays: usize, samples: usize, cap: Option<usize>) -> RunResult {
    let obs = Obs::new(ObsConfig::Metrics);
    let mut net = TorNetworkBuilder::live(seed, relays)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.clone();
    let pairs = nodes.len() * (nodes.len() - 1) / 2;
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            pairs_per_round: cap.map_or(pairs, |c| c.min(pairs)),
            ..ScannerConfig::default()
        },
    );
    let ting = Ting::with_obs(TingConfig::with_samples(samples), obs.clone());
    let started = std::time::Instant::now();
    let report = scanner.run_round(&mut net, &ting);
    let wall_s = started.elapsed().as_secs_f64();
    net.publish_relay_totals();
    RunResult {
        wall_s,
        virtual_s: (net.sim.now() - SimTime::ZERO).as_secs_f64(),
        measured: report.measured,
        failed: report.failed,
        obs,
    }
}

fn main() {
    let relays = env_usize("TING_RELAYS", 40);
    let samples = env_usize("TING_SAMPLES", 3);
    let reps = env_usize("TING_REPS", 3).max(1);
    let seed = env_u64("TING_SEED", seed());
    let cap = std::env::var("TING_PAIRS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let out_path = std::env::var("TING_BENCH_OUT").unwrap_or_else(|_| "BENCH_scan.json".to_owned());

    let mut best: Option<RunResult> = None;
    for rep in 0..reps {
        let r = run_once(seed, relays, samples, cap);
        println!(
            "# rep {rep}: wall_s={:.3} virtual_s={:.1} measured={} failed={}",
            r.wall_s, r.virtual_s, r.measured, r.failed
        );
        if best.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
            best = Some(r);
        }
    }
    let best = best.expect("at least one rep");
    let pairs = best.measured + best.failed;
    let rate = pairs as f64 / best.wall_s.max(f64::MIN_POSITIVE);

    // The cap joins the hashed config string only when set, so every
    // historical (uncapped) baseline keeps its hash and stays
    // comparable.
    let mut config = format!("scan relays={relays} samples={samples}");
    if let Some(c) = cap {
        let _ = write!(config, " pairs={c}");
    }
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"schema\":\"ting-bench-scan-v1\",\"seed\":{seed},\"config_hash\":\"{:016x}\",\
         \"relays\":{relays},\"samples\":{samples},\"reps\":{reps},",
        config_hash(&config),
    );
    if let Some(c) = cap {
        let _ = write!(json, "\"pairs_cap\":{c},");
    }
    let _ = write!(
        json,
        "\"pairs\":{pairs},\"measured\":{},\"failed\":{},\
         \"wall_s\":{:.6},\"virtual_s\":{:.3},\"pairs_per_wall_s\":{rate:.3}",
        best.measured, best.failed, best.wall_s, best.virtual_s,
    );
    json.push_str(",\"phases\":{");
    for (i, (key, hist)) in [
        ("build", "ting.phase.build_us"),
        ("stream", "ting.phase.stream_us"),
        ("probe", "ting.phase.probe_us"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            json.push(',');
        }
        let h = best.obs.histogram(hist).unwrap_or_default();
        let _ = write!(json, "\"{key}\":{}", hist_quantiles_json(&h));
    }
    json.push_str("}}");
    std::fs::write(&out_path, format!("{json}\n")).expect("write baseline json");

    println!("# perf_baseline: relays={relays} samples={samples} seed={seed}");
    println!(
        "pairs={pairs} measured={} wall_s={:.3} pairs_per_wall_s={rate:.1}",
        best.measured, best.wall_s
    );
    println!("wrote {out_path}");
}
