//! Chaos soak: hours of virtual-time fault storm against the
//! self-healing scanner, with invariants checked every round.
//!
//! Builds a live network with link faults, relay overload, periodic
//! churn and mass revivals, and drives the parallel scanner with the
//! full self-healing stack enabled — relay health + quarantine,
//! adaptive per-phase timeouts, estimate validation, CRC-sealed
//! checkpoints. Mid-run the scanner process is "killed": serialized to
//! a checkpoint, torn down, and resumed. At the end the run is replayed
//! uninterrupted and the two final states are compared bit for bit.
//!
//! Invariants (any violation exits non-zero):
//! * no panics and no wedged rounds;
//! * completed-pair count is monotone;
//! * every cached estimate is plausible (positive, finite, at or above
//!   the pair's speed-of-light floor);
//! * every quarantine is eventually released once relays come back;
//! * kill/resume is bit-identical to the uninterrupted run.
//!
//! Usage: `chaos_soak [--seed N] [--virtual-hours H] [--trace-out PATH]`
//! (env fallbacks: `TING_SEED`, `TING_HOURS`). With `--trace-out` the
//! uninterrupted run records a full span trace and exports it as
//! `ting-obs-v1` JSONL for `ting-prof lint` / `ting-prof flame`.

use bench::env_u64;
use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use ting::obs::{config_hash, ExportMeta, Obs, ObsConfig};
use ting::{
    AdaptiveTimeoutConfig, HealthConfig, Scanner, ScannerConfig, Ting, TingConfig, ValidationConfig,
};
use tor_sim::churn::ChurnConfig;
use tor_sim::{RelayFaultProfile, TorNetwork, TorNetworkBuilder};

const ROUND_SECS: u64 = 300;
const N_NODES: usize = 8;

fn storm_net(seed: u64, obs: Option<&Obs>) -> TorNetwork {
    let mut builder = TorNetworkBuilder::live(seed, 12)
        .vantages(2)
        .fault_plan(
            FaultPlan::new(seed ^ 0x7)
                .with_link_loss(0.003)
                .with_stalls(0.001, 300.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: 0.01,
            overload_drop_prob: 0.002,
            overload_queue_depth: 32,
            seed: seed ^ 0x9,
        });
    if let Some(obs) = obs {
        builder = builder.observability(obs.clone());
    }
    builder.build()
}

fn scan_config() -> ScannerConfig {
    ScannerConfig {
        staleness: SimDuration::from_hours(24),
        pairs_per_round: 8,
        retry_backoff: SimDuration::from_secs(60),
        retry_backoff_cap: SimDuration::from_hours(1),
        health: Some(HealthConfig::default()),
        validation: Some(ValidationConfig::default()),
    }
}

fn ting_config() -> TingConfig {
    TingConfig {
        max_attempts: 2,
        max_lost_probes: 4,
        adaptive_timeouts: Some(AdaptiveTimeoutConfig::default()),
        ..TingConfig::fast()
    }
}

struct StormOutcome {
    checkpoint: String,
    timeouts: String,
    measured_pairs: usize,
    quarantines: u64,
    releases: u64,
    rejected: u64,
    flagged: u64,
    violations: Vec<String>,
}

fn storm_run(seed: u64, rounds: u64, kill_at: Option<u64>, obs: Option<&Obs>) -> StormOutcome {
    let make_ting = || match obs {
        Some(o) => Ting::with_obs(ting_config(), o.clone()),
        None => Ting::new(ting_config()),
    };
    let mut net = storm_net(seed, obs);
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(N_NODES).collect();
    let mut scanner = Scanner::new(nodes, scan_config());
    scanner.load_locations(&net);
    let mut ting = make_ting();
    let churn = ChurnConfig {
        initial_relays: 12,
        daily_departure_rate: 1.2,
        ..ChurnConfig::default()
    };
    let mut violations = Vec::new();
    let mut prev_measured = 0;
    for round in 0..rounds {
        let target = SimTime::ZERO + SimDuration::from_secs(round * ROUND_SECS);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        if round % 6 == 2 {
            net.churn_step(&churn, 1.0, seed ^ round);
            net.refresh_consensus();
        }
        if round % 9 == 8 {
            for &n in &net.relays.clone() {
                net.revive_relay(n);
            }
            net.refresh_consensus();
        }
        scanner.run_round_parallel(&mut net, &ting);

        let measured = scanner.matrix().measured_pairs();
        if measured < prev_measured {
            violations.push(format!(
                "round {round}: completed pairs went backwards ({prev_measured} -> {measured})"
            ));
        }
        prev_measured = measured;

        if kill_at == Some(round) {
            let checkpoint = scanner.to_checkpoint();
            let timeouts = ting.timeouts.export();
            match Scanner::from_checkpoint(&checkpoint) {
                Ok(s) => scanner = s,
                Err(e) => {
                    violations.push(format!("round {round}: own checkpoint refused: {e}"));
                    break;
                }
            }
            scanner.load_locations(&net);
            ting = make_ting();
            if let Err(e) = ting.timeouts.import(&timeouts) {
                violations.push(format!("round {round}: timeout state refused: {e}"));
                break;
            }
        }
    }

    for (a, b, est) in scanner.matrix().pairs() {
        if !(est.is_finite() && est > 0.05) {
            violations.push(format!(
                "implausible estimate cached ({},{}): {est}",
                a.0, b.0
            ));
            continue;
        }
        let pa = net.sim.underlay().node(a.index()).location;
        let pb = net.sim.underlay().node(b.index()).location;
        let floor = geo::lightspeed::min_rtt_ms(geo::great_circle_km(pa, pb));
        if est < floor {
            violations.push(format!(
                "faster-than-light estimate cached ({},{}): {est} < {floor}",
                a.0, b.0
            ));
        }
    }

    // Quarantine drain: revive everything and keep scanning until the
    // roster empties (probation + decay must release every relay).
    for &n in &net.relays.clone() {
        net.revive_relay(n);
    }
    net.refresh_consensus();
    let mut extra = 0u64;
    loop {
        let roster = scanner
            .health()
            .expect("storm config enables health")
            .quarantined_nodes();
        if roster.is_empty() {
            break;
        }
        extra += 1;
        if extra > 200 {
            violations.push(format!("quarantines never released: {roster:?}"));
            break;
        }
        let next = net.sim.now() + SimDuration::from_secs(1800);
        net.sim.advance_to(next);
        scanner.run_round_parallel(&mut net, &ting);
    }

    let snap = ting.metrics.snapshot();
    StormOutcome {
        checkpoint: scanner.to_checkpoint(),
        timeouts: ting.timeouts.export(),
        measured_pairs: scanner.matrix().measured_pairs(),
        quarantines: snap.relays_quarantined,
        releases: snap.relays_released,
        rejected: snap.estimates_rejected,
        flagged: snap.estimates_flagged,
        violations,
    }
}

/// Reads `--name value` from the CLI, falling back to `env_name`.
fn arg_u64(args: &[String], name: &str, env_name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64(env_name, default))
}

/// Reads an optional `--name value` string from the CLI.
fn arg_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", "TING_SEED", 2015);
    let hours = arg_u64(&args, "--virtual-hours", "TING_HOURS", 4);
    let trace_out = arg_str(&args, "--trace-out");
    let rounds = (hours * 3600 / ROUND_SECS).max(1);
    println!(
        "# chaos soak: seed={seed} virtual_hours={hours} rounds={rounds} (kill at round {})",
        rounds / 3
    );

    // Tracing rides on the uninterrupted run only; the obs layer is
    // behaviorally inert, so the bit-identity comparison against the
    // untraced resumed run still stands (and doubles as a check of
    // that inertness under storm conditions).
    let obs = trace_out.as_ref().map(|_| Obs::new(ObsConfig::Trace));
    let uninterrupted = storm_run(seed, rounds, None, obs.as_ref());
    let resumed = storm_run(seed, rounds, Some(rounds / 3), None);

    if let (Some(path), Some(obs)) = (&trace_out, &obs) {
        let meta = ExportMeta {
            seed,
            config_hash: config_hash(&format!("chaos-soak hours={hours}")),
        };
        let trace = obs.export_jsonl(&meta);
        if let Err(e) = std::fs::write(path, &trace) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("# trace: {} lines -> {path}", trace.lines().count());
    }

    let mut violations = Vec::new();
    violations.extend(uninterrupted.violations.iter().cloned());
    violations.extend(resumed.violations.iter().cloned());
    if uninterrupted.checkpoint != resumed.checkpoint {
        violations.push("kill/resume scanner state diverged from uninterrupted run".into());
    }
    if uninterrupted.timeouts != resumed.timeouts {
        violations.push("kill/resume timeout estimators diverged from uninterrupted run".into());
    }

    println!(
        "measured_pairs={} quarantines={} releases={} estimates_rejected={} estimates_flagged={}",
        uninterrupted.measured_pairs,
        uninterrupted.quarantines,
        uninterrupted.releases,
        uninterrupted.rejected,
        uninterrupted.flagged,
    );
    if violations.is_empty() {
        println!("chaos soak PASSED: kill/resume bit-identical, all invariants held");
    } else {
        println!("chaos soak FAILED:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
