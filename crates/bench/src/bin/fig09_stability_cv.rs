//! Figure 9: stability of Ting measurements over a week.
//!
//! 30 relay pairs (chosen to span the Fig. 8 RTT range) measured once
//! an hour for a week; CDF of each pair's coefficient of variation
//! `c_v = σ/µ`.
//!
//! Paper expectations: 96.7% of pairs (all but one) have c_v < 0.5;
//! over 50% have c_v ≈ 0; the one outlier is a low-mean pair.

use bench::{advance_to_hour, env_u64, env_usize, seed};
use stats::coefficient_of_variation;
use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

/// Selects `n` pairs spanning the RTT range: sorts candidate pairs by
/// ground truth and takes evenly spaced ranks.
fn spanning_pairs(
    net: &mut tor_sim::TorNetwork,
    n: usize,
) -> Vec<(netsim::NodeId, netsim::NodeId)> {
    let relays = net.relays.clone();
    let mut cands = Vec::new();
    for (i, &a) in relays.iter().enumerate() {
        for &b in relays.iter().skip(i + 1) {
            cands.push((net.true_rtt_ms(a, b), a, b));
        }
    }
    cands.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    (0..n)
        .map(|k| {
            let idx = k * (cands.len() - 1) / (n - 1).max(1);
            (cands[idx].1, cands[idx].2)
        })
        .collect()
}

fn main() {
    let hours = env_u64("TING_HOURS", 168);
    let n_pairs = env_usize("TING_PAIRS", 30);
    let samples = env_usize("TING_SAMPLES", 60);

    let mut net = TorNetworkBuilder::live(seed(), 80).build();
    let pairs = spanning_pairs(&mut net, n_pairs);
    let ting = Ting::new(TingConfig::with_samples(samples));

    // pair → hourly estimates.
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
    for hour in 0..hours {
        advance_to_hour(&mut net, hour);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            if let Ok(m) = ting.measure_pair(&mut net, x, y) {
                series[i].push(m.estimate_ms());
            }
        }
        if hour % 24 == 0 {
            eprintln!("[fig09] day {} done", hour / 24);
        }
    }

    let cvs: Vec<f64> = series
        .iter()
        .filter_map(|s| coefficient_of_variation(s))
        .collect();
    bench::print_cdf(
        "Fig. 9: coefficient of variation of hourly estimates",
        &cvs,
        60,
    );

    let below_half = cvs.iter().filter(|&&c| c < 0.5).count() as f64 / cvs.len() as f64;
    let near_zero = cvs.iter().filter(|&&c| c < 0.1).count() as f64 / cvs.len() as f64;
    println!("#");
    println!("# summary              paper     measured");
    println!(
        "# c_v < 0.5            96.7%     {:.1}%",
        below_half * 100.0
    );
    println!("# c_v ~ 0 (<0.1)       >50%      {:.1}%", near_zero * 100.0);

    // Persist the series for fig10 (box plots of the same data).
    let mut out = String::from("# pair\thour_estimates...\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str(&format!("{i}"));
        for v in s {
            out.push_str(&format!("\t{v:.4}"));
        }
        out.push('\n');
    }
    let path = bench::figdata_dir().join(format!("stability_s{}_h{hours}.tsv", seed()));
    std::fs::write(&path, out).expect("write stability series");
    eprintln!("[fig09] series cached at {}", path.display());
}
