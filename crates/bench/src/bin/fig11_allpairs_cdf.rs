//! Figure 11: CDF of RTTs from running Ting on all pairs of a random
//! 50-node set of live relays.
//!
//! Paper expectation: shape consistent with Fig. 8's latency marginal —
//! most mass between ~20 and ~250 ms with a tail toward 400 ms.

use bench::{env_usize, live_matrix, print_cdf};

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let (_net, matrix) = live_matrix(n, samples);

    let values = matrix.values();
    print_cdf(
        &format!(
            "Fig. 11: inter-Tor-node RTTs, {} pairs of {n} relays",
            values.len()
        ),
        &values,
        100,
    );

    let cdf = stats::EmpiricalCdf::new(&values);
    println!("#");
    println!(
        "# min / p25 / median / p75 / max (ms): {:.1} / {:.1} / {:.1} / {:.1} / {:.1}",
        cdf.min(),
        cdf.quantile(0.25),
        cdf.median(),
        cdf.quantile(0.75),
        cdf.max()
    );
    println!(
        "# mean (Algorithm 1's mu): {:.1} ms",
        matrix.mean_rtt_ms().unwrap()
    );
}
