//! Fault storm bench: success ratio and estimator error vs fault rate.
//!
//! Sweeps the full fault stack — link loss, jitter spikes, stream
//! stalls, EXTEND refusals, overload cell-dropping — over a set of
//! rates on a live network and reports, per rate, the pair success
//! ratio, the median/p90 relative estimator error against the
//! fault-free underlay ground truth, and the resilience counters.
//!
//! Overrides: `TING_SEED`, `TING_SAMPLES`, `TING_PAIRS` (pairs per
//! rate), `TING_RELAYS` (relay population, ≥20 measured).

use bench::{env_usize, seed};
use netsim::{FaultPlan, NodeId};
use ting::{Ting, TingConfig};
use tor_sim::{RelayFaultProfile, TorNetworkBuilder};

fn main() {
    let samples = env_usize("TING_SAMPLES", 10);
    let pairs_limit = env_usize("TING_PAIRS", 60);
    let relays = env_usize("TING_RELAYS", 30).max(20);
    let rates = [0.0, 0.002, 0.005, 0.01, 0.02];

    println!("# fault storm: {relays} relays, {pairs_limit} pairs/rate, {samples} samples");
    println!(
        "# rate\tsuccess\tmed_rel_err\tp90_rel_err\tcircuits_failed\tprobes_timed_out\tretries"
    );
    for (i, &rate) in rates.iter().enumerate() {
        let storm_seed = seed() ^ (0xFA00 + i as u64);
        let mut net = TorNetworkBuilder::live(storm_seed, relays)
            .fault_plan(
                FaultPlan::new(storm_seed ^ 0x1)
                    .with_link_loss(rate)
                    .with_jitter_spikes(rate, 40.0)
                    .with_stalls(rate * 0.5, 400.0),
            )
            .relay_faults(RelayFaultProfile {
                extend_refuse_prob: rate * 0.5,
                overload_drop_prob: rate,
                overload_queue_depth: 32,
                seed: storm_seed ^ 0x2,
            })
            .build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(20).collect();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for a in 0..nodes.len() {
            for b in (a + 1)..nodes.len() {
                pairs.push((nodes[a], nodes[b]));
            }
        }
        pairs.truncate(pairs_limit);

        let ting = Ting::new(TingConfig {
            max_lost_probes: 4,
            max_attempts: 5,
            ..TingConfig::with_samples(samples)
        });
        let mut succeeded = 0usize;
        let mut rel_errs: Vec<f64> = Vec::new();
        for &(x, y) in &pairs {
            let truth = net.true_rtt_ms(x, y);
            if let Ok(m) = ting.measure_pair(&mut net, x, y) {
                succeeded += 1;
                rel_errs.push((m.estimate_ms() - truth).abs() / truth);
            }
        }
        rel_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantile = |q: f64| -> f64 {
            if rel_errs.is_empty() {
                return f64::NAN;
            }
            let idx = ((rel_errs.len() - 1) as f64 * q).round() as usize;
            rel_errs[idx]
        };
        let c = ting.metrics.snapshot();
        println!(
            "{rate}\t{:.4}\t{:.4}\t{:.4}\t{}\t{}\t{}",
            succeeded as f64 / pairs.len() as f64,
            quantile(0.5),
            quantile(0.9),
            c.circuits_failed,
            c.probes_timed_out,
            c.retries,
        );
    }
    println!("# every rate terminated: per-phase timeouts + bounded retry, no deadlocks");
}
