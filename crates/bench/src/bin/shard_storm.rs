//! Shard soak: a fault storm against the sharded scan supervisor.
//!
//! Builds the same hostile network as `chaos_soak` — link faults, relay
//! overload, periodic churn and mass revivals — and drives a 4-shard
//! supervised scan through it in two phases:
//!
//! * **kill/resume** — mid-storm, a seeded-random shard is crashed; the
//!   supervisor restarts it from its checkpoint (through the on-disk
//!   file, exercising the fsync/rename/`.bak` plumbing) and the final
//!   merged matrix document must be bit-identical to an uninterrupted
//!   run of the same seed;
//! * **degraded mode** — a shard is killed past a zero restart budget;
//!   the survivors must keep scanning, every round must report exactly
//!   one quarantined shard, the merged document must carry the dead
//!   shard's uncovered pairs, and the whole scenario must be
//!   deterministic.
//!
//! Shared invariants (any violation exits non-zero): merged coverage is
//! monotone round over round, and every merged estimate is plausible
//! (positive, finite, at or above the pair's speed-of-light floor).
//!
//! Usage: `shard_storm [--seed N] [--virtual-hours H]`
//! (env fallbacks: `TING_SEED`, `TING_HOURS`).

use bench::env_u64;
use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use ting::shard::{MergeOutcome, ShardStatus, Supervisor, SupervisorConfig};
use ting::{AdaptiveTimeoutConfig, HealthConfig, ScannerConfig, TingConfig, ValidationConfig};
use tor_sim::churn::ChurnConfig;
use tor_sim::{RelayFaultProfile, TorNetwork, TorNetworkBuilder};

const ROUND_SECS: u64 = 300;
const N_NODES: usize = 10;
const SHARDS: usize = 4;

fn storm_net(seed: u64) -> TorNetwork {
    TorNetworkBuilder::live(seed, 12)
        .vantages(2)
        .fault_plan(
            FaultPlan::new(seed ^ 0x7)
                .with_link_loss(0.003)
                .with_stalls(0.001, 300.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: 0.01,
            overload_drop_prob: 0.002,
            overload_queue_depth: 32,
            seed: seed ^ 0x9,
        })
        .build()
}

fn scan_config() -> ScannerConfig {
    ScannerConfig {
        staleness: SimDuration::from_hours(24),
        pairs_per_round: 8,
        retry_backoff: SimDuration::from_secs(60),
        retry_backoff_cap: SimDuration::from_hours(1),
        health: Some(HealthConfig::default()),
        validation: Some(ValidationConfig::default()),
    }
}

fn ting_config() -> TingConfig {
    TingConfig {
        max_attempts: 2,
        max_lost_probes: 4,
        adaptive_timeouts: Some(AdaptiveTimeoutConfig::default()),
        ..TingConfig::fast()
    }
}

fn supervisor_config(restart_budget: u32) -> SupervisorConfig {
    SupervisorConfig {
        shards: SHARDS,
        scanner: scan_config(),
        heartbeat_timeout: SimDuration::from_hours(2),
        restart_budget,
        // Zero backoff: a crashed shard rejoins on the next round, so a
        // kill/resume run walks the same virtual-time schedule as an
        // uninterrupted one.
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    }
}

struct StormOutcome {
    merged_doc: String,
    merged: MergeOutcome,
    end: SimTime,
    quarantined: usize,
    violations: Vec<String>,
}

/// One supervised storm. `kill` = (round, shard) crashes that shard
/// right after that round; `checkpoint_dir` routes restarts through
/// on-disk shard files instead of the in-memory copies.
fn storm_run(
    seed: u64,
    rounds: u64,
    kill: Option<(u64, usize)>,
    restart_budget: u32,
    checkpoint_dir: Option<&std::path::Path>,
) -> StormOutcome {
    let mut net = storm_net(seed);
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(N_NODES).collect();
    let mut sup = Supervisor::new(nodes, supervisor_config(restart_budget), ting_config());
    if let Some(dir) = checkpoint_dir {
        std::fs::create_dir_all(dir).expect("create shard checkpoint dir");
        sup.set_checkpoint_dir(dir);
    }
    sup.load_locations(&net);
    let churn = ChurnConfig {
        initial_relays: 12,
        daily_departure_rate: 1.2,
        ..ChurnConfig::default()
    };
    let mut violations = Vec::new();
    let mut prev_covered = 0usize;
    for round in 0..rounds {
        let target = SimTime::ZERO + SimDuration::from_secs(round * ROUND_SECS);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        if round % 6 == 2 {
            net.churn_step(&churn, 1.0, seed ^ round);
            net.refresh_consensus();
        }
        if round % 9 == 8 {
            for &n in &net.relays.clone() {
                net.revive_relay(n);
            }
            net.refresh_consensus();
        }
        let report = sup.run_round(&mut net);
        if report.shards_run + report.shards_waiting + report.shards_quarantined < SHARDS {
            violations.push(format!(
                "round {round}: {} of {SHARDS} shards unaccounted for",
                SHARDS - report.shards_run - report.shards_waiting - report.shards_quarantined
            ));
        }
        match sup.merge(net.sim.now()) {
            Ok(m) => {
                let covered: usize = m.shards.iter().map(|c| c.covered).sum();
                if covered < prev_covered {
                    violations.push(format!(
                        "round {round}: merged coverage went backwards ({prev_covered} -> {covered})"
                    ));
                }
                prev_covered = covered;
            }
            Err(e) => violations.push(format!("round {round}: merge refused: {e}")),
        }
        if let Some((at, shard)) = kill {
            if at == round {
                sup.inject_crash(shard, net.sim.now());
            }
        }
    }

    let merged = match sup.merge(net.sim.now()) {
        Ok(m) => m,
        Err(e) => {
            violations.push(format!("final merge refused: {e}"));
            // An empty stand-in so the caller can still report.
            MergeOutcome {
                matrix: ting::RttMatrix::new(Vec::new()),
                measured_at: Default::default(),
                lineage: Default::default(),
                shards: Vec::new(),
                now: net.sim.now(),
            }
        }
    };
    for (a, b, est) in merged.matrix.pairs() {
        if !(est.is_finite() && est > 0.05) {
            violations.push(format!(
                "implausible estimate merged ({},{}): {est}",
                a.0, b.0
            ));
            continue;
        }
        let pa = net.sim.underlay().node(a.index()).location;
        let pb = net.sim.underlay().node(b.index()).location;
        let floor = geo::lightspeed::min_rtt_ms(geo::great_circle_km(pa, pb));
        if est < floor {
            violations.push(format!(
                "faster-than-light estimate merged ({},{}): {est} < {floor}",
                a.0, b.0
            ));
        }
    }

    let quarantined = (0..sup.shard_count())
        .filter(|&k| sup.status(k) == ShardStatus::Quarantined)
        .count();
    StormOutcome {
        merged_doc: merged.to_document(),
        merged,
        end: net.sim.now(),
        quarantined,
        violations,
    }
}

/// Reads `--name value` from the CLI, falling back to `env_name`.
fn arg_u64(args: &[String], name: &str, env_name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64(env_name, default))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", "TING_SEED", 2015);
    let hours = arg_u64(&args, "--virtual-hours", "TING_HOURS", 4);
    let rounds = (hours * 3600 / ROUND_SECS).max(3);
    let victim = (seed % SHARDS as u64) as usize;
    let kill_round = rounds / 3;
    println!(
        "# shard storm: seed={seed} virtual_hours={hours} rounds={rounds} \
         shards={SHARDS} (kill shard {victim} at round {kill_round})"
    );

    let mut violations = Vec::new();

    // Phase 1: kill/resume bit-identity. The resumed run restarts its
    // victim through an on-disk checkpoint file.
    let dir = std::env::temp_dir().join(format!("ting-shard-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let baseline = storm_run(seed, rounds, None, 3, None);
    let resumed = storm_run(seed, rounds, Some((kill_round, victim)), 3, Some(&dir));
    let _ = std::fs::remove_dir_all(&dir);
    violations.extend(baseline.violations.iter().cloned());
    violations.extend(resumed.violations.iter().cloned());
    if resumed.end != baseline.end {
        violations.push(format!(
            "kill/resume virtual clock diverged: {:?} vs {:?}",
            resumed.end, baseline.end
        ));
    }
    if resumed.merged_doc != baseline.merged_doc {
        violations.push("kill/resume merged document diverged from uninterrupted run".into());
    }
    println!(
        "# phase 1: coverage={:.4} measured_pairs={} (kill/resume {})",
        baseline.merged.coverage(),
        baseline.merged.matrix.measured_pairs(),
        if resumed.merged_doc == baseline.merged_doc {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Phase 2: degraded mode. Budget 0, killed early: the shard dies
    // for good and the survivors carry the scan.
    let degraded = storm_run(seed, rounds, Some((0, victim)), 0, None);
    let degraded_again = storm_run(seed, rounds, Some((0, victim)), 0, None);
    violations.extend(degraded.violations.iter().cloned());
    if degraded.merged_doc != degraded_again.merged_doc {
        violations.push("degraded-mode run is nondeterministic".into());
    }
    if degraded.quarantined != 1 {
        violations.push(format!(
            "expected exactly 1 quarantined shard, got {}",
            degraded.quarantined
        ));
    }
    let dead = &degraded.merged.shards[victim];
    if dead.status != "dead" {
        violations.push(format!("victim shard reported {:?}, not dead", dead.status));
    }
    if dead.uncovered == 0 {
        violations.push("victim shard reports no uncovered pairs: kill came too late".into());
    }
    if degraded.merged.coverage() >= 1.0 {
        violations.push("degraded coverage claims 100% with a dead shard".into());
    }
    let live_covered: usize = degraded
        .merged
        .shards
        .iter()
        .filter(|c| c.status == "live")
        .map(|c| c.covered)
        .sum();
    if live_covered == 0 {
        violations.push("surviving shards measured nothing in degraded mode".into());
    }
    println!(
        "# phase 2: coverage={:.4} dead_shard={victim} uncovered={} live_covered={live_covered}",
        degraded.merged.coverage(),
        dead.uncovered,
    );

    if violations.is_empty() {
        println!("shard storm PASSED: kill/resume bit-identical, degraded mode held");
    } else {
        println!("shard storm FAILED:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
