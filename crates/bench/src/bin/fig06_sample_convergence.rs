//! Figure 6: how many samples does the running minimum need to reach
//! (or approach) the minimum of 1000 samples?
//!
//! 100 random live-network pairs, 1000 Ting samples through each full
//! circuit; CDFs of the sample index that first achieves the final
//! minimum and its 1 ms / 1% / 5% / 10% approximations.
//!
//! Paper expectations: the true minimum takes hundreds of samples
//! (confirming Jansen et al.), but "within 1 ms" needs ~25× fewer
//! probes at the median.

use bench::{env_usize, print_cdf, seed};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stats::MinConvergence;
use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let n_pairs = env_usize("TING_PAIRS", 100);
    let samples = env_usize("TING_SAMPLES", 1000);
    let relays = env_usize("TING_RELAYS", 120);

    let mut net = TorNetworkBuilder::live(seed(), relays).build();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed() ^ 0xf16);
    let mut pool = net.relays.clone();
    pool.shuffle(&mut rng);

    let ting = Ting::new(TingConfig::with_samples(samples));
    let mut convergences = Vec::new();
    let (w, z) = (net.local_w, net.local_z);
    for pair in pool.chunks(2).take(n_pairs) {
        let [x, y] = [pair[0], pair[1]];
        let circuit = ting
            .sample_circuit(&mut net, vec![w, x, y, z])
            .expect("circuit sampled");
        convergences.push(MinConvergence::analyze(&circuit.samples).unwrap());
    }

    let to_min: Vec<f64> = convergences
        .iter()
        .map(|c| c.samples_to_min as f64)
        .collect();
    let within_1ms: Vec<f64> = convergences
        .iter()
        .map(|c| c.samples_to_within_abs(1.0) as f64)
        .collect();
    let within_1pct: Vec<f64> = convergences
        .iter()
        .map(|c| c.samples_to_within_rel(0.01) as f64)
        .collect();
    let within_5pct: Vec<f64> = convergences
        .iter()
        .map(|c| c.samples_to_within_rel(0.05) as f64)
        .collect();
    let within_10pct: Vec<f64> = convergences
        .iter()
        .map(|c| c.samples_to_within_rel(0.10) as f64)
        .collect();

    print_cdf("Fig. 6: samples to measured min", &to_min, 80);
    print_cdf("Fig. 6: samples to within 1ms", &within_1ms, 80);
    print_cdf("Fig. 6: samples to within 1%", &within_1pct, 80);
    print_cdf("Fig. 6: samples to within 5%", &within_5pct, 80);
    print_cdf("Fig. 6: samples to within 10%", &within_10pct, 80);

    let med = |v: &[f64]| stats::median(v).unwrap();
    println!("#");
    println!(
        "# medians: min={}, 1ms={}, 1%={}, 5%={}, 10%={}",
        med(&to_min),
        med(&within_1ms),
        med(&within_1pct),
        med(&within_5pct),
        med(&within_10pct)
    );
    println!(
        "# speedup accepting 1ms error: {:.0}x fewer probes (paper: ~25x)",
        med(&to_min) / med(&within_1ms).max(1.0)
    );
}
