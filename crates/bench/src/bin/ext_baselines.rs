//! Extension experiment: Ting vs its predecessors.
//!
//! The paper motivates Ting against two alternatives it cannot beat on
//! coverage but crushes on accuracy/viability:
//!
//! * **King** (§2, §4.2, §5.3) — proxy measurements via recursive DNS:
//!   skewed left of x = 1 (name servers are better connected than the
//!   hosts), and ~97% of name servers no longer cooperate;
//! * **geographic distance** (§5.2) — LASTor's proxy: correlated with
//!   RTT but structurally blind to triangle-inequality violations.
//!
//! This binary measures all three against ground truth on the same
//! relay population and prints their error CDFs and rank correlations.

use analysis::GeoPredictor;
use bench::{env_usize, print_cdf, seed};
use geo::{GeoDb, GeoErrorModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ting::{king_measure, KingConfig, KingOutcome, RttMatrix, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let n_pairs = env_usize("TING_PAIRS", 200);
    let samples = env_usize("TING_SAMPLES", 100);
    let mut net = TorNetworkBuilder::live(seed(), 120).build();
    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xba5e);

    let relays = net.relays.clone();
    let ting = Ting::new(TingConfig::with_samples(samples));
    let king_cfg = KingConfig {
        ns_availability: 1.0, // accuracy comparison; viability below
        ..KingConfig::year_2002()
    };

    // Geolocate everything once (error-prone, as in Fig. 8).
    let mut geodb = GeoDb::new(GeoErrorModel::default());
    for &r in &relays {
        geodb.insert(r.index(), net.sim.underlay().node(r.index()).location);
    }

    let mut ting_ratios = Vec::new();
    let mut king_ratios = Vec::new();
    let mut truths = Vec::new();
    let mut ting_ests = Vec::new();
    let mut pairs = Vec::new();
    for k in 0..n_pairs {
        let x = relays[(k * 7) % relays.len()];
        let y = relays[(k * 13 + 31) % relays.len()];
        if x == y {
            continue;
        }
        pairs.push((x, y));
        let truth = net.true_rtt_ms(x, y);
        let t = ting.measure_pair(&mut net, x, y).expect("ting");
        let now = net.sim.now();
        let KingOutcome::Estimate(kg) =
            king_measure(net.sim.underlay_mut(), x, y, &king_cfg, now, &mut rng)
        else {
            unreachable!("availability = 1");
        };
        truths.push(truth);
        ting_ests.push(t.estimate_ms());
        ting_ratios.push(t.estimate_ms() / truth);
        king_ratios.push(kg / truth);
    }

    print_cdf("Ting estimate / truth", &ting_ratios, 60);
    print_cdf("King estimate / truth", &king_ratios, 60);

    // Geographic predictor trained on the Ting measurements themselves.
    let mut matrix = RttMatrix::new({
        let mut ns: Vec<_> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        ns.sort();
        ns.dedup();
        ns
    });
    for (&(a, b), &est) in pairs.iter().zip(&ting_ests) {
        matrix.set(a, b, est);
    }
    let geo_rho = GeoPredictor::fit(&matrix, &geodb, &mut rng)
        .and_then(|p| {
            let mut pred = Vec::new();
            let mut real = Vec::new();
            for (&(a, b), &t) in pairs.iter().zip(&truths) {
                pred.push(p.predict(a, b)?);
                real.push(t);
            }
            stats::spearman(&pred, &real)
        })
        .unwrap_or(f64::NAN);

    let ting_rho = stats::spearman(&ting_ests, &truths).unwrap();
    let king_ests: Vec<f64> = king_ratios
        .iter()
        .zip(&truths)
        .map(|(r, t)| r * t)
        .collect();
    let king_rho = stats::spearman(&king_ests, &truths).unwrap();

    let med = |v: &[f64]| stats::median(v).unwrap();
    println!("#");
    println!("# estimator        median ratio   spearman vs truth   deployable?");
    println!(
        "# ting             {:.3}          {:.4}             yes (any Tor relay)",
        med(&ting_ratios),
        ting_rho
    );
    println!(
        "# king             {:.3}          {:.4}             ~3% of name servers left (§5.3)",
        med(&king_ratios),
        king_rho
    );
    println!(
        "# geo distance     n/a            {:.4}             yes, but TIV-blind (§5.2.1)",
        geo_rho
    );
    println!("#");
    println!("# paper: King 'exhibits a distribution skewed to the left of x = 1' — ");
    println!("# its median ratio above should be below Ting's and below 1.0.");
}
