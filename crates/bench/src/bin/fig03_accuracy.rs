//! Figure 3: CDF of Ting's estimate / ground truth over the 930 ordered
//! pairs of the 31-node validation testbed (1000 Ting samples per
//! circuit vs min-of-100-ping ground truth).
//!
//! Paper expectations: x = 1 means perfect; 91% of pairs within 10% of
//! truth; < 2% of pairs off by more than 30%; no skew to either side.

use bench::{env_usize, print_cdf, testbed_accuracy_dataset};

fn main() {
    let samples = env_usize("TING_SAMPLES", 1000);
    let pairs = env_usize("TING_PAIRS", 930);
    let data = testbed_accuracy_dataset(samples, pairs);

    let ratios: Vec<f64> = data.iter().map(|p| p.ratio()).collect();
    print_cdf(
        &format!(
            "Fig. 3: Measured/Real CDF ({} pairs, {} samples)",
            data.len(),
            samples
        ),
        &ratios,
        120,
    );

    let cdf = stats::EmpiricalCdf::new(&ratios);
    let within10 = cdf.fraction_within_relative(1.0, 0.10) * 100.0;
    let beyond30 = (1.0 - cdf.fraction_within_relative(1.0, 0.30)) * 100.0;
    let est: Vec<f64> = data.iter().map(|p| p.estimate_ms).collect();
    let truth: Vec<f64> = data.iter().map(|p| p.truth_ms).collect();
    let rho = stats::spearman(&est, &truth).unwrap();

    println!("#");
    println!("# summary            paper    measured");
    println!("# within 10%         91%      {within10:.1}%");
    println!("# error > 30%        <2%      {beyond30:.1}%");
    println!("# spearman rho       0.997    {rho:.4}");
    println!("# median ratio       ~1.0     {:.4}", cdf.median());
}
