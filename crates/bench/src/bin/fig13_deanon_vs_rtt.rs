//! Figure 13: fraction of nodes ruled out *implicitly* (before any
//! probing) vs the victim circuit's end-to-end RTT.
//!
//! Paper expectations: a strong negative correlation — the lower the
//! end-to-end RTT, the more relays the RTT budget excludes; the very
//! highest-RTT circuits gain nothing.

use analysis::{DeanonSimulator, Strategy};
use bench::{env_usize, live_matrix, seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let runs = env_usize("TING_RUNS", 1000);
    let (_net, matrix) = live_matrix(n, samples);

    let sim = DeanonSimulator::new(&matrix);
    let mut rng = SmallRng::seed_from_u64(seed() ^ 0xf13);
    let outcomes = sim.run_many(Strategy::IgnoreTooLarge, runs, &mut rng);

    println!("# Fig. 13: re2e_ms\tfraction_ruled_out");
    for o in &outcomes {
        println!("{:.1}\t{:.4}", o.re2e_ms, o.fraction_ruled_out());
    }

    let re2e: Vec<f64> = outcomes.iter().map(|o| o.re2e_ms).collect();
    let ruled: Vec<f64> = outcomes.iter().map(|o| o.fraction_ruled_out()).collect();
    let rho = stats::spearman(&re2e, &ruled).unwrap();

    // Bin the relationship for readability.
    let max_rtt = re2e.iter().copied().fold(0.0f64, f64::max);
    let mut layout = stats::Histogram::with_bin_width(0.0, max_rtt + 1.0, 100.0);
    layout.add(0.0); // layout only; counts unused
    let groups =
        stats::hist::group_by_bins(&layout, re2e.iter().copied().zip(ruled.iter().copied()));
    println!("#");
    println!("# binned: re2e_bin_ms\tmean_fraction_ruled_out\truns");
    for (i, g) in groups.iter().enumerate() {
        if g.is_empty() {
            continue;
        }
        println!(
            "# {:.0}\t{:.3}\t{}",
            layout.bin_center(i),
            stats::mean(g).unwrap(),
            g.len()
        );
    }
    println!("#");
    println!("# spearman(re2e, ruled_out) = {rho:.3}  (paper: strongly negative)");
}
