//! Extension experiment: the §6 path-selection design space.
//!
//! "\[Ting\] could also be used to improve the latency of Tor while
//! maintaining, and even improving, the level of anonymity it provides,
//! by greatly increasing the set of acceptable circuits for a given
//! RTT, though we leave specific algorithms to future work."
//!
//! This binary runs `analysis::pathsel`'s algorithm over the 50-node
//! matrix for a sweep of RTT budgets, reporting (a) the acceptable
//! circuit population when lengths 3–6 are allowed vs 3 only, and
//! (b) the node-usage entropy of the resulting selection — latency
//! *and* anonymity, quantified together.

use analysis::{PathSelector, PathSelectorConfig};
use bench::{env_usize, live_matrix, seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let (_net, matrix) = live_matrix(n, samples);
    let mut rng = SmallRng::seed_from_u64(seed() ^ 0x9a7);

    println!("# budget_ms\tcircuits_3hop\tcircuits_3to6\tgain\tentropy_3hop\tentropy_3to6");
    for budget_ms in [150.0, 200.0, 250.0, 300.0, 400.0, 600.0] {
        let narrow = PathSelector::new(
            &matrix,
            PathSelectorConfig {
                min_len: 3,
                max_len: 3,
                budget_ms,
                pilot_samples: 4000,
            },
            &mut rng,
        );
        let wide = PathSelector::new(
            &matrix,
            PathSelectorConfig {
                min_len: 3,
                max_len: 6,
                budget_ms,
                pilot_samples: 4000,
            },
            &mut rng,
        );
        let pn = narrow.profile(400, &mut rng);
        let pw = wide.profile(400, &mut rng);
        let gain = if pn.total_circuits() > 0.0 {
            pw.total_circuits() / pn.total_circuits()
        } else {
            f64::INFINITY
        };
        println!(
            "{budget_ms}\t{:.3e}\t{:.3e}\t{gain:.1}x\t{:.3}\t{:.3}",
            pn.total_circuits(),
            pw.total_circuits(),
            pn.normalized_entropy(),
            pw.normalized_entropy()
        );
    }
    println!("#");
    println!("# expectation (§6): allowing longer circuits multiplies the acceptable");
    println!("# set at every budget without collapsing node-usage entropy.");
}
