//! Figure 18: total running relays and unique /24 prefixes over two
//! months of consensuses (Feb 28 – Apr 28, 2015 in the paper).
//!
//! Paper expectations: 5426–6044 unique /24s throughout; total relays
//! ~30% above the prior year (a gentle upward trend with daily churn).

use analysis::CoverageReport;
use bench::{env_u64, env_usize, seed};
use tor_sim::churn::{ChurnConfig, ChurnModel};

fn main() {
    let days = env_usize("TING_DAYS", 60) as u32;
    let mut model = ChurnModel::new(ChurnConfig::default(), env_u64("TING_SEED", seed()));

    println!("# Fig. 18: day\ttotal_relays\tunique_slash24");
    let series = model.run(days);
    let mut min24 = usize::MAX;
    let mut max24 = 0;
    for s in &series {
        println!("{}\t{}\t{}", s.day, s.running_relays, s.unique_slash24);
        min24 = min24.min(s.unique_slash24);
        max24 = max24.max(s.unique_slash24);
    }

    let report = CoverageReport::analyze(model.relays());
    println!("#");
    println!("# summary                    paper        measured");
    println!("# unique /24 range           5426-6044    {min24}-{max24}");
    println!(
        "# final population           ~6634        {}",
        report.total_relays
    );
    println!(
        "# relays with rDNS           5484/6634    {}/{}",
        report.named, report.total_relays
    );
    println!(
        "# residential of named       ~61%         {:.0}%",
        report.residential_fraction_of_named() * 100.0
    );
    println!(
        "# named hosting companies    ~706         {}",
        report.datacenter
    );
}
