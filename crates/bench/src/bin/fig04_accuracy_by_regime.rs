//! Figure 4: the Fig. 3 accuracy CDF split into four latency regimes
//! (< 50 ms, 50–150 ms, 150–250 ms, > 250 ms of ground-truth RTT).
//!
//! Paper expectation: accuracy improves with latency — each successive
//! regime's CDF is steeper and tighter around x = 1, and most outliers
//! come from the < 50 ms group (small absolute errors look large in
//! relative terms).

use bench::{env_usize, print_cdf, testbed_accuracy_dataset};

fn main() {
    let samples = env_usize("TING_SAMPLES", 1000);
    let pairs = env_usize("TING_PAIRS", 930);
    let data = testbed_accuracy_dataset(samples, pairs);

    let regimes: [(&str, f64, f64); 4] = [
        ("< 50ms", 0.0, 50.0),
        ("50-150ms", 50.0, 150.0),
        ("150-250ms", 150.0, 250.0),
        ("> 250ms", 250.0, f64::INFINITY),
    ];

    println!("# Fig. 4: Measured/Real CDFs by ground-truth regime");
    let mut spreads = Vec::new();
    for (name, lo, hi) in regimes {
        let ratios: Vec<f64> = data
            .iter()
            .filter(|p| p.truth_ms >= lo && p.truth_ms < hi)
            .map(|p| p.ratio())
            .collect();
        if ratios.is_empty() {
            println!("# regime {name}: no pairs");
            continue;
        }
        print_cdf(
            &format!("regime {name} ({} pairs)", ratios.len()),
            &ratios,
            60,
        );
        let cdf = stats::EmpiricalCdf::new(&ratios);
        let spread = cdf.quantile(0.95) - cdf.quantile(0.05);
        spreads.push((name, spread, cdf.median()));
        println!("#   p5-p95 spread {spread:.4}, median {:.4}", cdf.median());
    }

    println!("#");
    println!("# paper expectation: spreads shrink with latency regime");
    for w in spreads.windows(2) {
        let (a, sa, _) = w[0];
        let (b, sb, _) = w[1];
        let ok = if sb <= sa { "ok" } else { "VIOLATED" };
        println!("# {a} ({sa:.3}) >= {b} ({sb:.3})  [{ok}]");
    }
}
