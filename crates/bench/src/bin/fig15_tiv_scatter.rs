//! Figure 15: TIV detour RTT vs default-path RTT for every violating
//! pair.
//!
//! Paper expectations: TIV-capable pairs occur across the whole RTT
//! range (not just long or short paths); points sit below y = x, with
//! substantial drops (> 30% decrease) indicating performance-
//! insensitive Internet routing.

use analysis::TivReport;
use bench::{env_usize, live_matrix};

fn main() {
    let n = env_usize("TING_RELAYS", 50);
    let samples = env_usize("TING_SAMPLES", 200);
    let (_net, matrix) = live_matrix(n, samples);

    let report = TivReport::analyze(&matrix);
    println!("# Fig. 15: default_rtt_ms\tdetour_rtt_ms");
    for (direct, detour) in report.scatter() {
        println!("{direct:.1}\t{detour:.1}");
    }

    // Are TIVs spread across the RTT range? Compare the quartiles of
    // the violating pairs' direct RTTs against all pairs'.
    let all: Vec<f64> = report.findings.iter().map(|f| f.direct_ms).collect();
    let viol: Vec<f64> = report
        .findings
        .iter()
        .filter(|f| f.is_violation())
        .map(|f| f.direct_ms)
        .collect();
    let big_drops = report
        .scatter()
        .iter()
        .filter(|(direct, detour)| detour / direct < 0.7)
        .count();
    println!("#");
    println!(
        "# all pairs direct RTT quartiles   : {:.0} / {:.0} / {:.0} ms",
        stats::quantile(&all, 0.25).unwrap(),
        stats::median(&all).unwrap(),
        stats::quantile(&all, 0.75).unwrap()
    );
    println!(
        "# TIV pairs direct RTT quartiles   : {:.0} / {:.0} / {:.0} ms  (paper: same range)",
        stats::quantile(&viol, 0.25).unwrap(),
        stats::median(&viol).unwrap(),
        stats::quantile(&viol, 0.75).unwrap()
    );
    println!("# detours with >30% RTT decrease   : {big_drops} (performance-insensitive routing)");
}
