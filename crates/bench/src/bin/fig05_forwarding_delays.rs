//! Figure 5: per-relay forwarding delays measured hourly over 48 hours
//! with the §4.3 procedure, using both ICMP (`ping`) and TCP
//! (`tcptraceroute`) direct probes.
//!
//! Paper expectations: ~65% of relays sit tightly in 0–2 ms; the rest
//! are "extremely odd" — often *negative* (ICMP slower than Tor) or
//! inflated (TCP/Tor shaped), with visible ICMP/TCP disagreement on
//! exactly those networks.

use bench::{advance_to_hour, env_u64, env_usize, seed};
use stats::BoxplotSummary;
use ting::{measure_forwarding_delay, ProbeProtocol, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let hours = env_u64("TING_HOURS", 48);
    let samples = env_usize("TING_SAMPLES", 60);
    let probes = env_usize("TING_PROBES", 20);

    let mut net = TorNetworkBuilder::testbed(seed()).build();
    let ting = Ting::new(TingConfig::with_samples(samples));
    let relays = net.relays.clone();

    // relay → (icmp F_x series, tcp F_x series) over the 48 hours.
    let mut series: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); relays.len()];
    for hour in 0..hours {
        advance_to_hour(&mut net, hour);
        for (i, &x) in relays.iter().enumerate() {
            let icmp = measure_forwarding_delay(&ting, &mut net, x, ProbeProtocol::Icmp, probes)
                .expect("icmp measurement");
            let tcp = measure_forwarding_delay(&ting, &mut net, x, ProbeProtocol::Tcp, probes)
                .expect("tcp measurement");
            series[i].0.push(icmp.f_x_ms);
            series[i].1.push(tcp.f_x_ms);
        }
        eprintln!("[fig05] hour {hour} done");
    }

    // Sort relays by ICMP median, as in the figure.
    let mut order: Vec<usize> = (0..relays.len()).collect();
    order.sort_by(|&a, &b| {
        stats::median(&series[a].0)
            .unwrap()
            .partial_cmp(&stats::median(&series[b].0).unwrap())
            .unwrap()
    });

    println!(
        "# Fig. 5: forwarding delays across {} relays, hourly x {hours}h",
        relays.len()
    );
    println!("# rank\ticmp_med\ticmp_q1\ticmp_q3\ttcp_med\ttcp_q1\ttcp_q3");
    let mut nominal = 0;
    let mut negative = 0;
    for (rank, &i) in order.iter().enumerate() {
        let icmp = BoxplotSummary::of(&series[i].0).unwrap();
        let tcp = BoxplotSummary::of(&series[i].1).unwrap();
        println!(
            "{rank}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            icmp.median, icmp.q1, icmp.q3, tcp.median, tcp.q1, tcp.q3
        );
        if icmp.median >= -0.5 && icmp.median <= 3.0 && (icmp.median - tcp.median).abs() < 1.5 {
            nominal += 1;
        }
        if icmp.median < -1.0 {
            negative += 1;
        }
    }
    let frac = nominal as f64 / relays.len() as f64 * 100.0;
    println!("#");
    println!("# summary                          paper      measured");
    println!("# relays with nominal 0-2ms F      ~65%       {frac:.0}%");
    println!("# relays with negative median F    'often'    {negative}");
    println!("# (negative F == ICMP treated worse than Tor; impossible on one path)");
}
