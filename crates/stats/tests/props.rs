//! Property-based tests for the statistics toolkit.

use proptest::prelude::*;
use stats::{
    corr::fractional_ranks, linear_fit, pearson, spearman, BoxplotSummary, EmpiricalCdf, Histogram,
    MinConvergence, Summary,
};

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..64)
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_bounded(xs in finite_vec(1)) {
        let c = EmpiricalCdf::new(&xs);
        let pts = c.points();
        prop_assert_eq!(pts.len(), xs.len());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!(c.eval(f64::NEG_INFINITY) == 0.0);
        prop_assert!((c.eval(f64::INFINITY) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_inverts_eval(xs in finite_vec(2), q in 0.0..1.0f64) {
        let c = EmpiricalCdf::new(&xs);
        let x = c.quantile(q);
        // The interpolated (type-7) quantile lies between two order
        // statistics, so the CDF at it can undershoot q by at most one
        // sample's worth of mass.
        prop_assert!(c.eval(x) + 1.0 / xs.len() as f64 + 1e-9 >= q);
        prop_assert!(x >= c.min() && x <= c.max());
    }

    #[test]
    fn summary_orders_quartiles(xs in finite_vec(1)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }

    #[test]
    fn boxplot_whiskers_inside_data(xs in finite_vec(1)) {
        let b = BoxplotSummary::of(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.whisker_lo >= lo && b.whisker_hi <= hi);
        // NB: when all data below q1 are outliers the whisker can land
        // inside the box (matplotlib behaves the same), so we only check
        // the whiskers bracket the median.
        prop_assert!(b.whisker_lo <= b.median + 1e-9);
        prop_assert!(b.whisker_hi >= b.median - 1e-9);
        // Every outlier is strictly outside the whiskers.
        for &o in &b.outliers {
            prop_assert!(o < b.whisker_lo || o > b.whisker_hi);
        }
    }

    #[test]
    fn correlations_bounded(xs in finite_vec(3), ys in finite_vec(3)) {
        let n = xs.len().min(ys.len());
        if let Some(r) = pearson(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = spearman(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in prop::collection::vec(0.001..1.0e3f64, 3..32)) {
        // Ranks are preserved by exp-like monotone maps, so spearman(x, f(x)) = 1.
        let ys: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
        if let Some(r) = spearman(&xs, &ys) {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_a_permutation_mass(xs in finite_vec(1)) {
        let r = fractional_ranks(&xs);
        let sum: f64 = r.iter().sum();
        let expect = (xs.len() * (xs.len() + 1)) as f64 / 2.0;
        prop_assert!((sum - expect).abs() < 1e-6);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0..100.0f64,
        intercept in -100.0..100.0f64,
        xs in prop::collection::vec(-1000.0..1000.0f64, 2..32),
    ) {
        // Need at least two distinct x values.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-4 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-3 * (1.0 + intercept.abs()));
    }

    #[test]
    fn histogram_conserves_observations(xs in finite_vec(1)) {
        let mut h = Histogram::new(-1.0e6, 1.0e6, 37);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn convergence_indices_ordered(xs in prop::collection::vec(0.001..1.0e4f64, 1..128)) {
        let c = MinConvergence::analyze(&xs).unwrap();
        let exact = c.samples_to_min;
        let w1 = c.samples_to_within_rel(0.01);
        let w5 = c.samples_to_within_rel(0.05);
        let w10 = c.samples_to_within_rel(0.10);
        // Looser tolerance can never require more samples.
        prop_assert!(w10 <= w5 && w5 <= w1 && w1 <= exact);
        prop_assert!(exact <= xs.len());
    }
}
