//! Ordinary least-squares linear fit.
//!
//! Fig. 8 draws a linear fit of RTT against great-circle distance for
//! 10,000 live Tor pairs, and compares its slope to the Htrae gaming
//! dataset's fit. [`linear_fit`] produces the slope/intercept plus `r²`
//! so the bench binary can print and compare both lines.

/// Result of an OLS fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Residual `y − ŷ` for one observation.
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// Returns `None` if fewer than two points are given, lengths differ, or
/// all `x` are identical (slope undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() < 2 || xs.len() != ys.len() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // r² = explained variance / total variance; define r² = 1 for a
    // perfectly flat response (syy == 0) since the fit is exact.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 4);
    }

    #[test]
    fn noisy_line_r_squared_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!(f.r_squared > 0.97 && f.r_squared < 1.0);
        assert!((f.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn vertical_data_is_none() {
        assert_eq!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(linear_fit(&[1.0], &[1.0]), None);
        assert_eq!(linear_fit(&[], &[]), None);
        assert_eq!(linear_fit(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn flat_response_is_perfect_fit() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn predict_and_residual() {
        let f = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(f.predict(3.0), 7.0);
        assert_eq!(f.residual(3.0, 8.0), 1.0);
    }
}
