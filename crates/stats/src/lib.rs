//! Statistics toolkit for the Ting reproduction.
//!
//! Every experiment in the paper reduces to one of a small set of
//! statistical summaries: empirical CDFs (Figs. 3, 4, 7, 9, 11, 12, 14),
//! box-plot five-number summaries (Figs. 5, 10), rank correlation
//! (Spearman ρ = 0.997 headline), ordinary-least-squares fits (Fig. 8),
//! histograms over fixed bins (Figs. 16, 17), coefficients of variation
//! (Fig. 9), and minimum-convergence tracking (Fig. 6). This crate
//! implements all of them on plain `f64` slices with no dependencies, so
//! the rest of the workspace shares one audited implementation.
//!
//! All functions treat NaN as a programming error: inputs are asserted
//! NaN-free in debug builds — measurement code should never produce NaN
//! latencies.

pub mod boxplot;
pub mod cdf;
pub mod convergence;
pub mod corr;
pub mod hist;
pub mod ks;
pub mod linfit;
pub mod summary;

pub use boxplot::BoxplotSummary;
pub use cdf::EmpiricalCdf;
pub use convergence::MinConvergence;
pub use corr::{pearson, spearman};
pub use hist::Histogram;
pub use ks::ks_distance;
pub use linfit::{linear_fit, LinearFit};
pub use summary::{
    coefficient_of_variation, max, mean, median, min, quantile, stddev, variance, Summary,
};

/// Sorts a copy of `xs` ascending, treating all values as totally ordered.
///
/// Panics if any value is NaN.
pub(crate) fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in statistics input"));
    v
}
