//! Box-plot five-number summaries (Figs. 5 and 10).
//!
//! The paper draws box plots "capturing the median, interquartile ranges,
//! and minimum and maximum values within the interquartiles" — i.e. Tukey
//! whiskers clamped to observed data — for per-relay forwarding delays
//! (Fig. 5) and per-pair weekly stability (Fig. 10). [`BoxplotSummary`]
//! computes exactly that, plus the outliers beyond the whiskers.

use crate::sorted;
use crate::summary::quantile_sorted;

/// Tukey box-plot summary of one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest observation ≥ `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest observation ≤ `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Summarizes `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<BoxplotSummary> {
        if xs.is_empty() {
            return None;
        }
        let v = sorted(xs);
        let q1 = quantile_sorted(&v, 0.25);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let fence_lo = q1 - 1.5 * iqr;
        let fence_hi = q3 + 1.5 * iqr;
        let whisker_lo = v.iter().copied().find(|&x| x >= fence_lo).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= fence_hi)
            .unwrap_or(v[v.len() - 1]);
        let outliers = v
            .iter()
            .copied()
            .filter(|&x| x < fence_lo || x > fence_hi)
            .collect();
        Some(BoxplotSummary {
            q1,
            median: quantile_sorted(&v, 0.5),
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Whether this sample has no outliers beyond the whiskers — the
    /// paper's Fig. 10 observation that "67% of the pairs do not show a
    /// single outlier".
    pub fn has_outliers(&self) -> bool {
        !self.outliers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_sample_without_outliers() {
        let b = BoxplotSummary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(!b.has_outliers());
    }

    #[test]
    fn detects_outlier() {
        let b = BoxplotSummary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        // IQR = q3 - q1 = 4 - 2 = 2; hi fence = 4 + 3 = 7.
        assert_eq!(b.outliers, vec![100.0]);
        assert_eq!(b.whisker_hi, 4.0);
    }

    #[test]
    fn whiskers_clamp_to_data_not_fences() {
        let b = BoxplotSummary::of(&[10.0, 11.0, 12.0, 13.0]).unwrap();
        assert_eq!(b.whisker_lo, 10.0);
        assert_eq!(b.whisker_hi, 13.0);
    }

    #[test]
    fn single_value_degenerate() {
        let b = BoxplotSummary::of(&[7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_lo, 7.0);
        assert_eq!(b.whisker_hi, 7.0);
        assert!(!b.has_outliers());
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxplotSummary::of(&[]).is_none());
    }

    #[test]
    fn low_outlier_detected() {
        let b = BoxplotSummary::of(&[-50.0, 10.0, 11.0, 12.0, 13.0, 14.0]).unwrap();
        assert_eq!(b.outliers, vec![-50.0]);
        assert_eq!(b.whisker_lo, 10.0);
    }
}
