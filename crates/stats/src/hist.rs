//! Fixed-width histograms.
//!
//! Figs. 16 and 17 bin circuit RTTs into 50 ms buckets ("Bin size: 50ms")
//! and report, per bucket, circuit counts and median node-selection
//! probabilities. [`Histogram`] provides the binning plus per-bin value
//! accumulation used by those analyses.

/// A histogram over `[lo, hi)` with equal-width bins.
///
/// Values outside the range are counted in saturated edge bins, so no
/// observation is silently dropped (a "no silent truncation" rule the
/// experiment harness relies on).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
        }
    }

    /// Creates a histogram with bins of exactly `width` covering
    /// `[lo, hi)` (the last bin may extend past `hi`).
    pub fn with_bin_width(lo: f64, hi: f64, width: f64) -> Histogram {
        assert!(width > 0.0 && hi > lo);
        let bins = ((hi - lo) / width).ceil() as usize;
        Histogram {
            lo,
            width,
            counts: vec![0; bins.max(1)],
        }
    }

    /// Bin index for `x`, clamped to the edge bins.
    pub fn bin_of(&self, x: f64) -> usize {
        if x < self.lo {
            return 0;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
    }

    /// Records `weight` observations at once (used when scaling sampled
    /// circuit counts up to the full `C(n, ℓ)` population, Fig. 16).
    pub fn add_weighted(&mut self, x: f64, weight: u64) {
        let b = self.bin_of(x);
        self.counts[b] += weight;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint x-value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

/// Groups `(x, value)` observations into the bins of a reference
/// histogram layout and returns, per bin, the vector of values.
///
/// Fig. 17 needs, for each 50 ms RTT bin, the distribution of per-node
/// selection probabilities; this helper does the grouping.
pub fn group_by_bins(
    layout: &Histogram,
    observations: impl IntoIterator<Item = (f64, f64)>,
) -> Vec<Vec<f64>> {
    let mut groups = vec![Vec::new(); layout.bins()];
    for (x, v) in observations {
        groups[layout.bin_of(x)].push(v);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.99);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(100.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.add_weighted(0.5, 1000);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn bin_width_constructor_covers_range() {
        let h = Histogram::with_bin_width(0.0, 2.5, 0.05); // paper's 50ms bins
        assert_eq!(h.bins(), 50);
        assert!((h.bin_center(0) - 0.025).abs() < 1e-12);
        assert!((h.bin_lo(1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn series_matches_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        let s = h.series();
        assert_eq!(s, vec![(0.5, 1), (1.5, 2)]);
    }

    #[test]
    fn grouping_by_bins() {
        let layout = Histogram::new(0.0, 10.0, 2);
        let groups = group_by_bins(&layout, vec![(1.0, 0.1), (6.0, 0.2), (7.0, 0.3)]);
        assert_eq!(groups[0], vec![0.1]);
        assert_eq!(groups[1], vec![0.2, 0.3]);
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
