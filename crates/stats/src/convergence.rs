//! Minimum-convergence tracking (Fig. 6 and §4.4).
//!
//! Ting's estimator takes the *minimum* of many RTT samples through a
//! circuit. Fig. 6 asks: how many samples are needed before the running
//! minimum reaches (or gets acceptably close to) the eventual minimum of
//! 1000 samples? [`MinConvergence`] replays a sample sequence and records
//! the first index at which the running minimum enters each tolerance
//! band ("within 1 ms", "within 1%", "within 5%", "within 10%", exact).

/// Analysis of how quickly the running minimum of a sample sequence
/// approaches the final minimum.
#[derive(Debug, Clone, PartialEq)]
pub struct MinConvergence {
    /// The minimum over the whole sequence.
    pub final_min: f64,
    /// 1-based index of the sample that first achieved `final_min`.
    pub samples_to_min: usize,
    /// Total samples in the sequence.
    pub n: usize,
    mins: Vec<f64>, // running minimum after each sample
}

impl MinConvergence {
    /// Replays `samples` in order. Returns `None` for an empty sequence.
    pub fn analyze(samples: &[f64]) -> Option<MinConvergence> {
        if samples.is_empty() {
            return None;
        }
        let mut mins = Vec::with_capacity(samples.len());
        let mut cur = f64::INFINITY;
        for &s in samples {
            cur = cur.min(s);
            mins.push(cur);
        }
        let final_min = cur;
        let samples_to_min = mins.iter().position(|&m| m == final_min).unwrap() + 1;
        Some(MinConvergence {
            final_min,
            samples_to_min,
            n: samples.len(),
            mins,
        })
    }

    /// 1-based index of the first sample where the running minimum is
    /// within absolute tolerance `abs` of the final minimum.
    pub fn samples_to_within_abs(&self, abs: f64) -> usize {
        assert!(abs >= 0.0);
        let target = self.final_min + abs;
        self.mins.iter().position(|&m| m <= target).unwrap() + 1
    }

    /// 1-based index of the first sample where the running minimum is
    /// within relative tolerance `rel` (e.g. `0.05` = 5%) of the final
    /// minimum.
    pub fn samples_to_within_rel(&self, rel: f64) -> usize {
        assert!(rel >= 0.0);
        self.samples_to_within_abs(self.final_min.abs() * rel)
    }

    /// The running minimum after sample `i` (0-based).
    pub fn running_min(&self, i: usize) -> f64 {
        self.mins[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_min_monotone_nonincreasing() {
        let c = MinConvergence::analyze(&[5.0, 3.0, 4.0, 2.0, 6.0]).unwrap();
        assert_eq!(c.final_min, 2.0);
        assert_eq!(c.samples_to_min, 4);
        for i in 1..c.n {
            assert!(c.running_min(i) <= c.running_min(i - 1));
        }
    }

    #[test]
    fn within_abs_band_reached_earlier() {
        let c = MinConvergence::analyze(&[5.0, 3.0, 4.0, 2.0, 6.0]).unwrap();
        // Running mins: 5, 3, 3, 2, 2. Within 1.0 of 2.0 → first value ≤ 3.0 → index 2.
        assert_eq!(c.samples_to_within_abs(1.0), 2);
        assert_eq!(c.samples_to_within_abs(0.0), 4);
        assert_eq!(c.samples_to_within_abs(10.0), 1);
    }

    #[test]
    fn within_rel_band() {
        let c = MinConvergence::analyze(&[110.0, 104.0, 101.0, 100.0]).unwrap();
        // 5% of 100 = 5 → first running min ≤ 105 is at sample 2.
        assert_eq!(c.samples_to_within_rel(0.05), 2);
        // 1% → ≤ 101 at sample 3.
        assert_eq!(c.samples_to_within_rel(0.01), 3);
        assert_eq!(c.samples_to_within_rel(0.0), 4);
    }

    #[test]
    fn min_first_sample() {
        let c = MinConvergence::analyze(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.samples_to_min, 1);
        assert_eq!(c.samples_to_within_rel(0.10), 1);
    }

    #[test]
    fn empty_is_none() {
        assert!(MinConvergence::analyze(&[]).is_none());
    }

    #[test]
    fn duplicate_minimum_uses_first_occurrence() {
        let c = MinConvergence::analyze(&[4.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.samples_to_min, 2);
    }
}
