//! Two-sample Kolmogorov–Smirnov distance.
//!
//! Fig. 7's claim is that the 200-sample and 1000-sample accuracy CDFs
//! are "almost identical"; the KS statistic (the maximum vertical gap
//! between two empirical CDFs) is the standard way to quantify that.

use crate::cdf::EmpiricalCdf;

/// The two-sample KS statistic `sup_x |F(x) − G(x)|` in `[0, 1]`.
///
/// Returns `None` if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let fa = EmpiricalCdf::new(a);
    let fb = EmpiricalCdf::new(b);
    let mut d: f64 = 0.0;
    for &x in fa.sorted_samples().iter().chain(fb.sorted_samples()) {
        d = d.max((fa.eval(x) - fb.eval(x)).abs());
        // Step CDFs also differ just *below* each jump point.
        let eps = x.abs().max(1.0) * 1e-12;
        d = d.max((fa.eval(x - eps) - fb.eval(x - eps)).abs());
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&xs, &xs), Some(0.0));
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_distance(&a, &b), Some(1.0));
    }

    #[test]
    fn known_half_overlap() {
        // F puts all mass at 0, G half at 0 and half at 1 → sup gap 0.5.
        let a = [0.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(ks_distance(&a, &b), Some(0.5));
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let b = [3.0, 4.0, 8.0];
        assert_eq!(ks_distance(&a, &b), ks_distance(&b, &a));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(ks_distance(&[], &[1.0]), None);
        assert_eq!(ks_distance(&[1.0], &[]), None);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let a = [1.0, 2.0, 2.5, 7.0];
        let b = [0.5, 2.1, 6.0, 6.5, 9.0];
        let d = ks_distance(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.0);
    }
}
