//! Empirical cumulative distribution functions.
//!
//! Most of the paper's figures are CDFs: Ting-vs-ground-truth accuracy
//! ratios (Figs. 3, 4, 7), coefficients of variation (Fig. 9), all-pairs
//! RTTs (Fig. 11), deanonymization cost (Fig. 12), and TIV savings
//! (Fig. 14). [`EmpiricalCdf`] stores the sorted sample once and answers
//! `F(x)`, quantiles, and plot-ready point series.

use crate::sorted;
use crate::summary::quantile_sorted;

/// An empirical CDF over a finite sample.
///
/// Construction sorts the sample (`O(n log n)`); evaluation is a binary
/// search (`O(log n)`).
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    xs: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF of `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(samples: &[f64]) -> EmpiricalCdf {
        assert!(!samples.is_empty(), "empty sample for CDF");
        EmpiricalCdf {
            xs: sorted(samples),
        }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)`: the fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x given the
        // sorted order (first index where element > x).
        let count = self.xs.partition_point(|&v| v <= x);
        count as f64 / self.xs.len() as f64
    }

    /// The `q`-quantile (inverse CDF) with linear interpolation.
    ///
    /// # Panics
    /// Panics if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        quantile_sorted(&self.xs, q)
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.xs[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.xs[self.xs.len() - 1]
    }

    /// The fraction of samples within `tol` (relative) of `target`, i.e.
    /// with `|x/target − 1| ≤ tol`. Used for headline claims like
    /// "91% of estimates are within 10% of the true value" (§4.2).
    pub fn fraction_within_relative(&self, target: f64, tol: f64) -> f64 {
        assert!(target != 0.0);
        let lo = target * (1.0 - tol);
        let hi = target * (1.0 + tol);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        self.eval(hi) - self.eval(lo) + self.point_mass(lo)
    }

    /// The probability mass exactly at `x` (ties in the sample).
    pub fn point_mass(&self, x: f64) -> f64 {
        let below = self.xs.partition_point(|&v| v < x);
        let at_or_below = self.xs.partition_point(|&v| v <= x);
        (at_or_below - below) as f64 / self.xs.len() as f64
    }

    /// Plot-ready `(x, F(x))` step points, one per sample, ascending.
    ///
    /// This is exactly the series gnuplot would draw for the paper's CDF
    /// figures; the bench binaries print these rows.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.xs.len() as f64;
        self.xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Evaluates the CDF at `k` evenly spaced x-values across
    /// `[min, max]` — a compact fixed-size series for printed tables.
    pub fn sampled_points(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k >= 2);
        let (lo, hi) = (self.min(), self.max());
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Read-only access to the sorted sample.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> EmpiricalCdf {
        EmpiricalCdf::new(&[3.0, 1.0, 2.0, 2.0])
    }

    #[test]
    fn eval_steps() {
        let c = cdf();
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(1.5), 0.25);
        assert_eq!(c.eval(2.0), 0.75);
        assert_eq!(c.eval(3.0), 1.0);
        assert_eq!(c.eval(10.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let c = cdf();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 3.0);
        assert_eq!(c.median(), 2.0);
    }

    #[test]
    fn point_mass_counts_ties() {
        let c = cdf();
        assert_eq!(c.point_mass(2.0), 0.5);
        assert_eq!(c.point_mass(1.0), 0.25);
        assert_eq!(c.point_mass(9.0), 0.0);
    }

    #[test]
    fn fraction_within_relative_of_target() {
        // Ratios of estimate/truth clustered near 1.0.
        let c = EmpiricalCdf::new(&[0.95, 0.99, 1.0, 1.02, 1.3]);
        let f = c.fraction_within_relative(1.0, 0.10);
        assert!((f - 0.8).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let c = cdf();
        let pts = c.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn sampled_points_cover_range() {
        let c = cdf();
        let pts = c.sampled_points(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 1.0);
        assert_eq!(pts[4].0, 3.0);
        assert_eq!(pts[4].1, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_rejected() {
        let _ = EmpiricalCdf::new(&[]);
    }

    #[test]
    fn min_max_accessors() {
        let c = cdf();
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 3.0);
        assert_eq!(c.len(), 4);
    }
}
