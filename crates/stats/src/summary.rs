//! Scalar summaries: mean, variance, quantiles, coefficient of variation.
//!
//! The paper's stability analysis (§4.6, Fig. 9) reports the coefficient
//! of variation `c_v = σ / μ` per relay pair; its accuracy analysis uses
//! medians and quantiles throughout. These helpers operate on `&[f64]`
//! and are deliberately allocation-light.

use crate::sorted;

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`, not `n − 1`).
///
/// The paper's c_v figures are descriptive statistics over a fixed set of
/// hourly measurements, so the population convention is the right one.
/// Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Coefficient of variation `σ / μ` (Fig. 9's x-axis).
///
/// Returns `None` for an empty slice or when the mean is zero (the paper's
/// caveat that c_v "is very sensitive to changes when the mean is low" is
/// about small-but-nonzero means; a zero mean makes it undefined).
pub fn coefficient_of_variation(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return None;
    }
    Some(stddev(xs)? / m)
}

/// Minimum value. Returns `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum value. Returns `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Quantile by linear interpolation between closest ranks
/// (the "type 7" estimator used by R and NumPy's default).
///
/// `q` must lie in `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if xs.is_empty() {
        return None;
    }
    let v = sorted(xs);
    Some(quantile_sorted(&v, q))
}

/// Same as [`quantile`] but assumes `v` is already sorted ascending.
pub fn quantile_sorted(v: &[f64], q: f64) -> f64 {
    assert!(!v.is_empty());
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (the 0.5 quantile). Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// A five-number-plus summary of a sample, computed in one pass over the
/// sorted data. Convenient for printing experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
    pub stddev: f64,
}

impl Summary {
    /// Summarizes `xs`. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let v = sorted(xs);
        Some(Summary {
            n: v.len(),
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean: mean(&v).unwrap(),
            stddev: stddev(&v).unwrap(),
        })
    }

    /// Interquartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_stddev() {
        // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.5; 10]), Some(0.0));
    }

    #[test]
    fn cv_matches_sigma_over_mu() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let cv = coefficient_of_variation(&xs).unwrap();
        assert!((cv - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cv_undefined_for_zero_mean() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), None);
        assert_eq!(coefficient_of_variation(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        // Type-7: pos = 0.25 * 3 = 0.75 → 1 + 0.75*(2-1) = 1.75
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.5), Some(5.0));
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_five_numbers() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn min_max_reduce() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), Some(-1.0));
        assert_eq!(max(&[3.0, -1.0, 2.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }
}
