//! Correlation coefficients.
//!
//! §4.2 of the paper reports a Spearman rank-order correlation of 0.997
//! between Ting's estimates and ground truth ("for some applications, it
//! suffices to know only the rank order of latencies"). Spearman is
//! Pearson applied to fractional ranks with ties averaged; both are here.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if the slices are empty, have different lengths, or if
/// either sample has zero variance (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank-order correlation with average ranks for ties.
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    pearson(&rx, &ry)
}

/// Assigns 1-based fractional ranks, averaging over ties.
///
/// E.g. `[10, 20, 20, 30]` → `[1.0, 2.5, 2.5, 4.0]`.
pub fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // Find the run of tied values [i, j).
        let mut j = i + 1;
        while j < idx.len() && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_undefined() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn pearson_mismatched_lengths() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        // y = x^3 is monotone: Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.powi(3)).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [8.0, 6.0, 4.0, 2.0];
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(
            fractional_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn ranks_of_sorted_input() {
        assert_eq!(fractional_ranks(&[5.0, 6.0, 7.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ranks_all_tied() {
        assert_eq!(fractional_ranks(&[4.0, 4.0, 4.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_with_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }
}
