//! Event tracing.
//!
//! A bounded ring buffer of simulator events, attachable to a
//! [`crate::Simulator`] for debugging and for tests that assert on
//! *what happened* rather than only on final state. Disabled (zero
//! cost beyond a branch) unless a tracer is attached.

use crate::sim::{ConnId, NodeId};
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    Delivered {
        at: SimTime,
        conn: ConnId,
        to: NodeId,
        bytes: usize,
    },
    ConnOpened {
        at: SimTime,
        conn: ConnId,
        opener: NodeId,
        acceptor: NodeId,
    },
    ConnClosed {
        at: SimTime,
        conn: ConnId,
    },
    TimerFired {
        at: SimTime,
        node: NodeId,
        id: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Delivered { at, .. }
            | TraceEvent::ConnOpened { at, .. }
            | TraceEvent::ConnClosed { at, .. }
            | TraceEvent::TimerFired { at, .. } => at,
        }
    }
}

/// A shared, bounded trace buffer.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0);
        Tracer {
            inner: Rc::new(RefCell::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    pub(crate) fn record(&self, event: TraceEvent) {
        let mut buf = self.inner.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event);
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.inner.borrow_mut().clear();
    }

    /// Events involving one node (as receiver / opener / acceptor /
    /// timer owner).
    pub fn for_node(&self, node: NodeId) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| match *e {
                TraceEvent::Delivered { to, .. } => to == node,
                TraceEvent::ConnOpened {
                    opener, acceptor, ..
                } => opener == node || acceptor == node,
                TraceEvent::ConnClosed { .. } => false,
                TraceEvent::TimerFired { node: n, .. } => n == node,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::TimerFired {
            at: SimTime(n),
            node: NodeId(0),
            id: n,
        }
    }

    #[test]
    fn records_in_order() {
        let t = Tracer::new(10);
        for i in 0..5 {
            t.record(ev(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), SimTime(i as u64));
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let t = Tracer::new(3);
        for i in 0..10 {
            t.record(ev(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at(), SimTime(7));
        assert_eq!(events[2].at(), SimTime(9));
    }

    #[test]
    fn node_filter() {
        let t = Tracer::new(10);
        t.record(TraceEvent::TimerFired {
            at: SimTime(1),
            node: NodeId(1),
            id: 0,
        });
        t.record(TraceEvent::TimerFired {
            at: SimTime(2),
            node: NodeId(2),
            id: 0,
        });
        assert_eq!(t.for_node(NodeId(1)).len(), 1);
        assert_eq!(t.for_node(NodeId(3)).len(), 0);
    }

    #[test]
    fn clear_empties() {
        let t = Tracer::new(4);
        t.record(ev(0));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
