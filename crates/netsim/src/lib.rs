//! A deterministic, discrete-event network simulator.
//!
//! This is the substrate the simulated Tor overlay (`tor-sim`) runs on —
//! the stand-in for the physical Internet that the Ting paper measured
//! through. Its design goals, in order:
//!
//! 1. **Determinism.** Every run is a pure function of the seed. Events
//!    are dispatched in `(time, sequence)` order; all randomness flows
//!    from one seeded RNG. Experiments are replayable bit-for-bit.
//! 2. **The phenomena the paper measures must be real here.**
//!    - *Triangle-inequality violations* (§5.2.1): inter-AS paths carry
//!      per-AS-pair inflation factors, so the lowest-latency route
//!      between two nodes is frequently through a third AS.
//!    - *Protocol discrimination* (§3.2, Fig. 5): each AS has a policy
//!      that can delay ICMP, plain TCP, or Tor-port traffic differently —
//!      the reason the paper's strawman fails and ~35% of its forwarding-
//!      delay measurements look anomalous (even negative).
//!    - *Heavy-tailed sample noise* (Fig. 6): per-packet delay is base +
//!      exponential jitter + occasional queueing spikes, so minima take
//!      many samples to reach, exactly as Jansen et al. observed.
//!    - *Diurnal variation* (Figs. 9–10): jitter scales with a per-AS
//!      time-of-day load curve, so week-long measurements show small but
//!      non-zero variance.
//! 3. **Message-oriented reliable transport.** Tor cells are fixed-size
//!    records over TCP; the simulator delivers each `send` as one framed
//!    message, FIFO per connection, after a connect handshake costing one
//!    RTT. (A full byte-stream TCP state machine would add nothing to the
//!    measurement semantics; this choice is documented in DESIGN.md.)
//!
//! The API follows the event-driven style of `smoltcp`: node behaviours
//! are state machines implementing [`Process`], polled with a [`Context`]
//! that batches the actions they emit.

pub mod event;
pub mod fault;
pub mod process;
pub mod sim;
pub mod time;
pub mod trace;
pub mod underlay;

pub use event::{Event, EventKind};
pub use fault::{CrashWindow, FaultPlan, FaultStats};
pub use process::{Context, Process};
pub use sim::{ConnId, NodeId, Simulator};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
pub use underlay::{
    AsId, AsProfile, NodeAttrs, ProtocolPolicy, TrafficClass, Underlay, UnderlayConfig,
};
