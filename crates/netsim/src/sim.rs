//! The simulator engine: nodes, connections, and the dispatch loop.

use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::process::{Context, Op, Process};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};
use crate::underlay::{TrafficClass, Underlay};
use obs::{Counter, Obs, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How long an opener waits for a SYN+ACK that never comes before the
/// connection attempt is reported closed (blackholed connects only).
const CONNECT_TIMEOUT_MS: f64 = 3_000.0;

/// Identifies a node (dense index, shared with the underlay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a connection (globally unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// Per-connection state.
#[derive(Debug)]
struct ConnState {
    /// Active opener.
    a: NodeId,
    /// Passive acceptor.
    b: NodeId,
    class: TrafficClass,
    /// When the opener may start transmitting (handshake completion).
    ready_at: SimTime,
    /// FIFO enforcement: the last scheduled delivery per direction.
    last_delivery_a2b: SimTime,
    last_delivery_b2a: SimTime,
    closed: bool,
}

impl ConnState {
    fn peer_of(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b);
            self.a
        }
    }
}

/// Pre-resolved observability handles for the dispatch loop. Every
/// field is a null check + `Cell` bump when enabled, a null check when
/// not — the per-event budget that keeps [`obs::ObsConfig::Off`]
/// bit-identical and `Metrics` within the ≤5% overhead gate.
#[derive(Debug, Clone, Default)]
struct SimObs {
    obs: Obs,
    events: Counter,
    delivers: Counter,
    conns_opened: Counter,
    conns_established: Counter,
    conns_closed: Counter,
    timers: Counter,
    fault_events_dropped: Counter,
    fault_connects_blackholed: Counter,
    fault_messages_dropped: Counter,
    fault_delays: Counter,
}

impl SimObs {
    fn new(obs: Obs) -> SimObs {
        SimObs {
            events: obs.counter_handle("net.events"),
            delivers: obs.counter_handle("net.delivers"),
            conns_opened: obs.counter_handle("net.conns_opened"),
            conns_established: obs.counter_handle("net.conns_established"),
            conns_closed: obs.counter_handle("net.conns_closed"),
            timers: obs.counter_handle("net.timers"),
            fault_events_dropped: obs.counter_handle("net.fault.events_dropped"),
            fault_connects_blackholed: obs.counter_handle("net.fault.connects_blackholed"),
            fault_messages_dropped: obs.counter_handle("net.fault.messages_dropped"),
            fault_delays: obs.counter_handle("net.fault.delays"),
            obs,
        }
    }
}

/// The discrete-event simulator.
///
/// Owns the underlay, the node processes, the connection table, the
/// event queue, the clock, and the RNG. Everything that happens in a run
/// is a deterministic function of the construction seed and the sequence
/// of API calls.
pub struct Simulator {
    underlay: Underlay,
    processes: Vec<Option<Box<dyn Process>>>,
    started: Vec<bool>,
    queue: EventQueue,
    conns: HashMap<ConnId, ConnState>,
    now: SimTime,
    rng: SmallRng,
    next_conn: u64,
    tracer: Option<Tracer>,
    faults: FaultPlan,
    obs: SimObs,
}

impl Simulator {
    /// Creates a simulator over `underlay`, seeding the run RNG.
    pub fn new(underlay: Underlay, seed: u64) -> Simulator {
        Simulator {
            underlay,
            processes: Vec::new(),
            started: Vec::new(),
            queue: EventQueue::new(),
            conns: HashMap::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            next_conn: 0,
            tracer: None,
            faults: FaultPlan::disabled(),
            obs: SimObs::default(),
        }
    }

    /// Attaches an event tracer (keep a clone to read events later).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attaches an observability handle (keep a clone to read the
    /// registry later). The default is [`Obs::off`], which records
    /// nothing and leaves the run bit-identical to an uninstrumented
    /// build.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = SimObs::new(obs);
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs.obs
    }

    /// Installs a fault-injection plan. A disabled plan (the default)
    /// leaves every code path bit-identical to a fault-free build.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access, e.g. to add churn-driven crash windows mid-run.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Attaches `process` to the next underlay node. Must be called once
    /// per node, in underlay order; returns the node's id.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> NodeId {
        let id = NodeId(u32::try_from(self.processes.len()).expect("too many nodes"));
        assert!(
            self.processes.len() < self.underlay.node_count(),
            "more processes than underlay nodes"
        );
        self.processes.push(Some(process));
        self.started.push(false);
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlay (e.g. for ground-truth latency queries in tests and
    /// ping-based experiment code).
    pub fn underlay_mut(&mut self) -> &mut Underlay {
        &mut self.underlay
    }

    pub fn underlay(&self) -> &Underlay {
        &self.underlay
    }

    /// The run RNG (experiment drivers share it so a run stays a pure
    /// function of one seed).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// One synthetic ICMP echo RTT at the current time — Fig. 3's ground
    /// truth and the §3.2 strawman both use this.
    pub fn ping_rtt_ms(&mut self, a: NodeId, b: NodeId) -> f64 {
        self.underlay
            .ping_rtt_ms(a.index(), b.index(), self.now, &mut self.rng)
    }

    /// One TCP probe RTT (tcptraceroute-style) at the current time.
    pub fn tcp_rtt_ms(&mut self, a: NodeId, b: NodeId) -> f64 {
        self.underlay
            .tcp_rtt_ms(a.index(), b.index(), self.now, &mut self.rng)
    }

    /// Schedules an immediate wake-up timer for `node` (id
    /// `u64::MAX`) — the mechanism external drivers use to hand new
    /// commands to a process between runs.
    pub fn wake(&mut self, node: NodeId) {
        self.queue
            .schedule(self.now, EventKind::Timer { node, id: u64::MAX });
    }

    /// Advances the clock to `t` without dispatching anything scheduled
    /// after `t`. Events before `t` are processed.
    pub fn advance_to(&mut self, t: SimTime) {
        self.ensure_started();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// The timestamp of the earliest queued event, if any. Starts any
    /// not-yet-started processes first (their `on_start` hooks may
    /// schedule events).
    ///
    /// This is the interleaving hook external drivers use to multiplex
    /// several in-flight operations over one event loop: peek the next
    /// event time, compare it against their own wake-up deadlines, and
    /// either [`Simulator::step`] or [`Simulator::advance_to`] — never
    /// draining further than the earliest thing anyone is waiting on.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.ensure_started();
        self.queue.peek_time()
    }

    /// Runs until the event queue drains. Returns the number of events
    /// dispatched.
    pub fn run_until_idle(&mut self) -> u64 {
        self.ensure_started();
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Runs until the queue drains or `deadline` passes.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.ensure_started();
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Runs until the queue drains or the next event lies past
    /// `deadline`, **without** advancing the clock to the deadline.
    ///
    /// This is the timeout primitive the resilient measurement pipeline
    /// uses: when nothing is lost the queue drains exactly as
    /// [`Simulator::run_until_idle`] would (identical event stream,
    /// identical final clock), and when a reply never comes the caller
    /// observes the deadline expiring instead of blocking forever.
    pub fn run_until_idle_or(&mut self, deadline: SimTime) -> u64 {
        self.ensure_started();
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    fn ensure_started(&mut self) {
        for i in 0..self.processes.len() {
            if !self.started[i] {
                self.started[i] = true;
                self.dispatch_to(NodeId(i as u32), |p, ctx| p.on_start(ctx));
            }
        }
    }

    /// Dispatches the next event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.obs.events.inc();
        // A crashed node receives nothing: its deliveries, handshake
        // notifications, and timers all vanish while it is down. (On
        // reboot the process resumes with its pre-crash state, like a
        // daemon restarted from a snapshot; anything in flight is gone.)
        if self.faults.is_enabled() {
            let dest = match ev.kind {
                EventKind::Deliver { to, .. } => to,
                EventKind::ConnOpened { at, .. } => at,
                EventKind::ConnEstablished { at, .. } => at,
                EventKind::ConnClosed { at, .. } => at,
                EventKind::Timer { node, .. } => node,
            };
            if self.faults.node_down(dest, ev.at) {
                self.faults.count_event_dropped();
                self.obs.fault_events_dropped.inc();
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_FAULT_EVENT_DROPPED,
                        self.now.as_nanos(),
                        vec![("node", Value::U64(u64::from(dest.0)))],
                    );
                }
                return true;
            }
        }
        match ev.kind {
            EventKind::Deliver { conn, to, data } => {
                self.obs.delivers.inc();
                if let Some(t) = &self.tracer {
                    t.record(TraceEvent::Delivered {
                        at: self.now,
                        conn,
                        to,
                        bytes: data.len(),
                    });
                }
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_DELIVER,
                        self.now.as_nanos(),
                        vec![
                            ("conn", Value::U64(conn.0)),
                            ("to", Value::U64(u64::from(to.0))),
                            ("bytes", Value::U64(data.len() as u64)),
                        ],
                    );
                }
                self.dispatch_to(to, |p, ctx| p.on_data(ctx, conn, data));
            }
            EventKind::ConnOpened { conn, at, peer } => {
                self.obs.conns_opened.inc();
                if let Some(t) = &self.tracer {
                    t.record(TraceEvent::ConnOpened {
                        at: self.now,
                        conn,
                        opener: peer,
                        acceptor: at,
                    });
                }
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_CONN_OPENED,
                        self.now.as_nanos(),
                        vec![
                            ("conn", Value::U64(conn.0)),
                            ("opener", Value::U64(u64::from(peer.0))),
                            ("acceptor", Value::U64(u64::from(at.0))),
                        ],
                    );
                }
                self.dispatch_to(at, |p, ctx| p.on_conn_opened(ctx, conn, peer));
            }
            EventKind::ConnEstablished { conn, at } => {
                self.obs.conns_established.inc();
                self.dispatch_to(at, |p, ctx| p.on_conn_established(ctx, conn));
            }
            EventKind::ConnClosed { conn, at } => {
                self.obs.conns_closed.inc();
                if let Some(t) = &self.tracer {
                    t.record(TraceEvent::ConnClosed { at: self.now, conn });
                }
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_CONN_CLOSED,
                        self.now.as_nanos(),
                        vec![("conn", Value::U64(conn.0))],
                    );
                }
                self.dispatch_to(at, |p, ctx| p.on_conn_closed(ctx, conn));
            }
            EventKind::Timer { node, id } => {
                self.obs.timers.inc();
                if let Some(t) = &self.tracer {
                    t.record(TraceEvent::TimerFired {
                        at: self.now,
                        node,
                        id,
                    });
                }
                self.dispatch_to(node, |p, ctx| p.on_timer(ctx, id));
            }
        }
        true
    }

    /// Runs `f` on `node`'s process with a fresh context, then applies
    /// the ops the handler emitted.
    fn dispatch_to<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Process>, &mut Context),
    {
        let Some(slot) = self.processes.get_mut(node.index()) else {
            return;
        };
        let Some(mut process) = slot.take() else {
            // Re-entrant dispatch cannot happen (ops are buffered), so a
            // missing process means the node was removed; drop the event.
            return;
        };
        let mut ctx = Context {
            now: self.now,
            self_id: node,
            rng: &mut self.rng,
            ops: Vec::new(),
            next_conn: &mut self.next_conn,
        };
        f(&mut process, &mut ctx);
        let ops = std::mem::take(&mut ctx.ops);
        self.processes[node.index()] = Some(process);
        self.apply_ops(node, ops);
    }

    fn apply_ops(&mut self, from: NodeId, ops: Vec<Op>) {
        for op in ops {
            match op {
                Op::Open { conn, to, class } => self.do_open(from, conn, to, class),
                Op::Send { conn, data } => self.do_send(from, conn, data),
                Op::Close { conn } => self.do_close(from, conn),
                Op::Timer { delay, id } => {
                    self.queue
                        .schedule(self.now + delay, EventKind::Timer { node: from, id });
                }
            }
        }
    }

    fn do_open(&mut self, from: NodeId, conn: ConnId, to: NodeId, class: TrafficClass) {
        // A SYN toward a crashed host is blackholed: neither side ever
        // hears anything, and the opener's higher layers must time out.
        if self.faults.is_enabled()
            && (self.faults.node_down(to, self.now) || self.faults.node_down(from, self.now))
        {
            self.faults.count_connect_blackholed();
            self.obs.fault_connects_blackholed.inc();
            if self.obs.obs.is_tracing() {
                self.obs.obs.event(
                    obs::names::NET_FAULT_CONNECT_BLACKHOLED,
                    self.now.as_nanos(),
                    vec![
                        ("from", Value::U64(u64::from(from.0))),
                        ("to", Value::U64(u64::from(to.0))),
                    ],
                );
            }
            self.conns.insert(
                conn,
                ConnState {
                    a: from,
                    b: to,
                    class,
                    ready_at: SimTime::ZERO,
                    last_delivery_a2b: SimTime::ZERO,
                    last_delivery_b2a: SimTime::ZERO,
                    closed: true,
                },
            );
            // The opener's SYN retransmissions expire after a fixed
            // timeout; surface the failure as a close so its process
            // can drop cached state for the dead connection.
            let at = self.now + SimDuration::from_millis_f64(CONNECT_TIMEOUT_MS);
            self.queue
                .schedule(at, EventKind::ConnClosed { conn, at: from });
            return;
        }
        // SYN: one sampled one-way delay to the acceptor…
        let syn_ms =
            self.underlay
                .sample_owd_ms(from.index(), to.index(), class, self.now, &mut self.rng);
        let syn_at = self.now + SimDuration::from_millis_f64(syn_ms);
        // …SYN+ACK back to the opener.
        let ack_ms =
            self.underlay
                .sample_owd_ms(to.index(), from.index(), class, syn_at, &mut self.rng);
        let ready_at = syn_at + SimDuration::from_millis_f64(ack_ms);

        self.conns.insert(
            conn,
            ConnState {
                a: from,
                b: to,
                class,
                ready_at,
                last_delivery_a2b: SimTime::ZERO,
                last_delivery_b2a: SimTime::ZERO,
                closed: false,
            },
        );
        self.queue.schedule(
            syn_at,
            EventKind::ConnOpened {
                conn,
                at: to,
                peer: from,
            },
        );
        self.queue
            .schedule(ready_at, EventKind::ConnEstablished { conn, at: from });
    }

    fn do_send(&mut self, from: NodeId, conn: ConnId, data: Vec<u8>) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return; // Sending on an unknown/closed connection drops.
        };
        if state.closed {
            return;
        }
        let to = state.peer_of(from);
        // The opener cannot transmit before the handshake completes; the
        // acceptor cannot transmit before it learns of the connection.
        let tx_at = if from == state.a {
            self.now.max(state.ready_at)
        } else {
            self.now
        };
        let owd_ms = self.underlay.sample_owd_ms(
            from.index(),
            to.index(),
            state.class,
            tx_at,
            &mut self.rng,
        );
        // Fault hooks: silent loss drops the message entirely; spikes
        // and stalls add delay on top of the sampled one-way latency.
        let fault_extra_ms = if self.faults.is_enabled() {
            if self.faults.node_down(from, tx_at) || self.faults.drop_message() {
                self.obs.fault_messages_dropped.inc();
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_FAULT_MESSAGE_DROPPED,
                        self.now.as_nanos(),
                        vec![
                            ("conn", Value::U64(conn.0)),
                            ("from", Value::U64(u64::from(from.0))),
                        ],
                    );
                }
                return;
            }
            let extra = self.faults.extra_delay_ms();
            if extra > 0.0 {
                self.obs.fault_delays.inc();
                if self.obs.obs.is_tracing() {
                    self.obs.obs.event(
                        obs::names::NET_FAULT_DELAY,
                        self.now.as_nanos(),
                        vec![("conn", Value::U64(conn.0)), ("ms", Value::F64(extra))],
                    );
                }
            }
            extra
        } else {
            0.0
        };
        let mut deliver_at = tx_at + SimDuration::from_millis_f64(owd_ms + fault_extra_ms);
        // FIFO per direction: a message can't overtake its predecessor.
        let last = if from == state.a {
            &mut state.last_delivery_a2b
        } else {
            &mut state.last_delivery_b2a
        };
        if deliver_at <= *last {
            deliver_at = *last + SimDuration::from_nanos(1);
        }
        *last = deliver_at;
        self.queue
            .schedule(deliver_at, EventKind::Deliver { conn, to, data });
    }

    fn do_close(&mut self, from: NodeId, conn: ConnId) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.closed {
            return;
        }
        state.closed = true;
        let to = state.peer_of(from);
        let owd_ms = self.underlay.sample_owd_ms(
            from.index(),
            to.index(),
            state.class,
            self.now,
            &mut self.rng,
        );
        let at = self.now + SimDuration::from_millis_f64(owd_ms);
        self.queue
            .schedule(at, EventKind::ConnClosed { conn, at: to });
    }

    /// Number of live (non-closed) connections — useful for leak checks
    /// in tests.
    pub fn open_conn_count(&self) -> usize {
        self.conns.values().filter(|c| !c.closed).count()
    }

    /// Draws a random `u64` from the run RNG (for seeding sub-generators
    /// deterministically).
    pub fn draw_seed(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::IdleProcess;
    use crate::underlay::{AsProfile, UnderlayConfig};
    use geo::World;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Builds a two-node world: an echo server at node 1, a driver at 0.
    fn build() -> (Simulator, NodeId, NodeId) {
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let b = u.add_as(AsProfile::datacenter("b", lon));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
        u.add_node_in(b, lon, [10, 1, 0, 1], &mut seed_rng);
        let mut sim = Simulator::new(u, 99);
        let n0 = sim.add_process(Box::new(IdleProcess));
        let n1 = sim.add_process(Box::new(EchoServer));
        (sim, n0, n1)
    }

    /// Echoes every message back on the same connection.
    struct EchoServer;
    impl Process for EchoServer {
        fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
            ctx.send(conn, data);
        }
    }

    /// Opens a connection, sends pings, records RTT samples.
    struct PingDriver {
        target: NodeId,
        remaining: u32,
        conn: Option<ConnId>,
        sent_at: SimTime,
        results: Rc<RefCell<Vec<f64>>>,
    }
    impl Process for PingDriver {
        fn on_start(&mut self, ctx: &mut Context) {
            self.conn = Some(ctx.open(self.target, TrafficClass::Tcp));
        }
        fn on_conn_established(&mut self, ctx: &mut Context, conn: ConnId) {
            self.sent_at = ctx.now;
            ctx.send(conn, vec![1, 2, 3]);
        }
        fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
            assert_eq!(data, vec![1, 2, 3]);
            let rtt = (ctx.now - self.sent_at).as_millis_f64();
            self.results.borrow_mut().push(rtt);
            self.remaining -= 1;
            if self.remaining > 0 {
                self.sent_at = ctx.now;
                ctx.send(conn, vec![1, 2, 3]);
            } else {
                ctx.close(conn);
            }
        }
    }

    #[test]
    fn echo_round_trips_match_underlay() {
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let b = u.add_as(AsProfile::datacenter("b", lon));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
        u.add_node_in(b, lon, [10, 1, 0, 1], &mut seed_rng);
        let base_rtt = u.base_rtt_ms(0, 1, TrafficClass::Tcp);

        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(u, 99);
        let n1 = NodeId(1);
        sim.add_process(Box::new(PingDriver {
            target: n1,
            remaining: 50,
            conn: None,
            sent_at: SimTime::ZERO,
            results: results.clone(),
        }));
        sim.add_process(Box::new(EchoServer));
        sim.run_until_idle();

        let rtts = results.borrow();
        assert_eq!(rtts.len(), 50);
        let min = rtts.iter().copied().fold(f64::INFINITY, f64::min);
        // Every sample at or above the base RTT; minimum close to it.
        for &r in rtts.iter() {
            assert!(r >= base_rtt - 1e-6, "rtt {r} below base {base_rtt}");
        }
        assert!(min < base_rtt * 1.25, "min {min} vs base {base_rtt}");
        // Connection was closed.
        assert_eq!(sim.open_conn_count(), 0);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = || {
            let results = Rc::new(RefCell::new(Vec::new()));
            let (mut sim, _, n1) = {
                let (sim, a, b) = build();
                (sim, a, b)
            };
            // Replace node 0's process with a driver by rebuilding:
            // simpler to just build manually here.
            let _ = (&mut sim, n1);
            let world = World::new();
            let nyc = world.city("New York").unwrap().location;
            let lon = world.city("London").unwrap().location;
            let mut u = Underlay::new(UnderlayConfig::default(), 5);
            let a = u.add_as(AsProfile::datacenter("a", nyc));
            let b = u.add_as(AsProfile::datacenter("b", lon));
            let mut seed_rng = SmallRng::seed_from_u64(1);
            u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
            u.add_node_in(b, lon, [10, 1, 0, 1], &mut seed_rng);
            let mut sim = Simulator::new(u, 123);
            sim.add_process(Box::new(PingDriver {
                target: NodeId(1),
                remaining: 20,
                conn: None,
                sent_at: SimTime::ZERO,
                results: results.clone(),
            }));
            sim.add_process(Box::new(EchoServer));
            sim.run_until_idle();
            let out = results.borrow().clone();
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ping_helper_returns_positive_rtts() {
        let (mut sim, a, b) = build();
        for _ in 0..10 {
            let rtt = sim.ping_rtt_ms(a, b);
            assert!(rtt > 0.0);
        }
    }

    #[test]
    fn advance_to_moves_clock_without_events() {
        let (mut sim, _, _) = build();
        let t = SimTime::ZERO + SimDuration::from_hours(5);
        sim.advance_to(t);
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProc {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Process for TimerProc {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_timer(&mut self, _ctx: &mut Context, id: u64) {
                self.fired.borrow_mut().push(id);
            }
        }
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(u, 1);
        sim.add_process(Box::new(TimerProc {
            fired: fired.clone(),
        }));
        sim.run_until_idle();
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn send_on_closed_conn_is_dropped() {
        struct Closer {
            target: NodeId,
        }
        impl Process for Closer {
            fn on_start(&mut self, ctx: &mut Context) {
                let conn = ctx.open(self.target, TrafficClass::Tcp);
                ctx.close(conn);
                ctx.send(conn, vec![9]); // after close: dropped
            }
        }
        let (_, _, _) = build();
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let b = u.add_as(AsProfile::datacenter("b", lon));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
        u.add_node_in(b, lon, [10, 1, 0, 1], &mut seed_rng);
        let mut sim = Simulator::new(u, 77);
        sim.add_process(Box::new(Closer { target: NodeId(1) }));
        struct MustNotReceive;
        impl Process for MustNotReceive {
            fn on_data(&mut self, _ctx: &mut Context, _conn: ConnId, _data: Vec<u8>) {
                panic!("data arrived on closed connection");
            }
        }
        sim.add_process(Box::new(MustNotReceive));
        sim.run_until_idle();
    }

    #[test]
    fn tracer_observes_connection_lifecycle() {
        let (mut sim, _a, b) = build();
        let tracer = crate::trace::Tracer::new(64);
        sim.set_tracer(tracer.clone());

        struct OneShot {
            target: NodeId,
        }
        impl Process for OneShot {
            fn on_start(&mut self, ctx: &mut Context) {
                let c = ctx.open(self.target, TrafficClass::Tcp);
                ctx.send(c, vec![1, 2, 3]);
                ctx.close(c);
            }
        }
        // Rebuild with a driver at node 0.
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a_as = u.add_as(AsProfile::datacenter("a", nyc));
        let b_as = u.add_as(AsProfile::datacenter("b", lon));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a_as, nyc, [10, 0, 0, 1], &mut seed_rng);
        u.add_node_in(b_as, lon, [10, 1, 0, 1], &mut seed_rng);
        let mut sim = Simulator::new(u, 3);
        sim.set_tracer(tracer.clone());
        tracer.clear();
        sim.add_process(Box::new(OneShot { target: NodeId(1) }));
        sim.add_process(Box::new(IdleProcess));
        sim.run_until_idle();

        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::ConnOpened { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Delivered { bytes: 3, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::ConnClosed { .. })));
        // Timestamps are monotone.
        for w in events.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
        let _ = b;
    }

    fn two_node_sim(seed: u64, pings: u32, results: Rc<RefCell<Vec<f64>>>) -> Simulator {
        let world = World::new();
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let mut u = Underlay::new(UnderlayConfig::default(), 5);
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let b = u.add_as(AsProfile::datacenter("b", lon));
        let mut seed_rng = SmallRng::seed_from_u64(1);
        u.add_node_in(a, nyc, [10, 0, 0, 1], &mut seed_rng);
        u.add_node_in(b, lon, [10, 1, 0, 1], &mut seed_rng);
        let mut sim = Simulator::new(u, seed);
        sim.add_process(Box::new(PingDriver {
            target: NodeId(1),
            remaining: pings,
            conn: None,
            sent_at: SimTime::ZERO,
            results,
        }));
        sim.add_process(Box::new(EchoServer));
        sim
    }

    #[test]
    fn zero_rate_fault_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<crate::fault::FaultPlan>| {
            let results = Rc::new(RefCell::new(Vec::new()));
            let mut sim = two_node_sim(321, 40, results.clone());
            if let Some(p) = plan {
                sim.set_fault_plan(p);
            }
            sim.run_until_idle();
            let out = results.borrow().clone();
            (out, sim.now())
        };
        let baseline = run(None);
        // A plan with every rate at zero must not perturb anything.
        let zeroed = run(Some(
            crate::fault::FaultPlan::new(777)
                .with_link_loss(0.0)
                .with_jitter_spikes(0.0, 50.0)
                .with_stalls(0.5, 0.0),
        ));
        assert_eq!(baseline, zeroed);
    }

    #[test]
    fn link_loss_drops_some_echoes() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = two_node_sim(321, 40, results.clone());
        sim.set_fault_plan(crate::fault::FaultPlan::new(9).with_link_loss(0.5));
        sim.run_until_idle(); // terminates: a lost ping ends the driver's loop
        let stats = sim.fault_plan().stats();
        assert!(stats.messages_dropped >= 1);
        assert!(
            results.borrow().len() < 40,
            "all 40 pings survived 50% loss"
        );
    }

    #[test]
    fn crashed_target_blackholes_connect() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = two_node_sim(5, 3, results.clone());
        sim.set_fault_plan(
            crate::fault::FaultPlan::new(1).with_crash_forever(NodeId(1), SimTime::ZERO),
        );
        sim.run_until_idle();
        // No ConnEstablished ever fires, so the driver never sends.
        assert!(results.borrow().is_empty());
        assert_eq!(sim.fault_plan().stats().connects_blackholed, 1);
    }

    #[test]
    fn crash_window_drops_events_then_recovers() {
        // Crash the echo server for a window covering the whole run:
        // every delivery to it is dropped.
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = two_node_sim(5, 3, results.clone());
        let from = SimTime::ZERO + SimDuration::from_millis(200);
        sim.set_fault_plan(crate::fault::FaultPlan::new(1).with_crash(
            NodeId(1),
            from,
            from + SimDuration::from_hours(1),
        ));
        sim.run_until_idle();
        let n_before_crash = results.borrow().len();
        assert!(n_before_crash < 3, "crash never bit");
        // After the window the node answers again.
        sim.advance_to(from + SimDuration::from_hours(2));
        assert!(!sim
            .fault_plan()
            .node_down(NodeId(1), from + SimDuration::from_hours(2)));
    }

    #[test]
    fn stalls_delay_but_deliver() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = two_node_sim(321, 10, results.clone());
        sim.set_fault_plan(crate::fault::FaultPlan::new(4).with_stalls(1.0, 5_000.0));
        sim.run_until_idle();
        // Every message stalls 5 s each way, but they all arrive.
        assert_eq!(results.borrow().len(), 10);
        assert!(results.borrow().iter().all(|&r| r >= 10_000.0));
    }

    #[test]
    fn run_until_idle_or_does_not_advance_clock_past_queue() {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut sim = two_node_sim(321, 5, results.clone());
        let deadline = SimTime::ZERO + SimDuration::from_hours(1);
        sim.run_until_idle_or(deadline);
        assert_eq!(results.borrow().len(), 5);
        // Unlike run_until, the clock stays at the last event.
        assert!(sim.now() < deadline);
    }

    #[test]
    fn more_processes_than_nodes_rejected() {
        let (mut sim, _, _) = build();
        // build() already attached 2 processes to 2 underlay nodes.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_process(Box::new(IdleProcess));
        }));
        assert!(result.is_err());
    }
}
