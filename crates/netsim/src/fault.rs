//! Fault injection for the event engine.
//!
//! A [`FaultPlan`] describes adverse conditions the simulator imposes on
//! an otherwise-healthy run: silent message loss, delay spikes, long
//! stream stalls, and node crash/reboot windows. The measurement stack
//! above (circuit timeouts, retries, checkpointed scans) exists to
//! survive exactly these, so the plan is designed for reproducible
//! experiments:
//!
//! * **Deterministic.** Fault decisions come from a SplitMix64-style
//!   keyed hash over `(plan seed, draw counter)` — the same generator
//!   family the underlay uses for congestion drift — never from the
//!   simulator's run RNG. Two runs with the same seed, plan, and call
//!   sequence inject byte-identical faults.
//! * **Strict no-op when disabled.** If every rate is zero and there are
//!   no crash windows, [`FaultPlan::is_enabled`] is false and the
//!   simulator takes the exact pre-fault code path: no draws, no state
//!   changes, bit-identical event streams and estimates.
//! * **Never wall-clock.** Everything is keyed on [`SimTime`].

use crate::sim::NodeId;
use crate::time::SimTime;
use std::cell::Cell;

/// A window during which a node is crashed: events addressed to it are
/// dropped and connections to it cannot be opened. `until == None`
/// means the node never comes back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    pub node: NodeId,
    pub from: SimTime,
    pub until: Option<SimTime>,
}

impl CrashWindow {
    pub fn covers(&self, node: NodeId, t: SimTime) -> bool {
        self.node == node && t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// Counters describing what the plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently dropped on links.
    pub messages_dropped: u64,
    /// Messages that were delayed by a jitter spike.
    pub spikes_injected: u64,
    /// Messages that were stalled for a long period.
    pub stalls_injected: u64,
    /// Events dropped because the destination node was crashed.
    pub events_dropped_at_down_node: u64,
    /// Connection handshakes blackholed (target down at SYN time).
    pub connects_blackholed: u64,
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a sent message is silently dropped.
    pub link_loss_prob: f64,
    /// Probability a message is delayed by an extra exponential spike.
    pub jitter_spike_prob: f64,
    /// Mean of the injected spike (ms).
    pub jitter_spike_mean_ms: f64,
    /// Probability a message stalls for a long, fixed period — the
    /// "stream hangs, then suddenly drains" failure mode.
    pub stall_prob: f64,
    /// Stall duration (ms).
    pub stall_ms: f64,
    crash_windows: Vec<CrashWindow>,
    /// Monotone draw counter (interior-mutable so read paths stay `&`).
    draws: Cell<u64>,
    /// Injection counters.
    messages_dropped: Cell<u64>,
    spikes_injected: Cell<u64>,
    stalls_injected: Cell<u64>,
    events_dropped: Cell<u64>,
    connects_blackholed: Cell<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with a fault seed; configure rates via the `with_*`
    /// builders or field access.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    pub fn with_link_loss(mut self, prob: f64) -> FaultPlan {
        self.link_loss_prob = prob;
        self
    }

    pub fn with_jitter_spikes(mut self, prob: f64, mean_ms: f64) -> FaultPlan {
        self.jitter_spike_prob = prob;
        self.jitter_spike_mean_ms = mean_ms;
        self
    }

    pub fn with_stalls(mut self, prob: f64, stall_ms: f64) -> FaultPlan {
        self.stall_prob = prob;
        self.stall_ms = stall_ms;
        self
    }

    /// Crashes `node` during `[from, until)`.
    pub fn with_crash(mut self, node: NodeId, from: SimTime, until: SimTime) -> FaultPlan {
        self.crash_windows.push(CrashWindow {
            node,
            from,
            until: Some(until),
        });
        self
    }

    /// Crashes `node` at `from`, permanently.
    pub fn with_crash_forever(mut self, node: NodeId, from: SimTime) -> FaultPlan {
        self.crash_windows.push(CrashWindow {
            node,
            from,
            until: None,
        });
        self
    }

    /// Adds a crash window at runtime (e.g. churn-driven departures).
    pub fn add_crash(&mut self, node: NodeId, from: SimTime, until: Option<SimTime>) {
        self.crash_windows.push(CrashWindow { node, from, until });
    }

    /// Removes all crash windows for `node` (the node "reboots" and
    /// future events reach it again).
    pub fn clear_crashes(&mut self, node: NodeId) {
        self.crash_windows.retain(|w| w.node != node);
    }

    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crash_windows
    }

    /// True when the plan can inject anything at all. The simulator
    /// checks this before every fault hook, so a disabled plan is a
    /// strict no-op: no draws happen and event streams are bit-identical
    /// to a build without fault support.
    pub fn is_enabled(&self) -> bool {
        self.link_loss_prob > 0.0
            || (self.jitter_spike_prob > 0.0 && self.jitter_spike_mean_ms > 0.0)
            || (self.stall_prob > 0.0 && self.stall_ms > 0.0)
            || !self.crash_windows.is_empty()
    }

    /// Whether `node` is crashed at `t`.
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.crash_windows.iter().any(|w| w.covers(node, t))
    }

    /// One uniform draw in `[0, 1)` from the keyed-hash stream.
    fn draw_u01(&self) -> f64 {
        let n = self.draws.get();
        self.draws.set(n + 1);
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(n);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether to silently drop a message. Call only when enabled.
    pub(crate) fn drop_message(&self) -> bool {
        if self.link_loss_prob <= 0.0 {
            return false;
        }
        let dropped = self.draw_u01() < self.link_loss_prob;
        if dropped {
            self.messages_dropped.set(self.messages_dropped.get() + 1);
        }
        dropped
    }

    /// Extra delay (ms) injected onto a surviving message: a possible
    /// exponential jitter spike plus a possible long stall.
    pub(crate) fn extra_delay_ms(&self) -> f64 {
        let mut extra = 0.0;
        if self.jitter_spike_prob > 0.0 && self.jitter_spike_mean_ms > 0.0 {
            let u = self.draw_u01();
            if u < self.jitter_spike_prob {
                let v = self.draw_u01().min(1.0 - 1e-12);
                extra += -(1.0 - v).ln() * self.jitter_spike_mean_ms;
                self.spikes_injected.set(self.spikes_injected.get() + 1);
            }
        }
        if self.stall_prob > 0.0 && self.stall_ms > 0.0 && self.draw_u01() < self.stall_prob {
            extra += self.stall_ms;
            self.stalls_injected.set(self.stalls_injected.get() + 1);
        }
        extra
    }

    pub(crate) fn count_event_dropped(&self) {
        self.events_dropped.set(self.events_dropped.get() + 1);
    }

    pub(crate) fn count_connect_blackholed(&self) {
        self.connects_blackholed
            .set(self.connects_blackholed.get() + 1);
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            messages_dropped: self.messages_dropped.get(),
            spikes_injected: self.spikes_injected.get(),
            stalls_injected: self.stalls_injected.get(),
            events_dropped_at_down_node: self.events_dropped.get(),
            connects_blackholed: self.connects_blackholed.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_plan_is_disabled() {
        assert!(!FaultPlan::disabled().is_enabled());
        assert!(!FaultPlan::new(7).is_enabled());
        assert!(FaultPlan::new(7).with_link_loss(0.1).is_enabled());
        assert!(FaultPlan::new(7).with_stalls(0.1, 100.0).is_enabled());
        // Zero-rate knobs stay disabled.
        assert!(!FaultPlan::new(7).with_link_loss(0.0).is_enabled());
        assert!(!FaultPlan::new(7).with_stalls(0.5, 0.0).is_enabled());
    }

    #[test]
    fn crash_windows_cover_correct_interval() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = FaultPlan::new(1).with_crash(NodeId(3), t(10), t(20));
        assert!(plan.is_enabled());
        assert!(!plan.node_down(NodeId(3), t(9)));
        assert!(plan.node_down(NodeId(3), t(10)));
        assert!(plan.node_down(NodeId(3), t(19)));
        assert!(!plan.node_down(NodeId(3), t(20)));
        assert!(!plan.node_down(NodeId(4), t(15)));

        let forever = FaultPlan::new(1).with_crash_forever(NodeId(5), t(100));
        assert!(forever.node_down(NodeId(5), t(1_000_000)));
        assert!(!forever.node_down(NodeId(5), t(99)));
    }

    #[test]
    fn clear_crashes_reboots_node() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let mut plan = FaultPlan::new(1).with_crash_forever(NodeId(2), t(0));
        assert!(plan.node_down(NodeId(2), t(50)));
        plan.clear_crashes(NodeId(2));
        assert!(!plan.node_down(NodeId(2), t(50)));
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let run = |seed| {
            let plan = FaultPlan::new(seed).with_link_loss(0.3);
            (0..64).map(|_| plan.drop_message()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let plan = FaultPlan::new(42).with_link_loss(0.25);
        let dropped = (0..10_000).filter(|_| plan.drop_message()).count();
        assert!((2000..3000).contains(&dropped), "dropped {dropped}");
        assert_eq!(plan.stats().messages_dropped, dropped as u64);
    }

    #[test]
    fn stalls_add_the_configured_delay() {
        let plan = FaultPlan::new(5).with_stalls(1.0, 750.0);
        let d = plan.extra_delay_ms();
        assert!(d >= 750.0);
        assert_eq!(plan.stats().stalls_injected, 1);
    }
}
