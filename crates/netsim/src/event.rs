//! The event queue.
//!
//! A classic discrete-event core: a min-heap of events ordered by
//! `(time, sequence)`. The sequence number makes dispatch order total and
//! deterministic even when events share a timestamp — determinism rule 1
//! of the crate.

use crate::sim::{ConnId, NodeId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A framed message arrives at `to` on `conn`.
    Deliver {
        conn: ConnId,
        to: NodeId,
        data: Vec<u8>,
    },
    /// The passive side learns a new connection was opened to it.
    ConnOpened {
        conn: ConnId,
        at: NodeId,
        peer: NodeId,
    },
    /// The active side learns its `open` completed (SYN+ACK arrived).
    ConnEstablished { conn: ConnId, at: NodeId },
    /// Either side learns the connection was closed by the peer.
    ConnClosed { conn: ConnId, at: NodeId },
    /// A timer set by `node` fires.
    Timer { node: NodeId, id: u64 },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `kind` at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, id: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            id,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), timer(0, 3));
        q.schedule(SimTime(10), timer(0, 1));
        q.schedule(SimTime(20), timer(0, 2));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for id in 0..10 {
            q.schedule(SimTime(5), timer(0, id));
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(9), timer(0, 0));
        q.schedule(SimTime(4), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
