//! The underlay: who is where, how ASes route between each other, and
//! what one packet's one-way delay is at a given moment.
//!
//! The model, bottom-up:
//!
//! * Every node lives in an **AS**. An AS has a hub location (a city),
//!   an access-delay range its customers draw from (last-mile latency),
//!   a jitter scale, a diurnal load phase, and a [`ProtocolPolicy`].
//! * The **base path latency** between two nodes in different ASes is
//!   speed-of-light-in-fiber over `node → hubA → hubB → node`, with the
//!   hub-to-hub leg multiplied by a per-AS-pair *inflation factor* drawn
//!   once at build time. Inflation is what creates triangle-inequality
//!   violations: if inflation(A,B) is large while inflation(A,C) and
//!   inflation(C,B) are small, relaying via C beats the direct path —
//!   precisely the structure §5.2.1 of the paper discovers in Tor.
//! * The **per-packet delay** adds exponential jitter plus occasional
//!   queueing spikes, both scaled by the AS's diurnal load curve. Minima
//!   of repeated samples converge slowly (Fig. 6) but surely (Fig. 7).
//! * The **policy** adds protocol-class-specific extra delay: some ASes
//!   deprioritize ICMP, some shape Tor-port traffic, a few carry Tor on
//!   a *better* path than ICMP (which is how the paper ends up measuring
//!   negative forwarding delays in Fig. 5).

use geo::{great_circle_km, GeoPoint, FIBER_KM_PER_MS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::time::SimTime;

/// Identifies an autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u16);

/// The traffic classes the policy model can discriminate between.
///
/// `Tor` is TCP to/from an ORPort — distinguishable by port, and in
/// practice by DPI, which is why the paper "expected network operators
/// to, e.g., apply additional firewall or monitoring rules" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    Icmp,
    Tcp,
    Tor,
}

/// Extra one-way delay (ms) an AS imposes per traffic class.
///
/// All-zero means the AS treats every packet identically; the paper found
/// ~65% of its PlanetLab networks behaved that way (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProtocolPolicy {
    pub icmp_extra_ms: f64,
    pub tcp_extra_ms: f64,
    pub tor_extra_ms: f64,
}

impl ProtocolPolicy {
    /// No discrimination.
    pub fn neutral() -> ProtocolPolicy {
        ProtocolPolicy::default()
    }

    /// ICMP handled on the slow path (classic router behaviour: echo
    /// processed in the control plane).
    pub fn icmp_deprioritized(extra_ms: f64) -> ProtocolPolicy {
        ProtocolPolicy {
            icmp_extra_ms: extra_ms,
            ..Default::default()
        }
    }

    /// Tor-port traffic shaped/inspected.
    pub fn tor_shaped(extra_ms: f64) -> ProtocolPolicy {
        ProtocolPolicy {
            tor_extra_ms: extra_ms,
            ..Default::default()
        }
    }

    /// All TCP (including Tor) slowed relative to ICMP — produces the
    /// *positive* forwarding-delay anomalies of Fig. 5, while
    /// [`ProtocolPolicy::icmp_deprioritized`] produces the negative ones.
    pub fn tcp_shaped(extra_ms: f64) -> ProtocolPolicy {
        ProtocolPolicy {
            tcp_extra_ms: extra_ms,
            tor_extra_ms: extra_ms,
            ..Default::default()
        }
    }

    /// The extra delay for one class.
    pub fn extra_ms(&self, class: TrafficClass) -> f64 {
        match class {
            TrafficClass::Icmp => self.icmp_extra_ms,
            TrafficClass::Tcp => self.tcp_extra_ms,
            TrafficClass::Tor => self.tor_extra_ms,
        }
    }

    /// Whether this AS treats any class differently from another.
    pub fn discriminates(&self) -> bool {
        self.icmp_extra_ms != self.tcp_extra_ms
            || self.tcp_extra_ms != self.tor_extra_ms
            || self.icmp_extra_ms != self.tor_extra_ms
    }
}

/// Static description of one AS.
#[derive(Debug, Clone)]
pub struct AsProfile {
    pub hub: GeoPoint,
    pub name: String,
    /// Last-mile delay range (ms, one-way) its customer nodes draw from.
    pub access_delay_ms: (f64, f64),
    /// Mean of the exponential per-packet jitter at off-peak (ms).
    pub jitter_mean_ms: f64,
    /// Probability a packet hits a queueing spike.
    pub spike_prob: f64,
    /// Mean spike magnitude (ms, exponential).
    pub spike_mean_ms: f64,
    /// Phase offset of the diurnal load curve (hours).
    pub diurnal_phase_h: f64,
    /// Amplitude of the diurnal multiplier (0 = flat load).
    pub diurnal_amplitude: f64,
    pub policy: ProtocolPolicy,
}

impl AsProfile {
    /// A well-behaved datacenter-ish AS at `hub`.
    pub fn datacenter(name: impl Into<String>, hub: GeoPoint) -> AsProfile {
        AsProfile {
            hub,
            name: name.into(),
            access_delay_ms: (0.05, 0.4),
            jitter_mean_ms: 0.15,
            spike_prob: 0.02,
            spike_mean_ms: 2.0,
            diurnal_phase_h: 0.0,
            diurnal_amplitude: 0.1,
            policy: ProtocolPolicy::neutral(),
        }
    }

    /// A consumer access network at `hub`: larger last-mile delays,
    /// more jitter, pronounced evening peak.
    pub fn residential(name: impl Into<String>, hub: GeoPoint) -> AsProfile {
        AsProfile {
            hub,
            name: name.into(),
            access_delay_ms: (1.0, 8.0),
            jitter_mean_ms: 0.6,
            spike_prob: 0.08,
            spike_mean_ms: 4.0,
            diurnal_phase_h: 0.0,
            diurnal_amplitude: 0.35,
            policy: ProtocolPolicy::neutral(),
        }
    }

    /// The diurnal load multiplier at time `t` (≥ `1 - amplitude`,
    /// peaking at `1 + amplitude`).
    pub fn load_factor(&self, t: SimTime) -> f64 {
        let hours = t.as_hours_f64() + self.diurnal_phase_h;
        1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * hours / 24.0).sin()
    }
}

/// Static description of one node.
#[derive(Debug, Clone)]
pub struct NodeAttrs {
    pub as_id: AsId,
    pub location: GeoPoint,
    /// One-way last-mile delay (ms), drawn from the AS's range.
    pub access_delay_ms: f64,
    /// IPv4 address (used by the /24 coverage analysis, Fig. 18).
    pub ip: [u8; 4],
}

/// Tunable constants of the latency model.
#[derive(Debug, Clone, Copy)]
pub struct UnderlayConfig {
    /// Multiplier on geodesic fiber time within a single AS.
    pub intra_as_inflation: f64,
    /// Minimum inter-AS inflation factor.
    pub inter_as_inflation_min: f64,
    /// Mean of the exponential part of inter-AS inflation.
    pub inter_as_inflation_exp_mean: f64,
    /// Hard cap on inter-AS inflation.
    pub inter_as_inflation_max: f64,
    /// Probability an AS pair routes "performance-insensitively" (large
    /// fixed inflation — the substantial TIVs of Fig. 15).
    pub bad_route_prob: f64,
    /// Inflation applied to such unlucky pairs.
    pub bad_route_inflation: f64,
    /// Range of the fixed per-AS-pair peering overhead (ms, one-way):
    /// even co-located ASes exchange traffic through IXPs and transit
    /// providers, so inter-AS paths never cost zero propagation.
    pub peering_ms: (f64, f64),
    /// One-way delay between two processes on the same host (ms).
    pub loopback_ms: f64,
    /// Per-packet serialization/forwarding floor (ms) added per path.
    pub path_floor_ms: f64,
    /// Amplitude of the slowly-drifting congestion floor (ms): every
    /// [`UnderlayConfig::drift_epoch_hours`], each node pair's floor
    /// moves to a new value in `[0, drift_ms + drift_rel · base]`.
    /// This is why week-long hourly Ting estimates vary slightly
    /// (Figs. 9–10) even though each snapshot min-filters its jitter.
    pub drift_ms: f64,
    /// Relative component of the drift amplitude.
    pub drift_rel: f64,
    /// How long one congestion epoch lasts.
    pub drift_epoch_hours: f64,
    /// Per-packet loss probability on inter-AS paths. Default 0: the
    /// measurement experiments model an uncongested control path (a
    /// lost probe would simply re-sample — TCP retransmission sits
    /// below the application's RTT observation). Set non-zero to
    /// exercise loss handling: affected packets are delivered late by
    /// one retransmission timeout instead of vanishing.
    pub loss_prob: f64,
    /// Extra delay a retransmitted packet suffers (ms) — one RTO.
    pub retransmit_penalty_ms: f64,
}

impl Default for UnderlayConfig {
    fn default() -> Self {
        UnderlayConfig {
            intra_as_inflation: 1.4,
            inter_as_inflation_min: 1.12,
            inter_as_inflation_exp_mean: 0.5,
            inter_as_inflation_max: 4.0,
            bad_route_prob: 0.10,
            bad_route_inflation: 2.8,
            peering_ms: (0.3, 2.0),
            loopback_ms: 0.03,
            path_floor_ms: 0.10,
            drift_ms: 1.2,
            drift_rel: 0.015,
            drift_epoch_hours: 2.0,
            loss_prob: 0.0,
            retransmit_penalty_ms: 200.0,
        }
    }
}

/// The full underlay: AS table, node table, cached pairwise inflation,
/// and the per-packet delay sampler.
#[derive(Debug, Clone)]
pub struct Underlay {
    config: UnderlayConfig,
    ases: Vec<AsProfile>,
    nodes: Vec<NodeAttrs>,
    /// Per-unordered-AS-pair route properties (inflation factor and
    /// fixed peering overhead), lazily drawn but deterministic: keyed
    /// RNG from the build seed and the pair.
    inflation_cache: HashMap<(AsId, AsId), (f64, f64)>,
    seed: u64,
}

impl Underlay {
    /// Creates an empty underlay with the given model constants. `seed`
    /// fixes all per-pair routing draws.
    pub fn new(config: UnderlayConfig, seed: u64) -> Underlay {
        Underlay {
            config,
            ases: Vec::new(),
            nodes: Vec::new(),
            inflation_cache: HashMap::new(),
            seed,
        }
    }

    /// Registers an AS; returns its id.
    pub fn add_as(&mut self, profile: AsProfile) -> AsId {
        let id = AsId(u16::try_from(self.ases.len()).expect("too many ASes"));
        self.ases.push(profile);
        id
    }

    /// Registers a node; returns its dense index (the simulator wraps it
    /// in a `NodeId`).
    pub fn add_node(&mut self, attrs: NodeAttrs) -> usize {
        assert!(
            (attrs.as_id.0 as usize) < self.ases.len(),
            "node references unknown AS"
        );
        self.nodes.push(attrs);
        self.nodes.len() - 1
    }

    /// Convenience: adds a node inside `as_id`, drawing its access delay
    /// from the AS profile and placing it at `location`.
    pub fn add_node_in<R: Rng + ?Sized>(
        &mut self,
        as_id: AsId,
        location: GeoPoint,
        ip: [u8; 4],
        rng: &mut R,
    ) -> usize {
        let (lo, hi) = self.ases[as_id.0 as usize].access_delay_ms;
        let access_delay_ms = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        self.add_node(NodeAttrs {
            as_id,
            location,
            access_delay_ms,
            ip,
        })
    }

    pub fn node(&self, idx: usize) -> &NodeAttrs {
        &self.nodes[idx]
    }

    /// The model constants this underlay was built with.
    pub fn config(&self) -> &UnderlayConfig {
        &self.config
    }

    pub fn as_profile(&self, id: AsId) -> &AsProfile {
        &self.ases[id.0 as usize]
    }

    pub fn as_profile_mut(&mut self, id: AsId) -> &mut AsProfile {
        &mut self.ases[id.0 as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// The deterministic inflation factor for an AS pair.
    pub fn inflation(&mut self, a: AsId, b: AsId) -> f64 {
        self.route_properties(a, b).0
    }

    /// The deterministic fixed peering overhead (ms) for an AS pair.
    pub fn peering_ms(&mut self, a: AsId, b: AsId) -> f64 {
        self.route_properties(a, b).1
    }

    /// `(inflation, peering_ms)` for an AS pair, drawn once per pair
    /// from an RNG keyed on (seed, pair) — deterministic and
    /// order-independent.
    pub fn route_properties(&mut self, a: AsId, b: AsId) -> (f64, f64) {
        if a == b {
            return (self.config.intra_as_inflation, 0.0);
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&f) = self.inflation_cache.get(&key) {
            return f;
        }
        let pair_seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((key.0 .0 as u64) << 32 | key.1 .0 as u64);
        let mut rng = SmallRng::seed_from_u64(pair_seed);
        let c = &self.config;
        let inflation = if rng.gen_bool(c.bad_route_prob) {
            c.bad_route_inflation
        } else {
            let exp: f64 = -rng.gen_range(1e-9..1.0f64).ln() * c.inter_as_inflation_exp_mean;
            (c.inter_as_inflation_min + exp).min(c.inter_as_inflation_max)
        };
        let peering = rng.gen_range(c.peering_ms.0..c.peering_ms.1.max(c.peering_ms.0 + 1e-9));
        self.inflation_cache.insert(key, (inflation, peering));
        (inflation, peering)
    }

    /// The *base* one-way latency (ms) between two nodes for `class`:
    /// propagation + access + policy, with no jitter. This is the floor
    /// that minima of repeated measurements converge to.
    pub fn base_owd_ms(&mut self, from: usize, to: usize, class: TrafficClass) -> f64 {
        if from == to {
            return self.config.loopback_ms;
        }
        let a = self.nodes[from].clone();
        let b = self.nodes[to].clone();
        let policy_extra = (self.ases[a.as_id.0 as usize].policy.extra_ms(class)
            + self.ases[b.as_id.0 as usize].policy.extra_ms(class))
            / 2.0;
        let propagation = if a.as_id == b.as_id {
            let d = great_circle_km(a.location, b.location);
            d * self.config.intra_as_inflation / FIBER_KM_PER_MS
        } else {
            let hub_a = self.ases[a.as_id.0 as usize].hub;
            let hub_b = self.ases[b.as_id.0 as usize].hub;
            let (infl, peering) = self.route_properties(a.as_id, b.as_id);
            (great_circle_km(a.location, hub_a)
                + great_circle_km(hub_b, b.location)
                + great_circle_km(hub_a, hub_b) * infl)
                / FIBER_KM_PER_MS
                + peering
        };
        self.config.path_floor_ms
            + a.access_delay_ms
            + b.access_delay_ms
            + propagation
            + policy_extra
    }

    /// Base round-trip latency (ms) — twice the one-way base, since the
    /// model is direction-symmetric.
    pub fn base_rtt_ms(&mut self, a: usize, b: usize, class: TrafficClass) -> f64 {
        2.0 * self.base_owd_ms(a, b, class)
    }

    /// The congestion-floor drift (ms) for a node pair at time `t`: a
    /// deterministic value that steps to a fresh uniform draw each
    /// epoch. Affects every protocol equally (it is path congestion),
    /// so probes taken at the same time still cancel it.
    pub fn drift_ms(&self, from: usize, to: usize, t: SimTime) -> f64 {
        let c = &self.config;
        if c.drift_ms == 0.0 && c.drift_rel == 0.0 {
            return 0.0;
        }
        if from == to {
            return 0.0;
        }
        // Keyed by AS pair: congestion lives on inter-AS paths, so two
        // co-located nodes (the paper's w and z) see identical drift to
        // any third host — which is what lets Ting's subtractions
        // cancel it.
        let as_a = self.nodes[from].as_id.0 as usize;
        let as_b = self.nodes[to].as_id.0 as usize;
        if as_a == as_b {
            return 0.0;
        }
        let (lo, hi) = if as_a <= as_b {
            (as_a, as_b)
        } else {
            (as_b, as_a)
        };
        let epoch = (t.as_hours_f64() / c.drift_epoch_hours) as u64;
        // SplitMix64-style hash of (seed, pair, epoch) → uniform [0,1).
        let mut h = self
            .seed
            .wrapping_add((lo as u64) << 40)
            .wrapping_add((hi as u64) << 20)
            .wrapping_add(epoch);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        // Amplitude grows with path length (long paths cross more
        // congested links); use the hub-to-hub geodesic.
        let base =
            geo::great_circle_km(self.ases[lo].hub, self.ases[hi].hub) / geo::FIBER_KM_PER_MS;
        let mut drift = u * (c.drift_ms + c.drift_rel * base);
        // Occasionally an epoch lands on a shifted route (a BGP change
        // or sustained congestion) that min-filtering cannot hide — the
        // outliers visible in the paper's Fig. 10 box plots.
        let mut h2 = h.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
        h2 ^= h2 >> 29;
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        if u2 < 0.005 {
            // ~0.5%/epoch ⇒ about a third of pairs see one shift in a
            // week of 2 h epochs, matching Fig. 10's outlier share.
            let u3 = (h2 & 0xffff) as f64 / 65536.0;
            drift += (2.0 + 0.12 * base) * (0.5 + u3);
        }
        drift
    }

    /// Samples one packet's one-way delay (ms) at time `t`.
    pub fn sample_owd_ms<R: Rng + ?Sized>(
        &mut self,
        from: usize,
        to: usize,
        class: TrafficClass,
        t: SimTime,
        rng: &mut R,
    ) -> f64 {
        let base = self.base_owd_ms(from, to, class);
        if from == to {
            // Loopback has negligible queueing.
            return base + rng.gen_range(0.0..0.01);
        }
        let a = &self.ases[self.nodes[from].as_id.0 as usize];
        let b = &self.ases[self.nodes[to].as_id.0 as usize];
        let load = (a.load_factor(t) + b.load_factor(t)) / 2.0;
        let jitter_mean = (a.jitter_mean_ms + b.jitter_mean_ms) / 2.0 * load;
        let jitter = -rng.gen_range(1e-12..1.0f64).ln() * jitter_mean;
        let spike_prob = ((a.spike_prob + b.spike_prob) / 2.0 * load).min(1.0);
        let spike = if rng.gen_bool(spike_prob) {
            let spike_mean = (a.spike_mean_ms + b.spike_mean_ms) / 2.0;
            -rng.gen_range(1e-12..1.0f64).ln() * spike_mean
        } else {
            0.0
        };
        // Loss model: a dropped packet is recovered by TCP one RTO
        // later (reliable delivery is the transport's contract; the
        // application just sees a slow sample).
        let retransmit = if self.config.loss_prob > 0.0 && rng.gen_bool(self.config.loss_prob) {
            self.config.retransmit_penalty_ms
        } else {
            0.0
        };
        base + self.drift_ms(from, to, t) + jitter + spike + retransmit
    }

    /// One synthetic ICMP ping RTT sample (ms) at time `t` — the tool the
    /// paper's ground truth and the strawman both rely on.
    pub fn ping_rtt_ms<R: Rng + ?Sized>(
        &mut self,
        a: usize,
        b: usize,
        t: SimTime,
        rng: &mut R,
    ) -> f64 {
        self.sample_owd_ms(a, b, TrafficClass::Icmp, t, rng)
            + self.sample_owd_ms(b, a, TrafficClass::Icmp, t, rng)
    }

    /// One TCP-probe RTT sample (ms) at `t` (tcptraceroute in §4.3).
    pub fn tcp_rtt_ms<R: Rng + ?Sized>(
        &mut self,
        a: usize,
        b: usize,
        t: SimTime,
        rng: &mut R,
    ) -> f64 {
        self.sample_owd_ms(a, b, TrafficClass::Tcp, t, rng)
            + self.sample_owd_ms(b, a, TrafficClass::Tcp, t, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::World;

    fn two_as_underlay() -> (Underlay, usize, usize) {
        let world = World::new();
        let mut u = Underlay::new(UnderlayConfig::default(), 42);
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let a = u.add_as(AsProfile::datacenter("us-east", nyc));
        let b = u.add_as(AsProfile::datacenter("eu-west", lon));
        let mut rng = SmallRng::seed_from_u64(1);
        let n0 = u.add_node_in(a, nyc, [10, 0, 0, 1], &mut rng);
        let n1 = u.add_node_in(b, lon, [10, 1, 0, 1], &mut rng);
        (u, n0, n1)
    }

    #[test]
    fn base_latency_exceeds_lightspeed_bound() {
        let (mut u, a, b) = two_as_underlay();
        let rtt = u.base_rtt_ms(a, b, TrafficClass::Tcp);
        // NYC–London ≥ 55.7 ms at 2/3 c; inflation makes it more.
        assert!(rtt > 55.0, "rtt {rtt}");
        assert!(rtt < 400.0, "rtt {rtt}");
    }

    #[test]
    fn inflation_is_deterministic_and_symmetric() {
        let (mut u, _, _) = two_as_underlay();
        let f1 = u.inflation(AsId(0), AsId(1));
        let f2 = u.inflation(AsId(1), AsId(0));
        assert_eq!(f1, f2);
        assert!((1.15..=3.0).contains(&f1), "inflation {f1}");
        // Rebuilding with the same seed gives the same draw.
        let (mut u2, _, _) = two_as_underlay();
        assert_eq!(u2.inflation(AsId(0), AsId(1)), f1);
    }

    #[test]
    fn loopback_is_fast() {
        let (mut u, a, _) = two_as_underlay();
        let ms = u.base_owd_ms(a, a, TrafficClass::Tcp);
        assert!(ms < 0.1, "loopback {ms}");
    }

    #[test]
    fn samples_never_undershoot_base() {
        let (mut u, a, b) = two_as_underlay();
        let base = u.base_owd_ms(a, b, TrafficClass::Tcp);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let s = u.sample_owd_ms(a, b, TrafficClass::Tcp, SimTime::ZERO, &mut rng);
            assert!(s >= base, "sample {s} below base {base}");
        }
    }

    #[test]
    fn minimum_of_many_samples_approaches_base_plus_drift() {
        let (mut u, a, b) = two_as_underlay();
        let base = u.base_owd_ms(a, b, TrafficClass::Tcp);
        let drift = u.drift_ms(a, b, SimTime::ZERO);
        let mut rng = SmallRng::seed_from_u64(3);
        let min = (0..2000)
            .map(|_| u.sample_owd_ms(a, b, TrafficClass::Tcp, SimTime::ZERO, &mut rng))
            .fold(f64::INFINITY, f64::min);
        // Within one epoch the floor is base + drift; jitter's minimum
        // over 2000 draws is tiny.
        assert!(
            min - (base + drift) < 0.1,
            "min {min} vs floor {}",
            base + drift
        );
        assert!(min >= base, "min {min} below base {base}");
    }

    #[test]
    fn drift_shared_by_colocated_nodes_and_steps_over_epochs() {
        let world = World::new();
        let mut u = Underlay::new(UnderlayConfig::default(), 11);
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let host = u.add_as(AsProfile::datacenter("host", nyc));
        let far_as = u.add_as(AsProfile::datacenter("far", lon));
        let mut rng = SmallRng::seed_from_u64(1);
        let w = u.add_node_in(host, nyc, [1, 0, 0, 1], &mut rng);
        let z = u.add_node_in(host, nyc, [1, 0, 0, 2], &mut rng);
        let x = u.add_node_in(far_as, lon, [1, 1, 0, 1], &mut rng);
        let t0 = SimTime::ZERO;
        // Same AS pair → identical drift (w and z are co-located).
        assert_eq!(u.drift_ms(w, x, t0), u.drift_ms(z, x, t0));
        // Same AS → no drift.
        assert_eq!(u.drift_ms(w, z, t0), 0.0);
        // Across many epochs the drift takes multiple values.
        let vals: std::collections::HashSet<u64> = (0..20)
            .map(|e| {
                let t = SimTime::ZERO + crate::time::SimDuration::from_hours(e * 3);
                (u.drift_ms(w, x, t) * 1e6) as u64
            })
            .collect();
        assert!(vals.len() > 5, "drift not stepping: {vals:?}");
    }

    #[test]
    fn policy_extra_applies_per_class() {
        let (mut u, a, b) = two_as_underlay();
        let plain = u.base_rtt_ms(a, b, TrafficClass::Icmp);
        u.as_profile_mut(AsId(0)).policy = ProtocolPolicy::icmp_deprioritized(20.0);
        let slowed = u.base_rtt_ms(a, b, TrafficClass::Icmp);
        let tcp = u.base_rtt_ms(a, b, TrafficClass::Tcp);
        // One endpoint AS adds 20 ms / 2 = 10 ms per direction = 20 ms RTT.
        assert!((slowed - plain - 20.0).abs() < 1e-9);
        assert!((tcp - plain).abs() < 1e-9, "TCP unaffected");
    }

    #[test]
    fn tor_shaping_separates_tor_from_tcp() {
        let (mut u, a, b) = two_as_underlay();
        u.as_profile_mut(AsId(1)).policy = ProtocolPolicy::tor_shaped(8.0);
        let tor = u.base_rtt_ms(a, b, TrafficClass::Tor);
        let tcp = u.base_rtt_ms(a, b, TrafficClass::Tcp);
        assert!((tor - tcp - 8.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_load_changes_jitter_mean() {
        let world = World::new();
        let mut profile = AsProfile::residential("isp", world.city("Berlin").unwrap().location);
        profile.diurnal_amplitude = 0.5;
        let peak_t = SimTime::ZERO + crate::time::SimDuration::from_hours(6); // sin peaks at 6h
        let trough_t = SimTime::ZERO + crate::time::SimDuration::from_hours(18);
        assert!(profile.load_factor(peak_t) > 1.4);
        assert!(profile.load_factor(trough_t) < 0.6);
    }

    #[test]
    fn tivs_exist_among_many_ases() {
        // With enough ASes, some pair (a, b) has a relay c with
        // base(a,c) + base(c,b) < base(a,b): the routing TIVs of §5.2.1.
        let world = World::new();
        let mut u = Underlay::new(UnderlayConfig::default(), 7);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut nodes = Vec::new();
        for (i, city) in world.cities().iter().take(20).enumerate() {
            let asid = u.add_as(AsProfile::datacenter(city.name, city.location));
            nodes.push(u.add_node_in(asid, city.location, [10, i as u8, 0, 1], &mut rng));
        }
        let mut tiv_found = false;
        'outer: for &a in &nodes {
            for &b in &nodes {
                if a == b {
                    continue;
                }
                let direct = u.base_rtt_ms(a, b, TrafficClass::Tor);
                for &c in &nodes {
                    if c == a || c == b {
                        continue;
                    }
                    let detour = u.base_rtt_ms(a, c, TrafficClass::Tor)
                        + u.base_rtt_ms(c, b, TrafficClass::Tor);
                    if detour < direct {
                        tiv_found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(tiv_found, "expected at least one TIV in a 20-AS world");
    }

    #[test]
    fn ping_uses_icmp_class() {
        let (mut u, a, b) = two_as_underlay();
        u.as_profile_mut(AsId(0)).policy = ProtocolPolicy::icmp_deprioritized(50.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let ping = u.ping_rtt_ms(a, b, SimTime::ZERO, &mut rng);
        let tcp_floor = u.base_rtt_ms(a, b, TrafficClass::Tcp);
        assert!(ping > tcp_floor + 45.0, "ping {ping} vs tcp {tcp_floor}");
    }

    #[test]
    fn loss_model_delays_but_never_drops() {
        let world = World::new();
        let cfg = UnderlayConfig {
            loss_prob: 0.10,
            retransmit_penalty_ms: 150.0,
            ..UnderlayConfig::default()
        };
        let mut u = Underlay::new(cfg, 21);
        let nyc = world.city("New York").unwrap().location;
        let lon = world.city("London").unwrap().location;
        let a = u.add_as(AsProfile::datacenter("a", nyc));
        let b = u.add_as(AsProfile::datacenter("b", lon));
        let mut rng = SmallRng::seed_from_u64(1);
        let n0 = u.add_node_in(a, nyc, [9, 0, 0, 1], &mut rng);
        let n1 = u.add_node_in(b, lon, [9, 1, 0, 1], &mut rng);
        let base = u.base_owd_ms(n0, n1, TrafficClass::Tcp);
        let mut slow = 0;
        let n = 2000;
        for _ in 0..n {
            let s = u.sample_owd_ms(n0, n1, TrafficClass::Tcp, SimTime::ZERO, &mut rng);
            assert!(s.is_finite() && s >= base);
            if s >= base + 150.0 {
                slow += 1;
            }
        }
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.03, "retransmit fraction {frac}");
    }

    #[test]
    fn default_config_has_no_loss() {
        let (mut u, a, b) = two_as_underlay();
        let base = u.base_owd_ms(a, b, TrafficClass::Tcp);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2000 {
            let s = u.sample_owd_ms(a, b, TrafficClass::Tcp, SimTime::ZERO, &mut rng);
            assert!(s < base + 150.0, "unexpected retransmission delay {s}");
        }
    }

    #[test]
    #[should_panic]
    fn node_in_unknown_as_rejected() {
        let mut u = Underlay::new(UnderlayConfig::default(), 0);
        u.add_node(NodeAttrs {
            as_id: AsId(3),
            location: GeoPoint::new(0.0, 0.0),
            access_delay_ms: 1.0,
            ip: [1, 2, 3, 4],
        });
    }
}
