//! Node behaviours.
//!
//! A [`Process`] is an event-driven state machine attached to one node:
//! it reacts to connection events, framed messages, and timers, and emits
//! actions through a [`Context`]. Actions are buffered and applied by the
//! simulator *after* the handler returns, which keeps the borrow story
//! simple and the dispatch order deterministic.

use crate::sim::{ConnId, NodeId};
use crate::time::{SimDuration, SimTime};
use crate::underlay::TrafficClass;
use rand::rngs::SmallRng;

/// Buffered actions a handler emits.
#[derive(Debug)]
pub(crate) enum Op {
    Open {
        conn: ConnId,
        to: NodeId,
        class: TrafficClass,
    },
    Send {
        conn: ConnId,
        data: Vec<u8>,
    },
    Close {
        conn: ConnId,
    },
    Timer {
        delay: SimDuration,
        id: u64,
    },
}

/// The handler-side view of the simulator.
pub struct Context<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this handler runs on.
    pub self_id: NodeId,
    /// Simulation RNG — all randomness must come from here.
    pub rng: &'a mut SmallRng,
    pub(crate) ops: Vec<Op>,
    pub(crate) next_conn: &'a mut u64,
}

impl<'a> Context<'a> {
    /// Opens a connection to `to`. The returned id is usable immediately
    /// for [`Context::send`]; transmission begins once the simulated
    /// handshake (one RTT) completes, and `on_conn_established` fires at
    /// that point.
    pub fn open(&mut self, to: NodeId, class: TrafficClass) -> ConnId {
        let conn = ConnId(*self.next_conn);
        *self.next_conn += 1;
        self.ops.push(Op::Open { conn, to, class });
        conn
    }

    /// Sends one framed message on `conn`. Messages are delivered whole,
    /// in order, to the peer's `on_data`.
    pub fn send(&mut self, conn: ConnId, data: Vec<u8>) {
        self.ops.push(Op::Send { conn, data });
    }

    /// Closes `conn`; the peer gets `on_conn_closed` one one-way delay
    /// later. Queued data already in flight is still delivered.
    pub fn close(&mut self, conn: ConnId) {
        self.ops.push(Op::Close { conn });
    }

    /// Arranges for `on_timer(id)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, id: u64) {
        self.ops.push(Op::Timer { delay, id });
    }
}

/// An event-driven node behaviour.
///
/// All methods default to no-ops so implementations only write the
/// handlers they care about.
pub trait Process {
    /// Called once when the simulation starts (before any other event).
    fn on_start(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// An inbound connection from `peer` was opened to this node.
    fn on_conn_opened(&mut self, ctx: &mut Context, conn: ConnId, peer: NodeId) {
        let _ = (ctx, conn, peer);
    }

    /// An outbound `open` completed its handshake.
    fn on_conn_established(&mut self, ctx: &mut Context, conn: ConnId) {
        let _ = (ctx, conn);
    }

    /// A framed message arrived.
    fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
        let _ = (ctx, conn, data);
    }

    /// The peer closed the connection.
    fn on_conn_closed(&mut self, ctx: &mut Context, conn: ConnId) {
        let _ = (ctx, conn);
    }

    /// A timer set with [`Context::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Context, id: u64) {
        let _ = (ctx, id);
    }
}

/// A process that does nothing — for plain underlay endpoints that only
/// exist to be pinged.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleProcess;

impl Process for IdleProcess {}
