//! Virtual time.
//!
//! The simulator's clock is a `u64` count of nanoseconds since the start
//! of the run. Nanosecond resolution leaves headroom for sub-millisecond
//! crypto costs while still representing multi-week experiments (Fig. 18
//! simulates two months ≈ 5.2 × 10¹⁵ ns, far below `u64::MAX`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    pub fn from_hours(h: u64) -> SimDuration {
        SimDuration::from_secs(h * 3600)
    }

    pub fn from_days(d: u64) -> SimDuration {
        SimDuration::from_hours(d * 24)
    }

    /// Converts a (possibly fractional) millisecond count, rounding to
    /// the nearest nanosecond. Negative values clamp to zero — delay
    /// models can mathematically produce tiny negative values after
    /// subtractions, and a delay below zero is meaningless.
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Hours since simulation start, fractional. The diurnal load model
    /// keys off this.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_hours(1).as_secs_f64(), 3600.0);
        assert_eq!(SimDuration::from_days(2), SimDuration::from_hours(48));
        assert_eq!(SimDuration::from_micros(1500).as_millis_f64(), 1.5);
    }

    #[test]
    fn fractional_millis() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000);
        // Negative clamps to zero.
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        let later = t + SimDuration::from_millis(5);
        assert_eq!((later - t).as_millis_f64(), 5.0);
        // Saturating: earlier - later = 0.
        assert_eq!(t - later, SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn hours_view() {
        let t = SimTime::ZERO + SimDuration::from_hours(36);
        assert_eq!(t.as_hours_f64(), 36.0);
    }

    #[test]
    fn two_month_experiment_fits() {
        let t = SimTime::ZERO + SimDuration::from_days(60);
        assert!(t.as_nanos() < u64::MAX / 1000);
    }
}
