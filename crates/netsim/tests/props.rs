//! Property tests: underlay invariants that every experiment relies on.

use geo::World;
use netsim::{AsProfile, SimTime, TrafficClass, Underlay, UnderlayConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds an underlay of `n_as` ASes (one node each) with seed `seed`.
fn build(n_as: usize, seed: u64) -> Underlay {
    let world = World::new();
    let mut u = Underlay::new(UnderlayConfig::default(), seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
    for (i, city) in world.cities().iter().cycle().take(n_as).enumerate() {
        let a = u.add_as(AsProfile::datacenter(city.name, city.location));
        u.add_node_in(a, city.location, [10, (i >> 8) as u8, i as u8, 1], &mut rng);
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn base_latency_symmetric(seed in 0u64..1000, n in 2usize..12) {
        let mut u = build(n, seed);
        for a in 0..n {
            for b in 0..n {
                let ab = u.base_owd_ms(a, b, TrafficClass::Tcp);
                let ba = u.base_owd_ms(b, a, TrafficClass::Tcp);
                prop_assert!((ab - ba).abs() < 1e-9, "asymmetric {ab} vs {ba}");
            }
        }
    }

    #[test]
    fn base_latency_deterministic(seed in 0u64..1000) {
        let mut u1 = build(6, seed);
        let mut u2 = build(6, seed);
        for a in 0..6 {
            for b in 0..6 {
                prop_assert_eq!(
                    u1.base_owd_ms(a, b, TrafficClass::Tor),
                    u2.base_owd_ms(a, b, TrafficClass::Tor)
                );
            }
        }
    }

    #[test]
    fn base_latency_respects_lightspeed(seed in 0u64..1000, n in 2usize..10) {
        let mut u = build(n, seed);
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                let owd = u.base_owd_ms(a, b, TrafficClass::Tcp);
                let na = u.node(a).location;
                let nb = u.node(b).location;
                let floor = geo::min_rtt_ms(geo::great_circle_km(na, nb)) / 2.0;
                prop_assert!(owd + 1e-9 >= floor, "owd {owd} beats light {floor}");
            }
        }
    }

    #[test]
    fn samples_dominate_base(seed in 0u64..500) {
        let mut u = build(4, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        for a in 0..4 {
            for b in 0..4 {
                let base = u.base_owd_ms(a, b, TrafficClass::Tor);
                for k in 0..20 {
                    let t = SimTime(k * 1_000_000_000);
                    let s = u.sample_owd_ms(a, b, TrafficClass::Tor, t, &mut rng);
                    prop_assert!(s >= base - 1e-9);
                }
            }
        }
    }

    #[test]
    fn inflation_within_configured_bounds(seed in 0u64..1000, n in 2usize..10) {
        let mut u = build(n, seed);
        let cfg = UnderlayConfig::default();
        for a in 0..n as u16 {
            for b in 0..n as u16 {
                if a == b { continue; }
                let f = u.inflation(netsim::AsId(a), netsim::AsId(b));
                prop_assert!(f >= cfg.inter_as_inflation_min - 1e-9);
                prop_assert!(f <= cfg.inter_as_inflation_max.max(cfg.bad_route_inflation) + 1e-9);
            }
        }
    }
}
