//! Golden-trace tests for the two audit reports: `ting-prof lineage`
//! must name the exact shard-outage → coalesce → publish chain behind
//! a served cell, and `ting-prof slo` must pin the staleness breach
//! window the fixture deliberately opens and closes. The fixture is a
//! real scan→serve campaign (supervisor + pipeline on one `Obs`), so
//! these tests break whenever an emitter stops carrying the fields the
//! walk depends on — the acceptance criterion for the lineage story.

use netsim::{NodeId, SimDuration, SimTime};
use oracle::{Journal, Pipeline, PipelineConfig, ServingState, SloConfig, TtlPolicy};
use ting::obs::{config_hash, names, ExportMeta, Lineage, Obs, ObsConfig};
use ting::shard::{DeltaPair, MergeDelta, Supervisor, SupervisorConfig};
use ting::{ScannerConfig, TingConfig};
use tor_sim::TorNetworkBuilder;

const SEED: u64 = 0x11EA;
const SHARDS: usize = 3;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        queue_cap: 1,
        publish_interval: SimDuration(0),
        staleness: ScannerConfig::default().staleness,
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(24)).unwrap(),
        slo: Some(SloConfig {
            bucket: SimDuration::from_hours(1),
            buckets: 24,
            coverage_objective_ppm: 0,
            progress_objective_ppm: 0,
            latency_budget: SimDuration::from_hours(1),
            latency_objective_ppm: 0,
            staleness_objective_ppm: 990_000,
            burn_threshold_milli: 1000,
        }),
    }
}

/// The audited campaign: round 1 drains into the queue, shard 0 then
/// crashes and restarts (the outage a stale cell's audit must name),
/// round 2 overflows the capacity-one queue so delta 1 coalesces into
/// delta 2, one tick publishes the folded batch, and the TTL ladder is
/// walked down to `Degraded` (staleness breach begins) and revived a
/// full SLO window later (breach ends).
fn traced_audit_run(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ting-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::testbed(SEED)
        .vantages(2)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let config = SupervisorConfig {
        shards: SHARDS,
        scanner: ScannerConfig {
            pairs_per_round: 7,
            ..ScannerConfig::default()
        },
        heartbeat_timeout: SimDuration::from_hours(4),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    };
    let mut sup = Supervisor::with_obs(nodes.clone(), config, TingConfig::fast(), obs.clone());
    sup.load_locations(&net);

    let mut p = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        obs.clone(),
        Some(Journal::open(&dir).unwrap()),
    );

    sup.run_round(&mut net);
    p.offer(sup.take_delta(net.sim.now()));
    // The outage: shard 0 dies after round 1's measurements, so every
    // cell it measured has a crash+restart between probe and audit.
    sup.inject_crash(0, net.sim.now());
    sup.run_round(&mut net);
    p.offer(sup.take_delta(net.sim.now()));
    p.tick(net.sim.now()).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    let newest = p.reader().snapshot().freshness_ns().unwrap();
    p.tick(SimTime(newest + SimDuration::from_hours(1).as_nanos()))
        .unwrap();
    assert_eq!(p.state(), ServingState::Stale);
    let degraded_at = SimTime(newest + SimDuration::from_hours(24).as_nanos());
    p.tick(degraded_at).unwrap();
    assert_eq!(p.state(), ServingState::Degraded);

    let revived_at = SimTime(degraded_at.as_nanos() + SimDuration::from_hours(25).as_nanos());
    p.offer(MergeDelta {
        seq: 3,
        pairs: vec![DeltaPair {
            a: nodes[0],
            b: nodes[1],
            rtt_ms: 42.0,
            measured_at: revived_at,
            lineage: Lineage { shard: 0, round: 9 },
        }],
        statuses: vec!["live"; SHARDS],
        now: revived_at,
    });
    p.tick(revived_at).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    let text = obs.export_jsonl(&ExportMeta {
        seed: SEED,
        config_hash: config_hash("golden-lineage-slo-v1"),
    });
    std::fs::remove_dir_all(&dir).unwrap();
    text
}

fn field_u64(ev: &ting::obs::EventRecord, key: &str) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, ting::obs::Value::U64(n)) if k2 == key => Some(*n),
        _ => None,
    })
}

/// A pair whose *latest* drain was shard 0's round-1 delta: its audit
/// must cross the coalesce fold, the crash, and the first publish.
fn audited_pair(doc: &obs::Document) -> (u64, u64) {
    use std::collections::HashMap;
    let mut last: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
    for ev in doc
        .events
        .iter()
        .filter(|ev| ev.name == names::LINEAGE_PAIR)
    {
        let a = field_u64(ev, "a").unwrap();
        let b = field_u64(ev, "b").unwrap();
        let key = (a.min(b), a.max(b));
        let val = (
            field_u64(ev, "seq").unwrap(),
            field_u64(ev, "shard").unwrap(),
        );
        last.insert(key, val);
    }
    let mut candidates: Vec<(u64, u64)> = last
        .into_iter()
        .filter(|&(_, (seq, shard))| seq == 1 && shard == 0)
        .map(|(k, _)| k)
        .collect();
    candidates.sort_unstable();
    *candidates
        .first()
        .expect("shard 0 drained at least one round-1 pair that round 2 did not re-measure")
}

#[test]
fn lineage_names_the_outage_coalesce_and_publish_chain() {
    let text = traced_audit_run("lineage");
    let doc = obs_analyze::parse_document(&text).unwrap();
    let (x, y) = audited_pair(&doc);

    let chain = obs_analyze::trace_pair(&doc, x, y).expect("audited pair has lineage");
    assert_eq!((chain.shard, chain.seq), (0, 1));
    assert!(chain.round >= 1, "scan rounds are 1-based");
    // The capacity-one queue folded delta 1 into delta 2 …
    assert_eq!(chain.coalesces.len(), 1);
    assert_eq!(
        (chain.coalesces[0].from_seq, chain.coalesces[0].into_seq),
        (1, 2)
    );
    // … and the first publish (bootstrap gen 1 → gen 2) served the fold.
    let p = chain
        .published
        .expect("the tick published the folded batch");
    assert_eq!((p.generation, p.last_seq), (2, 2));
    // The outage is attributed: shard 0's crash and restart both land
    // after the measurement instant.
    let incident_names: Vec<&str> = chain.incidents.iter().map(|i| i.name.as_str()).collect();
    assert!(
        incident_names.contains(&names::SHARD_CRASH)
            && incident_names.contains(&names::SHARD_RESTART),
        "expected crash+restart on the owning shard, got {incident_names:?}"
    );
    // The trace's last TTL transition is the revival.
    assert_eq!(
        chain
            .serving
            .as_ref()
            .map(|(_, f, t)| (f.as_str(), t.as_str())),
        Some(("degraded", "fresh"))
    );

    // The rendered audit names every link of the chain.
    let audit = obs_analyze::render_lineage(&doc, x, y);
    for needle in [
        "measured  shard=0",
        "drained   seq=1",
        "coalesced seq 1 -> 2",
        "published generation=2",
        "shard 0 incidents since measurement",
        names::SHARD_CRASH,
        names::SHARD_RESTART,
        "serving   degraded -> fresh",
    ] {
        assert!(audit.contains(needle), "audit missing {needle:?}:\n{audit}");
    }
    // And the unknown-pair direction renders (and exits) as a miss.
    let miss = obs_analyze::render_lineage(&doc, 999_998, 999_999);
    assert!(miss.contains("no lineage recorded for pair (999998,999999)"));
}

#[test]
fn slo_report_pins_the_staleness_breach_window() {
    let text = traced_audit_run("slo");
    let doc = obs_analyze::parse_document(&text).unwrap();

    let windows = obs_analyze::breaches(&doc);
    assert_eq!(windows.len(), 1, "exactly one breach: {windows:?}");
    let w = &windows[0];
    assert_eq!(w.slo, "staleness");
    assert!(w.end_ns.is_some(), "the revival must close the breach");
    assert!(obs_analyze::breached(&doc, "staleness"));
    assert!(!obs_analyze::breached(&doc, "coverage"));

    let report = obs_analyze::render_slo(&doc);
    assert!(report.contains("breach windows (1):"), "{report}");
    assert!(report.contains("  staleness  ["), "{report}");
    assert!(report.contains("held "), "closed windows report their span");
    // The engine leaves its windowed totals behind as gauges.
    assert!(report.contains("slo.staleness.good = "), "{report}");
    assert!(report.contains("slo.staleness.burn_milli = "), "{report}");
}

/// Satellite: gauges survive export → parse → report. The SLO engine's
/// `slo.*` family plus the pipeline's own gauges must all show up in
/// the profile report's gauges section.
#[test]
fn report_round_trips_gauges_through_parse() {
    let text = traced_audit_run("gauges");
    let doc = obs_analyze::parse_document(&text).unwrap();
    assert!(!doc.gauges.is_empty(), "the fixture sets gauges");
    let trace = obs_analyze::build(&doc).unwrap();
    let report = obs_analyze::report::render(&doc, &trace);
    assert!(
        report.contains(&format!("## gauges ({})", doc.gauges.len())),
        "{report}"
    );
    for (name, value) in &doc.gauges {
        assert!(
            report.contains(&format!("  {name} = {value}")),
            "gauge {name:?} missing from report"
        );
    }
    // Re-render through a second parse: byte-stable.
    let doc2 = obs_analyze::parse_document(&text).unwrap();
    let trace2 = obs_analyze::build(&doc2).unwrap();
    assert_eq!(report, obs_analyze::report::render(&doc2, &trace2));
}

#[test]
fn audit_reports_are_byte_deterministic() {
    let ta = traced_audit_run("det");
    let tb = traced_audit_run("det");
    assert_eq!(ta, tb, "the audited campaign must be reproducible");
    let da = obs_analyze::parse_document(&ta).unwrap();
    let db = obs_analyze::parse_document(&tb).unwrap();
    let (x, y) = audited_pair(&da);
    assert_eq!(
        obs_analyze::render_lineage(&da, x, y),
        obs_analyze::render_lineage(&db, x, y)
    );
    assert_eq!(obs_analyze::render_slo(&da), obs_analyze::render_slo(&db));
}
