//! Supervision traces are first-class analysis inputs: a supervised
//! sharded scan driven through every failure path — crash, restart,
//! heartbeat stall, corrupt checkpoint, `.bak` fallback, quarantine —
//! must export a trace that lints clean against `obs::names::REGISTRY`,
//! and the fixture must actually emit every shard-supervision event so
//! a renamed or unregistered emitter cannot slip through.

use netsim::{NodeId, SimDuration};
use ting::obs::{config_hash, names, ExportMeta, Obs, ObsConfig};
use ting::shard::{shard_path, ShardStatus, Supervisor, SupervisorConfig};
use ting::{ScannerConfig, TingConfig};
use tor_sim::TorNetworkBuilder;

const SEED: u64 = 0x51AD;

/// One traced supervised campaign exercising every supervision event.
/// `tag` keys the checkpoint directory so parallel tests don't collide;
/// the same tag reproduces the same directory (and so the same trace
/// bytes, paths included).
fn traced_supervised_scan(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ting-shard-trace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::testbed(SEED)
        .vantages(2)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let config = SupervisorConfig {
        shards: 3,
        scanner: ScannerConfig {
            pairs_per_round: 7,
            ..ScannerConfig::default()
        },
        heartbeat_timeout: SimDuration::from_hours(1),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    };
    let mut sup = Supervisor::with_obs(nodes, config, TingConfig::fast(), obs.clone());
    sup.set_checkpoint_dir(&dir);
    sup.load_locations(&net);

    // Two clean rounds: `shard.round` spans, and a `.bak` generation
    // behind every shard's checkpoint file.
    sup.run_round(&mut net);
    sup.run_round(&mut net);

    // Corrupt shard 0's on-disk primary only: the crash-restart
    // recovers through `.bak` (`scan.recover.bak`).
    let path = shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    sup.inject_crash(0, net.sim.now());
    sup.run_round(&mut net);

    // Corrupt shard 1's checkpoint everywhere — primary, `.bak`, and
    // the in-memory copy: the restart starts it over
    // (`shard.checkpoint.corrupt`).
    sup.corrupt_stored_checkpoint(1);
    sup.inject_crash(1, net.sim.now());
    sup.run_round(&mut net);

    // Wedge shard 2 past the heartbeat deadline (`shard.stall`).
    let far = net.sim.now() + SimDuration::from_hours(1_000);
    sup.inject_hang(2, far);
    for _ in 0..4 {
        let next = net.sim.now() + SimDuration::from_secs(1800);
        net.sim.advance_to(next);
        sup.run_round(&mut net);
    }
    assert_eq!(sup.status(2), ShardStatus::Running, "stall must restart");

    // Exhaust shard 0's restart budget (`shard.quarantine`).
    for _ in 0..8 {
        if sup.status(0) == ShardStatus::Quarantined {
            break;
        }
        sup.inject_crash(0, net.sim.now());
        sup.run_round(&mut net);
    }
    assert_eq!(sup.status(0), ShardStatus::Quarantined);

    let text = obs.export_jsonl(&ExportMeta {
        seed: SEED,
        config_hash: config_hash("shard-trace-lint-v1"),
    });
    std::fs::remove_dir_all(&dir).unwrap();
    text
}

#[test]
fn supervised_scan_trace_lints_clean_and_covers_every_shard_event() {
    let text = traced_supervised_scan("lint");
    let doc = obs_analyze::parse_document(&text).expect("exporter output must parse");
    let issues = obs_analyze::lint(&doc);
    assert!(
        issues.is_empty(),
        "supervised trace has lint issues:\n{}",
        issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let count = |name: &str| doc.events.iter().filter(|e| e.name == name).count();
    for name in [
        names::SHARD_ROUND_BEGIN,
        names::SHARD_ROUND_END,
        names::SHARD_CRASH,
        names::SHARD_RESTART,
        names::SHARD_STALL,
        names::SHARD_QUARANTINE,
        names::SHARD_CHECKPOINT_CORRUPT,
        names::SCAN_RECOVER_BAK,
    ] {
        assert!(count(name) >= 1, "fixture never emitted {name:?}");
    }
    // Span discipline specifically: rounds open exactly as often as
    // they close, even across crash/restart boundaries.
    assert_eq!(
        count(names::SHARD_ROUND_BEGIN),
        count(names::SHARD_ROUND_END)
    );
}

#[test]
fn supervised_trace_is_byte_deterministic() {
    // Same tag ⇒ same checkpoint directory ⇒ any path strings in the
    // trace agree; the runs are sequential so the directory is private.
    let a = traced_supervised_scan("det");
    let b = traced_supervised_scan("det");
    assert_eq!(a, b, "supervision must not add nondeterminism");
}
