//! Pipeline traces are analysis inputs too: a supervised scan feeding
//! the live scan→serve pipeline through its interesting paths —
//! delta ingest, overflow coalescing, publish spans, a kill/recover
//! cycle, and the full TTL ladder — must export a trace that lints
//! clean against `obs::names::REGISTRY` and actually emits every
//! `oracle.pipeline.*` / `oracle.stale.*` event, so a renamed or
//! unregistered emitter cannot slip through. The flip side is pinned
//! explicitly: an event name outside the registry is a lint failure.

use netsim::{NodeId, SimDuration, SimTime};
use oracle::{Journal, Pipeline, PipelineConfig, ServingState, SloConfig, TtlPolicy};
use ting::obs::{config_hash, names, ExportMeta, Lineage, Obs, ObsConfig};
use ting::shard::{DeltaPair, MergeDelta, Supervisor, SupervisorConfig};
use ting::{ScannerConfig, TingConfig};
use tor_sim::TorNetworkBuilder;

const SEED: u64 = 0x0513;
const SHARDS: usize = 3;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        // Capacity one: the second offer before a tick must coalesce.
        queue_cap: 1,
        publish_interval: SimDuration(0),
        staleness: ScannerConfig::default().staleness,
        ttl: TtlPolicy::new(SimDuration::from_hours(1), SimDuration::from_hours(24)).unwrap(),
        // Only the staleness SLO has a real objective: the fixture
        // walks the TTL ladder, so its breach must begin and end; the
        // other three (objective 0 = breach only when *everything*
        // fails) stay quiet.
        slo: Some(SloConfig {
            bucket: SimDuration::from_hours(1),
            buckets: 24,
            coverage_objective_ppm: 0,
            progress_objective_ppm: 0,
            latency_budget: SimDuration::from_hours(1),
            latency_objective_ppm: 0,
            staleness_objective_ppm: 990_000,
            burn_threshold_milli: 1000,
        }),
    }
}

/// One traced scan→serve campaign: two supervised rounds drained into
/// an overflowing queue, a publish, the TTL ladder walked to
/// `Degraded`, then a kill and journal recovery — all on one `Obs` so
/// supervision and serving land in a single trace.
fn traced_pipeline_run(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ting-ptrace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::testbed(SEED)
        .vantages(2)
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let config = SupervisorConfig {
        shards: SHARDS,
        scanner: ScannerConfig {
            pairs_per_round: 7,
            ..ScannerConfig::default()
        },
        heartbeat_timeout: SimDuration::from_hours(4),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    };
    let mut sup = Supervisor::with_obs(nodes.clone(), config, TingConfig::fast(), obs.clone());
    sup.load_locations(&net);

    let mut p = Pipeline::with_obs(
        nodes.clone(),
        SHARDS,
        pipeline_config(),
        obs.clone(),
        Some(Journal::open(&dir).unwrap()),
    );

    // Two rounds drained without an intervening tick: the second offer
    // overflows the capacity-one queue (`oracle.pipeline.coalesce`),
    // then one tick publishes the folded batch
    // (`oracle.pipeline.publish.*`) and flips bootstrap `Degraded` →
    // `Fresh` (`oracle.stale.transition`).
    sup.run_round(&mut net);
    p.offer(sup.take_delta(net.sim.now()));
    sup.run_round(&mut net);
    p.offer(sup.take_delta(net.sim.now()));
    p.tick(net.sim.now()).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    // Walk the TTL ladder in virtual time: soft boundary (→ `Stale`),
    // hard boundary (→ `Degraded`) — transitions without traffic. The
    // off-ladder judgments burn the 99% staleness budget, so
    // `slo.breach.begin` fires on the way down.
    let newest = p.reader().snapshot().freshness_ns().unwrap();
    p.tick(SimTime(newest + SimDuration::from_hours(1).as_nanos()))
        .unwrap();
    assert_eq!(p.state(), ServingState::Stale);
    let degraded_at = SimTime(newest + SimDuration::from_hours(24).as_nanos());
    p.tick(degraded_at).unwrap();
    assert_eq!(p.state(), ServingState::Degraded);

    // Fresh data a full SLO window later: the burnt buckets rotate
    // out, the judgment lands `Fresh`, and the breach ends
    // (`slo.breach.end`) — the span must close before the kill or the
    // trace would (correctly) lint as leaking it.
    let revived_at = SimTime(degraded_at.as_nanos() + SimDuration::from_hours(25).as_nanos());
    p.offer(MergeDelta {
        seq: 3,
        pairs: vec![DeltaPair {
            a: nodes[0],
            b: nodes[1],
            rtt_ms: 42.0,
            measured_at: revived_at,
            lineage: Lineage { shard: 0, round: 3 },
        }],
        statuses: vec!["live"; SHARDS],
        now: revived_at,
    });
    p.tick(revived_at).unwrap();
    assert_eq!(p.state(), ServingState::Fresh);

    // Kill the serving process and recover from the journal
    // (`oracle.pipeline.recover`); the resume instant is past the hard
    // TTL again, so the recovered pipeline re-judges straight to
    // `Degraded`.
    let died_at = SimTime(revived_at.as_nanos() + SimDuration::from_hours(24).as_nanos());
    drop(p);
    let (p, recovered) = Pipeline::recover(
        nodes,
        SHARDS,
        pipeline_config(),
        obs.clone(),
        Journal::open(&dir).unwrap(),
        died_at,
    )
    .unwrap();
    assert!(recovered.published.is_some());
    assert_eq!(p.state(), ServingState::Degraded);

    let text = obs.export_jsonl(&ExportMeta {
        seed: SEED,
        config_hash: config_hash("pipeline-trace-lint-v1"),
    });
    std::fs::remove_dir_all(&dir).unwrap();
    text
}

#[test]
fn pipeline_trace_lints_clean_and_covers_every_pipeline_event() {
    let text = traced_pipeline_run("lint");
    let doc = obs_analyze::parse_document(&text).expect("exporter output must parse");
    let issues = obs_analyze::lint(&doc);
    assert!(
        issues.is_empty(),
        "pipeline trace has lint issues:\n{}",
        issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let count = |name: &str| doc.events.iter().filter(|e| e.name == name).count();
    for name in [
        names::ORACLE_PIPELINE_DELTA,
        names::ORACLE_PIPELINE_COALESCE,
        names::ORACLE_PIPELINE_PUBLISH_BEGIN,
        names::ORACLE_PIPELINE_PUBLISH_END,
        names::ORACLE_PIPELINE_RECOVER,
        names::ORACLE_STALE_TRANSITION,
        names::LINEAGE_PAIR,
        names::SLO_BREACH_BEGIN,
        names::SLO_BREACH_END,
    ] {
        assert!(count(name) >= 1, "fixture never emitted {name:?}");
    }
    assert_eq!(
        count(names::ORACLE_PIPELINE_PUBLISH_BEGIN),
        count(names::ORACLE_PIPELINE_PUBLISH_END),
        "publish spans must balance"
    );
    assert_eq!(
        count(names::SLO_BREACH_BEGIN),
        count(names::SLO_BREACH_END),
        "breach spans must balance"
    );
    // The full ladder was walked: bootstrap→fresh→stale→degraded→fresh.
    assert!(count(names::ORACLE_STALE_TRANSITION) >= 4);
}

/// The enforcement direction: an emitter whose name is not in
/// `obs::names::REGISTRY` is a test failure, not a silently ignored
/// record — this is what keeps the taxonomy closed.
#[test]
fn an_unregistered_pipeline_event_fails_the_lint() {
    let text = traced_pipeline_run("rogue");
    let mut doc = obs_analyze::parse_document(&text).unwrap();
    doc.events[0].name = "oracle.pipeline.bogus".to_owned();
    let issues = obs_analyze::lint(&doc);
    assert!(
        issues
            .iter()
            .any(|i| i.to_string().contains("unknown event name")),
        "lint must flag an unregistered emitter"
    );
}

#[test]
fn pipeline_trace_is_byte_deterministic() {
    let a = traced_pipeline_run("det");
    let b = traced_pipeline_run("det");
    assert_eq!(a, b, "the serve path must not add nondeterminism");
}
