//! Property test for the parse/render byte contract.
//!
//! `ting-obs-v1` has exactly one renderer (`obs::Document::render_jsonl`)
//! and exactly one parser (`obs_analyze::parse_document`). The contract
//! between them is not "parses to an equivalent document" but the
//! stronger `render(parse(render(x))) == render(x)` — a parsed trace
//! re-renders **byte-identically**, so diffing re-rendered documents is
//! as trustworthy as diffing the original files. The adversarial cases
//! live in the value encodings: non-finite floats render as `null`,
//! integral floats render without a fraction (and reparse as integers
//! that render the same bytes), `-0` must stay a float, and strings may
//! contain every control character plus `"` and `\`.

use obs::{Document, EventRecord, HistRecord, HistSummary, ObsConfig, Value};
use obs_analyze::parse_document;
use proptest::prelude::*;

/// Decodes one generated field value; the selector steers the variant
/// so every `Value` arm (and the non-finite float corner) gets sampled.
fn field_value(sel: u8, bits: u64, raw: &[u8]) -> Value {
    match sel {
        0 => Value::U64(bits),
        1 => Value::I64(bits as i64),
        2 => Value::F64(f64::from_bits(bits)), // hits NaN/±inf/−0/subnormals
        3 => Value::F64(bits as f64 / 7.0),
        _ => Value::Str(raw.iter().map(|&b| (b % 128) as char).collect()),
    }
}

fn dedup_by_name<T, F: Fn(&T) -> &str>(items: &mut Vec<T>, name: F) {
    items.sort_by(|a, b| name(a).cmp(name(b)));
    items.dedup_by(|a, b| name(a) == name(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn rendered_documents_reparse_and_rerender_byte_identically(
        seed in any::<u64>(),
        config_hash in any::<u64>(),
        mode in 0u8..3,
        counters in proptest::collection::vec(("[a-z0-9.]{1,10}", any::<u64>()), 0..6),
        gauges in proptest::collection::vec(("[a-z0-9.]{1,10}", any::<i64>()), 0..6),
        hists in proptest::collection::vec(
            (
                "[a-z0-9.]{1,10}",
                any::<u64>(),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..4),
            ),
            0..4,
        ),
        events in proptest::collection::vec(
            (
                "[a-z0-9.]{1,12}",
                any::<u64>(),
                proptest::collection::vec(
                    (
                        "[a-z0-9_]{1,8}",
                        0u8..5,
                        any::<u64>(),
                        proptest::collection::vec(any::<u8>(), 0..10),
                    ),
                    0..5,
                ),
            ),
            0..6,
        ),
    ) {
        let mut counters = counters;
        dedup_by_name(&mut counters, |(n, _)| n.as_str());
        let mut gauges = gauges;
        dedup_by_name(&mut gauges, |(n, _)| n.as_str());

        let mut hists: Vec<HistRecord> = hists
            .into_iter()
            .map(|(name, count, (min, p50, p90, p99, max), buckets)| HistRecord {
                name,
                count,
                // The renderer writes a summary exactly when count > 0,
                // and the parser enforces the same equivalence.
                summary: (count > 0).then_some(HistSummary { min, p50, p90, p99, max }),
                buckets,
            })
            .collect();
        dedup_by_name(&mut hists, |h| h.name.as_str());

        let events: Vec<EventRecord> = events
            .into_iter()
            .map(|(name, t_ns, fields)| EventRecord {
                name,
                t_ns,
                fields: fields
                    .into_iter()
                    .map(|(key, sel, bits, raw)| (key, field_value(sel, bits, &raw)))
                    .collect(),
            })
            .collect();

        let doc = Document {
            config: match mode {
                0 => ObsConfig::Off,
                1 => ObsConfig::Metrics,
                _ => ObsConfig::Trace,
            },
            seed,
            config_hash,
            counters,
            gauges,
            hists,
            events,
        };

        let first = doc.render_jsonl();
        let reparsed = parse_document(&first)
            .unwrap_or_else(|e| panic!("exporter output rejected: {e}\n{first}"));
        let second = reparsed.render_jsonl();
        prop_assert_eq!(&first, &second, "render ∘ parse must preserve bytes");
    }
}

/// The corners the classifier leans on, pinned explicitly so a failure
/// names the encoding rather than a random seed.
#[test]
fn value_encoding_corners_roundtrip() {
    let mk = |v: Value| Document {
        config: ObsConfig::Trace,
        seed: 1,
        config_hash: 2,
        counters: vec![],
        gauges: vec![],
        hists: vec![],
        events: vec![EventRecord {
            name: "x".into(),
            t_ns: 0,
            fields: vec![("v".into(), v)],
        }],
    };
    for v in [
        Value::F64(f64::NAN),
        Value::F64(f64::INFINITY),
        Value::F64(f64::NEG_INFINITY),
        Value::F64(-0.0),
        Value::F64(3.0),
        Value::F64(1e300),
        Value::F64(5e-324),
        Value::I64(i64::MIN),
        Value::U64(u64::MAX),
        Value::Str("quote \" slash \\ ctl \u{1} tab \t".into()),
    ] {
        let doc = mk(v.clone());
        let first = doc.render_jsonl();
        let second = parse_document(&first)
            .unwrap_or_else(|e| panic!("{v:?}: {e}"))
            .render_jsonl();
        assert_eq!(first, second, "{v:?} broke the byte contract");
    }
}
