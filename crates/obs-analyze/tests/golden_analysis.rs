//! End-to-end analysis contract over real scanner traces.
//!
//! A fault-laden multi-round scan is traced, exported, parsed, and
//! pushed through the whole `ting-prof` stack. The assertions are the
//! issue's acceptance criteria:
//!
//! * traces from both scan drivers (sequential and parallel `K > 1`)
//!   lint clean — every span closed on every exit path;
//! * the report is a pure function of the trace bytes (byte-identical
//!   across two independent runs of the same seed);
//! * per-pair self-times partition each measurement span **exactly**;
//! * the per-relay forwarding-delay estimate `F̂_i` rank-correlates
//!   with the simulator's configured relay delays;
//! * health-event attribution agrees with the raw event stream.

use netsim::{FaultPlan, NodeId, SimDuration};
use obs_analyze::tree::{self, SELF_TIME_LABELS};
use ting::obs::{config_hash, ExportMeta, Obs, ObsConfig};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

const SEED: u64 = 0x7106;

fn meta(seed: u64) -> ExportMeta {
    ExportMeta {
        seed,
        config_hash: config_hash("golden-analysis-v1"),
    }
}

/// One traced campaign: 3 fault-laden rounds over 10 live relays, with
/// enough probes per circuit for delay attribution.
fn traced_scan(seed: u64) -> String {
    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::live(seed, 10)
        .fault_plan(FaultPlan::new(seed ^ 0x7).with_link_loss(0.004))
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.clone();
    let ting = Ting::with_obs(TingConfig::with_samples(8), obs.clone());
    let mut scanner = Scanner::new(
        nodes.clone(),
        ScannerConfig {
            pairs_per_round: 20,
            retry_backoff: SimDuration::from_secs(60),
            ..ScannerConfig::default()
        },
    );
    scanner.load_locations(&net);
    for _ in 0..3 {
        scanner.run_round(&mut net, &ting);
        let next = net.sim.now() + SimDuration::from_secs(120);
        net.sim.advance_to(next);
    }
    obs.export_jsonl(&meta(seed))
}

/// A multi-vantage round through the parallel driver, which has its own
/// early-return error paths to keep span-clean.
fn traced_parallel_scan(seed: u64, vantages: usize) -> String {
    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::live(seed, 12)
        .vantages(vantages)
        .fault_plan(FaultPlan::new(seed ^ 0x3).with_link_loss(0.004))
        .observability(obs.clone())
        .build();
    let ting = Ting::with_obs(TingConfig::fast(), obs.clone());
    let mut scanner = Scanner::new(net.relays.clone(), ScannerConfig::default());
    scanner.load_locations(&net);
    let report = scanner.run_round_parallel(&mut net, &ting);
    assert!(report.measured > 0, "parallel fixture measured nothing");
    obs.export_jsonl(&meta(seed))
}

#[test]
fn both_scan_drivers_produce_lint_clean_traces() {
    for (label, text) in [
        ("sequential", traced_scan(SEED)),
        ("parallel-k3", traced_parallel_scan(SEED, 3)),
    ] {
        let doc = obs_analyze::parse_document(&text)
            .unwrap_or_else(|e| panic!("{label}: exporter output rejected: {e}"));
        let issues = obs_analyze::lint(&doc);
        assert!(
            issues.is_empty(),
            "{label} trace has lint issues (leaked spans on an error path?):\n{}",
            issues
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Lint-clean implies the tree builder accepts it too.
        tree::build(&doc).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn report_is_byte_deterministic() {
    let a = traced_scan(SEED);
    let b = traced_scan(SEED);
    assert_eq!(a, b, "trace itself must be deterministic first");
    let render = |text: &str| {
        let doc = obs_analyze::parse_document(text).unwrap();
        let trace = tree::build(&doc).unwrap();
        obs_analyze::report::render(&doc, &trace)
    };
    let ra = render(&a);
    assert_eq!(
        ra,
        render(&b),
        "report must be a pure function of the trace"
    );
    assert!(
        ra.contains("## self time over"),
        "report missing self-time table:\n{ra}"
    );
    assert!(ra.contains("## per-relay attribution"));
}

#[test]
fn pair_self_times_partition_each_span_exactly() {
    let text = traced_scan(SEED);
    let doc = obs_analyze::parse_document(&text).unwrap();
    let trace = tree::build(&doc).unwrap();
    let pairs: Vec<_> = trace
        .rounds
        .iter()
        .flat_map(|r| r.pairs.iter())
        .chain(trace.orphan_pairs.iter())
        .collect();
    assert!(
        pairs.len() >= 40,
        "fixture too small: {} pairs",
        pairs.len()
    );
    for p in pairs {
        let st = tree::pair_self_times(p);
        assert_eq!(
            st.iter().sum::<u64>(),
            p.t1 - p.t0,
            "pair {}-{} self-times {:?} ({:?}) do not telescope to its span",
            p.a,
            p.b,
            st,
            SELF_TIME_LABELS,
        );
    }
    // The same exactness must hold for the rounds' critical paths.
    for round in &trace.rounds {
        let path = tree::critical_path(round);
        let covered: u64 = path.iter().map(|s| s.t1 - s.t0).sum();
        assert_eq!(
            covered,
            round.t1 - round.t0,
            "critical path must tile the round"
        );
    }
}

/// A delay-attribution fixture: the `testbed` scenario (institutional
/// hosts with uniform, low jitter) isolates the relays' configured
/// queueing delays from the per-link noise the `live` scenario layers
/// on, and extra rounds give every relay a healthy probe pool.
fn traced_testbed_scan(seed: u64) -> (String, Vec<(u32, f64, f64)>) {
    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::testbed(seed)
        .relays(10)
        .fault_plan(FaultPlan::new(seed ^ 0x7).with_link_loss(0.004))
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.clone();
    let ting = Ting::with_obs(TingConfig::with_samples(8), obs.clone());
    let mut scanner = Scanner::new(
        nodes.clone(),
        ScannerConfig {
            pairs_per_round: 20,
            retry_backoff: SimDuration::from_secs(60),
            ..ScannerConfig::default()
        },
    );
    scanner.load_locations(&net);
    for _ in 0..4 {
        scanner.run_round(&mut net, &ting);
        let next = net.sim.now() + SimDuration::from_secs(120);
        net.sim.advance_to(next);
    }
    let truth = nodes
        .iter()
        .map(|&n| {
            let cfg = net.relay_config(n).expect("relay has a config");
            (
                n.0,
                cfg.expected_queueing_ms(),
                cfg.expected_forwarding_ms(),
            )
        })
        .collect();
    (obs.export_jsonl(&meta(seed)), truth)
}

#[test]
fn forwarding_delay_estimates_track_configured_relay_delays() {
    let (text, truth) = traced_testbed_scan(SEED);
    let doc = obs_analyze::parse_document(&text).unwrap();
    let trace = tree::build(&doc).unwrap();
    let table = obs_analyze::per_relay(&doc, &trace);

    let mut est = Vec::new();
    let mut queueing = Vec::new();
    let mut forwarding = Vec::new();
    for (node, queueing_ms, forwarding_ms) in &truth {
        let a = table
            .get(node)
            .unwrap_or_else(|| panic!("relay {node} never traversed"));
        if let Some(f) = a.f_est_ms {
            assert!(
                a.leg_circuits >= 2,
                "relay {node}: too few legs for an estimate"
            );
            est.push(f);
            queueing.push(*queueing_ms);
            forwarding.push(*forwarding_ms);
        }
    }
    assert!(est.len() >= 8, "only {} relays got estimates", est.len());
    // F̂_i targets the queueing excess (the crypto floor cancels with
    // the min-RTT subtraction), so that's the primary correlation; the
    // full forwarding delay shares the queueing term and must still
    // rank positively.
    let rho_q = stats::spearman(&est, &queueing).expect("correlation defined");
    assert!(
        rho_q > 0.5,
        "F̂_i should rank-correlate with configured queueing delay, got ρ = {rho_q:.3}\n\
         est = {est:?}\ncfg = {queueing:?}"
    );
    let rho_f = stats::spearman(&est, &forwarding).expect("correlation defined");
    assert!(
        rho_f > 0.3,
        "F̂_i should rank-correlate with configured forwarding delay, got ρ = {rho_f:.3}"
    );
}

#[test]
fn health_attribution_matches_the_raw_event_stream() {
    let text = traced_scan(SEED);
    let doc = obs_analyze::parse_document(&text).unwrap();
    let trace = tree::build(&doc).unwrap();
    let table = obs_analyze::per_relay(&doc, &trace);

    let count_events = |name: &str| doc.events.iter().filter(|e| e.name == name).count() as u64;
    let quarantines: u64 = table.values().map(|a| a.quarantines).sum();
    let releases: u64 = table.values().map(|a| a.releases).sum();
    assert_eq!(quarantines, count_events("health.quarantine"));
    assert_eq!(releases, count_events("health.release"));
}

#[test]
fn flamegraph_totals_cover_every_pair_nanosecond() {
    let text = traced_scan(SEED);
    let doc = obs_analyze::parse_document(&text).unwrap();
    let trace = tree::build(&doc).unwrap();
    let folded = obs_analyze::folded_stacks(&trace);

    let mut total = 0u64;
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("folded line shape");
        assert!(stack.starts_with("scan;"), "stack {stack:?} not rooted");
        total += n.parse::<u64>().expect("folded count");
    }
    let pair_ns: u64 = trace
        .rounds
        .iter()
        .flat_map(|r| r.pairs.iter())
        .chain(trace.orphan_pairs.iter())
        .map(|p| p.t1 - p.t0)
        .sum();
    assert_eq!(total, pair_ns, "flamegraph must conserve pair time exactly");
}
