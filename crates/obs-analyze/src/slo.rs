//! SLO timeline analysis: breach windows and the `slo.*` gauge family.
//!
//! The live engine (`obs::slo::SloEngine`) emits `slo.breach.begin` /
//! `slo.breach.end` span pairs carrying an `slo` name field, and
//! leaves its windowed totals behind as `slo.{name}.*` gauges. This
//! module folds a trace back into per-SLO breach windows — the read
//! side of the staleness-budget story, and what the CI no-fault gate
//! (`ting-prof slo --fail-on staleness`) runs on.

use obs::{names, Document, Value};
use std::fmt::Write as _;

/// One breach window for one SLO. `end_ns` is `None` when the trace
/// ends with the breach still open (the run died burning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    pub slo: String,
    pub begin_ns: u64,
    pub end_ns: Option<u64>,
    /// Burn rate (milli-multiples of the error budget) at begin.
    pub burn_milli: u64,
}

fn field_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::U64(n)) if k2 == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::Str(s)) if k2 == key => Some(s.as_str()),
        _ => None,
    })
}

/// Extracts every breach window from the trace, in begin order.
/// Begin/end events pair by their `slo` name — one engine never nests
/// windows for the same SLO.
pub fn breaches(doc: &Document) -> Vec<Breach> {
    let mut out: Vec<Breach> = Vec::new();
    for ev in &doc.events {
        if ev.name == names::SLO_BREACH_BEGIN {
            out.push(Breach {
                slo: field_str(&ev.fields, "slo").unwrap_or("?").to_owned(),
                begin_ns: ev.t_ns,
                end_ns: None,
                burn_milli: field_u64(&ev.fields, "burn_milli").unwrap_or(0),
            });
        } else if ev.name == names::SLO_BREACH_END {
            let slo = field_str(&ev.fields, "slo").unwrap_or("?");
            if let Some(open) = out
                .iter_mut()
                .rev()
                .find(|b| b.slo == slo && b.end_ns.is_none())
            {
                open.end_ns = Some(ev.t_ns);
            }
        }
    }
    out
}

/// True when any breach window (open or closed) exists for `name`.
pub fn breached(doc: &Document, name: &str) -> bool {
    breaches(doc).iter().any(|b| b.slo == name)
}

/// The deterministic text report for `ting-prof slo`.
pub fn render_slo(doc: &Document) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ting-prof slo  seed={} config_hash={:016x}",
        doc.seed, doc.config_hash
    );
    let gauges: Vec<_> = doc
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("slo."))
        .collect();
    let _ = writeln!(out, "slo gauges at export ({}):", gauges.len());
    for (name, value) in gauges {
        let _ = writeln!(out, "  {name} = {value}");
    }
    let windows = breaches(doc);
    let _ = writeln!(out, "breach windows ({}):", windows.len());
    for b in &windows {
        match b.end_ns {
            Some(end) => {
                let _ = writeln!(
                    out,
                    "  {}  [{} .. {}]ns  held {:.3}ms  burn_milli@begin={}",
                    b.slo,
                    b.begin_ns,
                    end,
                    (end - b.begin_ns) as f64 / 1e6,
                    b.burn_milli
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {}  [{} .. open]ns  still breaching at export  burn_milli@begin={}",
                    b.slo, b.begin_ns, b.burn_milli
                );
            }
        }
    }
    if windows.is_empty() {
        let _ = writeln!(out, "clean: no SLO breached anywhere in the trace");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventRecord, ObsConfig};

    fn ev(name: &str, t_ns: u64, slo: &str, span: u64) -> EventRecord {
        EventRecord {
            name: name.to_owned(),
            t_ns,
            fields: vec![
                ("span".to_owned(), Value::U64(span)),
                ("slo".to_owned(), Value::Str(slo.to_owned())),
                ("burn_milli".to_owned(), Value::U64(1500)),
            ],
        }
    }

    fn doc(events: Vec<EventRecord>) -> Document {
        Document {
            config: ObsConfig::Trace,
            seed: 1,
            config_hash: 2,
            counters: vec![],
            gauges: vec![
                ("slo.staleness.bad".to_owned(), 3),
                ("other.gauge".to_owned(), 9),
            ],
            hists: vec![],
            events,
        }
    }

    #[test]
    fn pairs_windows_by_slo_name_and_leaves_open_tails() {
        let d = doc(vec![
            ev(names::SLO_BREACH_BEGIN, 10, "staleness", 1),
            ev(names::SLO_BREACH_BEGIN, 20, "coverage", 2),
            ev(names::SLO_BREACH_END, 30, "staleness", 1),
            ev(names::SLO_BREACH_BEGIN, 40, "staleness", 3),
        ]);
        let w = breaches(&d);
        assert_eq!(w.len(), 3);
        assert_eq!(
            (w[0].slo.as_str(), w[0].begin_ns, w[0].end_ns),
            ("staleness", 10, Some(30))
        );
        assert_eq!((w[1].slo.as_str(), w[1].end_ns), ("coverage", None));
        assert_eq!((w[2].slo.as_str(), w[2].end_ns), ("staleness", None));
        assert!(breached(&d, "coverage"));
        assert!(!breached(&d, "publish_latency"));
        let text = render_slo(&d);
        assert!(text.contains("slo.staleness.bad = 3"), "{text}");
        assert!(!text.contains("other.gauge"), "non-slo gauges excluded");
        assert!(text.contains("[40 .. open]ns"), "{text}");
    }

    #[test]
    fn clean_trace_renders_the_clean_line() {
        let d = doc(vec![]);
        assert!(render_slo(&d).contains("clean: no SLO breached"));
    }
}
