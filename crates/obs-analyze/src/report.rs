//! The deterministic text report `ting-prof report` prints.
//!
//! Everything is derived from the parsed document — same trace bytes in,
//! same report bytes out — so a report diff is as trustworthy as a
//! trace diff, and a golden-trace test pins the determinism.

use crate::attrib::per_relay;
use crate::tree::{critical_path, pair_self_times, Trace, SELF_TIME_LABELS};
use obs::Document;
use std::fmt::Write as _;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the full profile report.
pub fn render(doc: &Document, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ting-prof report  seed={} config_hash={:016x} mode={}",
        doc.seed,
        doc.config_hash,
        obs::mode_name(doc.config)
    );
    let _ = writeln!(
        out,
        "rounds={} orphan_pairs={} orphan_circuits={} events={}",
        trace.rounds.len(),
        trace.orphan_pairs.len(),
        trace.orphan_circuits.len(),
        doc.events.len()
    );

    // ── Gauges: last-written values at export, in export order. ──
    if !doc.gauges.is_empty() {
        let _ = writeln!(out, "\n## gauges ({})", doc.gauges.len());
        for (name, value) in &doc.gauges {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }

    // ── Per-round summaries. ──
    for (i, round) in trace.rounds.iter().enumerate() {
        let _ = writeln!(
            out,
            "\n## round {i}: planned={} measured={} failed={} span={:.3}ms pairs={}",
            round.planned,
            round.measured,
            round.failed,
            ms(round.t1 - round.t0),
            round.pairs.len()
        );
        let path = critical_path(round);
        let _ = writeln!(out, "critical path ({} segments):", path.len());
        for seg in &path {
            let _ = writeln!(
                out,
                "  {:>12.3}ms  {:<20} [{} .. {}]",
                ms(seg.t1 - seg.t0),
                seg.label,
                seg.t0,
                seg.t1
            );
        }
    }

    // ── Aggregate self-time table. ──
    let mut totals = [0u64; 6];
    let mut pairs = 0usize;
    let mut all_pairs = Vec::new();
    for round in &trace.rounds {
        all_pairs.extend(round.pairs.iter());
    }
    all_pairs.extend(trace.orphan_pairs.iter());
    for pair in &all_pairs {
        let st = pair_self_times(pair);
        for (t, s) in totals.iter_mut().zip(st) {
            *t += s;
        }
        pairs += 1;
    }
    let grand: u64 = totals.iter().sum();
    let _ = writeln!(out, "\n## self time over {pairs} pair measurements");
    let _ = writeln!(out, "{:<10} {:>14} {:>8}", "phase", "total_ms", "share");
    for (label, t) in SELF_TIME_LABELS.iter().zip(totals) {
        let share = if grand == 0 {
            0.0
        } else {
            t as f64 / grand as f64 * 100.0
        };
        let _ = writeln!(out, "{label:<10} {:>14.3} {share:>7.2}%", ms(t));
    }

    // ── Per-relay attribution. ──
    let table = per_relay(doc, trace);
    let _ = writeln!(out, "\n## per-relay attribution ({} relays)", table.len());
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>7} {:>10} {:>9} {:>6} {:>6} {:>5}",
        "relay", "circuits", "failed", "f_est_ms", "legs", "probes", "quar", "rel"
    );
    for (relay, a) in &table {
        let f_est = match a.f_est_ms {
            Some(f) => format!("{f:.4}"),
            None => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{relay:<6} {:>9} {:>7} {f_est:>10} {:>9} {:>6} {:>6} {:>5}",
            a.circuits, a.failed_circuits, a.leg_circuits, a.probes, a.quarantines, a.releases
        );
    }
    out
}
