//! Measurement lineage: walk a served pair's causal chain back to the
//! probe that produced it.
//!
//! The write path stamps every drained pair with a `lineage.pair`
//! event (shard, scan round, delta sequence, measurement instant);
//! the pipeline's `oracle.pipeline.coalesce` events record how delta
//! sequences fold under backpressure, and each
//! `oracle.pipeline.publish.end` carries the highest sequence its
//! generation absorbed. Those three event families, plus the shard
//! supervision log, are enough to answer the question this module
//! exists for: *why is this cell as old as it is* — which probe
//! measured it, which shard outage delayed its successor, which
//! coalesce folded it, and which generation first served it.

use obs::{names, Document, EventRecord, Value};
use std::fmt::Write as _;

/// One hop of queue-overflow coalescing the pair's delta went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceHop {
    pub t_ns: u64,
    pub from_seq: u64,
    pub into_seq: u64,
}

/// The publish that first served the pair's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishPoint {
    pub t_ns: u64,
    pub generation: u64,
    pub last_seq: u64,
}

/// A supervision event on the pair's owning shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIncident {
    pub t_ns: u64,
    pub name: String,
    /// The `reason` field, when the event carries one.
    pub reason: Option<String>,
}

/// The full causal chain for one pair, reconstructed from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageChain {
    pub a: u64,
    pub b: u64,
    /// Shard that ran the probe and the scanner round it ran in
    /// (round 0 = legacy data without recorded lineage).
    pub shard: u64,
    pub round: u64,
    /// Virtual instant the probe measured the pair.
    pub measured_ns: u64,
    /// Virtual instant the supervisor drained it into a delta.
    pub drained_ns: u64,
    /// Delta sequence it was drained under.
    pub seq: u64,
    /// Queue-overflow folds the delta went through before publish.
    pub coalesces: Vec<CoalesceHop>,
    /// The generation that first served it, if the trace reaches one.
    pub published: Option<PublishPoint>,
    /// Supervision events on the owning shard since the measurement —
    /// the outages that explain a stale successor.
    pub incidents: Vec<ShardIncident>,
    /// The last TTL-ladder transition in the trace: `(t_ns, from, to)`.
    pub serving: Option<(u64, String, String)>,
}

fn field_u64(ev: &EventRecord, key: &str) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::U64(n)) if k2 == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(ev: &'a EventRecord, key: &str) -> Option<&'a str> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::Str(s)) if k2 == key => Some(s.as_str()),
        _ => None,
    })
}

/// Reconstructs the causal chain for pair `(x, y)` (order-insensitive)
/// from the trace's event log. `None` when the trace never drained a
/// measurement for the pair.
pub fn trace_pair(doc: &Document, x: u64, y: u64) -> Option<LineageChain> {
    // The *latest* drain is the one the served cell came from: delta
    // application is last-write-wins.
    let (idx, pair_ev) = doc.events.iter().enumerate().rfind(|(_, ev)| {
        if ev.name != names::LINEAGE_PAIR {
            return false;
        }
        let (a, b) = (field_u64(ev, "a"), field_u64(ev, "b"));
        (a == Some(x) && b == Some(y)) || (a == Some(y) && b == Some(x))
    })?;

    let shard = field_u64(pair_ev, "shard").unwrap_or(0);
    let round = field_u64(pair_ev, "round").unwrap_or(0);
    let measured_ns = field_u64(pair_ev, "t_meas").unwrap_or(pair_ev.t_ns);
    let mut seq = field_u64(pair_ev, "seq").unwrap_or(0);

    // Follow the delta sequence through coalesce folds: when the
    // oldest queued delta (ours) folds into a newer one, the surviving
    // sequence is `into_seq` and the publish log only ever sees that.
    let mut coalesces = Vec::new();
    let mut published = None;
    for ev in &doc.events[idx + 1..] {
        if ev.name == names::ORACLE_PIPELINE_COALESCE {
            if field_u64(ev, "from_seq") == Some(seq) {
                let into_seq = field_u64(ev, "into_seq").unwrap_or(seq);
                coalesces.push(CoalesceHop {
                    t_ns: ev.t_ns,
                    from_seq: seq,
                    into_seq,
                });
                seq = into_seq;
            }
        } else if ev.name == names::ORACLE_PIPELINE_PUBLISH_END
            && field_u64(ev, "last_seq").unwrap_or(0) >= seq
        {
            published = Some(PublishPoint {
                t_ns: ev.t_ns,
                generation: field_u64(ev, "generation").unwrap_or(0),
                last_seq: field_u64(ev, "last_seq").unwrap_or(0),
            });
            break;
        }
    }

    // Outages on the owning shard since the measurement: why no fresher
    // probe has replaced this cell.
    let incidents = doc
        .events
        .iter()
        .filter(|ev| {
            matches!(
                ev.name.as_str(),
                n if n == names::SHARD_CRASH
                    || n == names::SHARD_RESTART
                    || n == names::SHARD_STALL
                    || n == names::SHARD_QUARANTINE
                    || n == names::SHARD_CHECKPOINT_CORRUPT
            )
        })
        .filter(|ev| ev.t_ns >= measured_ns && field_u64(ev, "shard") == Some(shard))
        .map(|ev| ShardIncident {
            t_ns: ev.t_ns,
            name: ev.name.clone(),
            reason: field_str(ev, "reason").map(str::to_owned),
        })
        .collect();

    let serving = doc
        .events
        .iter()
        .rfind(|ev| ev.name == names::ORACLE_STALE_TRANSITION)
        .map(|ev| {
            (
                ev.t_ns,
                field_str(ev, "from").unwrap_or("?").to_owned(),
                field_str(ev, "to").unwrap_or("?").to_owned(),
            )
        });

    Some(LineageChain {
        a: x,
        b: y,
        shard,
        round,
        measured_ns,
        drained_ns: pair_ev.t_ns,
        seq: field_u64(pair_ev, "seq").unwrap_or(0),
        coalesces,
        published,
        incidents,
        serving,
    })
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The deterministic text report for `ting-prof lineage`.
pub fn render_lineage(doc: &Document, x: u64, y: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ting-prof lineage  pair=({x},{y})  seed={} config_hash={:016x}",
        doc.seed, doc.config_hash
    );
    let Some(chain) = trace_pair(doc, x, y) else {
        let _ = writeln!(
            out,
            "no lineage recorded for pair ({x},{y}): the trace never drained a measurement for it"
        );
        return out;
    };
    let _ = writeln!(
        out,
        "measured  shard={} round={} at t={}ns",
        chain.shard, chain.round, chain.measured_ns
    );
    let _ = writeln!(
        out,
        "drained   seq={} at t={}ns (+{:.3}ms after measurement)",
        chain.seq,
        chain.drained_ns,
        ms(chain.drained_ns - chain.measured_ns)
    );
    if chain.coalesces.is_empty() {
        let _ = writeln!(out, "coalesced never (delta published as drained)");
    } else {
        for hop in &chain.coalesces {
            let _ = writeln!(
                out,
                "coalesced seq {} -> {} at t={}ns (queue overflow folded its delta)",
                hop.from_seq, hop.into_seq, hop.t_ns
            );
        }
    }
    match &chain.published {
        Some(p) => {
            let _ = writeln!(
                out,
                "published generation={} at t={}ns (last_seq={}, drain->serve {:.3}ms)",
                p.generation,
                p.t_ns,
                p.last_seq,
                ms(p.t_ns.saturating_sub(chain.drained_ns))
            );
        }
        None => {
            let _ = writeln!(out, "published never (trace ends before its publish)");
        }
    }
    let _ = writeln!(
        out,
        "shard {} incidents since measurement ({}):",
        chain.shard,
        chain.incidents.len()
    );
    for i in &chain.incidents {
        match &i.reason {
            Some(r) => {
                let _ = writeln!(out, "  t={}ns  {} reason={:?}", i.t_ns, i.name, r);
            }
            None => {
                let _ = writeln!(out, "  t={}ns  {}", i.t_ns, i.name);
            }
        }
    }
    match &chain.serving {
        Some((t, from, to)) => {
            let _ = writeln!(out, "serving   {from} -> {to} at t={t}ns (last transition)");
        }
        None => {
            let _ = writeln!(out, "serving   no TTL transitions in trace");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ObsConfig;

    fn ev(name: &str, t_ns: u64, fields: Vec<(&str, Value)>) -> EventRecord {
        EventRecord {
            name: name.to_owned(),
            t_ns,
            fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }

    fn doc(events: Vec<EventRecord>) -> Document {
        Document {
            config: ObsConfig::Trace,
            seed: 7,
            config_hash: 0,
            counters: vec![],
            gauges: vec![],
            hists: vec![],
            events,
        }
    }

    #[test]
    fn walks_drain_coalesce_publish_and_incidents() {
        let d = doc(vec![
            ev(
                names::LINEAGE_PAIR,
                100,
                vec![
                    ("a", Value::U64(1)),
                    ("b", Value::U64(2)),
                    ("shard", Value::U64(3)),
                    ("round", Value::U64(4)),
                    ("seq", Value::U64(5)),
                    ("t_meas", Value::U64(90)),
                ],
            ),
            ev(
                names::ORACLE_PIPELINE_COALESCE,
                110,
                vec![
                    ("from_seq", Value::U64(5)),
                    ("into_seq", Value::U64(6)),
                    ("pairs", Value::U64(2)),
                ],
            ),
            ev(
                names::SHARD_CRASH,
                115,
                vec![
                    ("shard", Value::U64(3)),
                    ("reason", Value::Str("heartbeat".into())),
                    ("restarts", Value::U64(1)),
                ],
            ),
            // A different shard's crash must not be attributed.
            ev(
                names::SHARD_CRASH,
                116,
                vec![
                    ("shard", Value::U64(0)),
                    ("reason", Value::Str("heartbeat".into())),
                    ("restarts", Value::U64(1)),
                ],
            ),
            // A publish that predates our folded sequence is skipped.
            ev(
                names::ORACLE_PIPELINE_PUBLISH_END,
                118,
                vec![
                    ("span", Value::U64(1)),
                    ("generation", Value::U64(2)),
                    ("batch_pairs", Value::U64(1)),
                    ("last_seq", Value::U64(4)),
                ],
            ),
            ev(
                names::ORACLE_PIPELINE_PUBLISH_END,
                120,
                vec![
                    ("span", Value::U64(2)),
                    ("generation", Value::U64(3)),
                    ("batch_pairs", Value::U64(2)),
                    ("last_seq", Value::U64(6)),
                ],
            ),
        ]);
        let chain = trace_pair(&d, 2, 1).expect("pair is order-insensitive");
        assert_eq!((chain.shard, chain.round, chain.seq), (3, 4, 5));
        assert_eq!((chain.measured_ns, chain.drained_ns), (90, 100));
        assert_eq!(
            chain.coalesces,
            vec![CoalesceHop {
                t_ns: 110,
                from_seq: 5,
                into_seq: 6
            }]
        );
        let p = chain.published.expect("publish reached");
        assert_eq!((p.generation, p.last_seq, p.t_ns), (3, 6, 120));
        assert_eq!(chain.incidents.len(), 1, "only the owning shard's crash");
        assert_eq!(chain.incidents[0].reason.as_deref(), Some("heartbeat"));
        assert!(trace_pair(&d, 1, 9).is_none());
        let text = render_lineage(&d, 1, 2);
        assert!(text.contains("published generation=3"), "{text}");
    }
}
