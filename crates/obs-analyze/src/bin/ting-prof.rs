//! `ting-prof`: analyze `ting-obs-v1` traces and gate bench baselines.
//!
//! ```text
//! ting-prof lint    <trace.jsonl>                  # exit 1 on issues
//! ting-prof report  <trace.jsonl>                  # deterministic profile
//! ting-prof flame   <trace.jsonl> [out.folded]     # folded stacks
//! ting-prof diff    <base.json> <current.json> [--tolerance 0.10]
//! ting-prof lineage <trace.jsonl> <x> <y>          # causal chain for a pair
//! ting-prof slo     <trace.jsonl> [--fail-on <name>]  # breach timeline
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ting-prof: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: ting-prof <lint|report|flame|diff|lineage|slo> ... (see --help)";
    let cmd = args.first().map(String::as_str).ok_or(usage)?;
    match cmd {
        "lint" => {
            let doc = load_trace(args.get(1).ok_or("lint: missing trace path")?)?;
            let issues = obs_analyze::lint(&doc);
            for issue in &issues {
                println!("{issue}");
            }
            if issues.is_empty() {
                println!(
                    "ok: {} events, 0 issues (seed={} config_hash={:016x})",
                    doc.events.len(),
                    doc.seed,
                    doc.config_hash
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{} issue(s)", issues.len());
                Ok(ExitCode::FAILURE)
            }
        }
        "report" => {
            let doc = load_trace(args.get(1).ok_or("report: missing trace path")?)?;
            let trace = obs_analyze::build(&doc)?;
            print!("{}", obs_analyze::report::render(&doc, &trace));
            Ok(ExitCode::SUCCESS)
        }
        "flame" => {
            let doc = load_trace(args.get(1).ok_or("flame: missing trace path")?)?;
            let trace = obs_analyze::build(&doc)?;
            let folded = obs_analyze::folded_stacks(&trace);
            match args.get(2) {
                Some(path) => {
                    std::fs::write(path, &folded).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("wrote {} stacks to {path}", folded.lines().count());
                }
                None => print!("{folded}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let base_path = args.get(1).ok_or("diff: missing baseline path")?;
            let cur_path = args.get(2).ok_or("diff: missing current path")?;
            let mut tolerance = 0.10;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--tolerance" => {
                        tolerance = rest
                            .next()
                            .ok_or("--tolerance needs a value")?
                            .parse()
                            .map_err(|e| format!("--tolerance: {e}"))?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let base = obs_analyze::parse_bench(&read(base_path)?)?;
            let current = obs_analyze::parse_bench(&read(cur_path)?)?;
            let report = obs_analyze::diff(&base, &current, tolerance);
            print!("{}", report.render(&base, &current));
            Ok(if report.failed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "lineage" => {
            let doc = load_trace(args.get(1).ok_or("lineage: missing trace path")?)?;
            let x: u64 = args
                .get(2)
                .ok_or("lineage: missing node x")?
                .parse()
                .map_err(|e| format!("lineage: node x: {e}"))?;
            let y: u64 = args
                .get(3)
                .ok_or("lineage: missing node y")?
                .parse()
                .map_err(|e| format!("lineage: node y: {e}"))?;
            print!("{}", obs_analyze::render_lineage(&doc, x, y));
            Ok(if obs_analyze::trace_pair(&doc, x, y).is_some() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "slo" => {
            let doc = load_trace(args.get(1).ok_or("slo: missing trace path")?)?;
            let mut fail_on: Vec<&str> = Vec::new();
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--fail-on" => {
                        fail_on.push(rest.next().ok_or("--fail-on needs an SLO name")?);
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            print!("{}", obs_analyze::render_slo(&doc));
            let tripped: Vec<&&str> = fail_on
                .iter()
                .filter(|name| obs_analyze::breached(&doc, name))
                .collect();
            for name in &tripped {
                eprintln!("ting-prof: SLO {name:?} breached in this trace");
            }
            Ok(if tripped.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "--help" | "-h" | "help" => {
            println!("{usage}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; {usage}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn load_trace(path: &str) -> Result<obs::Document, String> {
    obs_analyze::parse_document(&read(path)?).map_err(|e| format!("{path}: {e}"))
}
