//! Per-relay delay and failure attribution.
//!
//! **Forwarding delay `F_i`.** Paper §4.3 estimates a relay's
//! forwarding delay from circuits that traverse it. In a trace, every
//! leg circuit (`x`/`y`/`leg` kinds) is a two-hop `w → i` path whose
//! probe RTTs the emitter logged per circuit. All legs measuring the
//! same relay share that path, so their probes are pooled: the pooled
//! *minimum* RTT is the floor (propagation + crypto with empty queues),
//! and each probe's excess over it is queueing drawn at `w` and `i`
//! plus link jitter. With `w` deliberately provisioned quiet, the mean
//! excess is dominated by relay `i`'s busy-queue draws on the two
//! traversals each probe makes, so `F̂_i = mean-excess / 2` ranks
//! relays by forwarding delay. (Pooling matters: a per-circuit floor
//! from a handful of probes is biased high on busy relays, washing the
//! ranking out.) Note what the subtraction cancels: the relay's
//! constant crypto cost rides in every probe — fastest included — so it
//! lands in the floor alongside propagation, and `F̂_i` recovers the
//! *queueing* excess ([`tor_sim::RelayConfig::expected_queueing_ms`] in
//! the simulator), not the full `base + queueing` mean. The simulator
//! knows each relay's true configuration, and a test holds the rank
//! correlation between `F̂_i` and that ground truth.
//!
//! **Failure involvement.** Circuit attempts ending in an error count
//! against every relay on their path; quarantine/release/probe events
//! from `core::health` are tallied alongside, so the table shows
//! whether the health model's verdicts track the relays that actually
//! broke circuits.

use crate::tree::{CircuitNode, PairNode, Trace};
use obs::names;
use obs::{Document, Value};
use std::collections::BTreeMap;

/// Attribution totals for one relay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelayAttribution {
    /// Leg circuits that measured this relay directly.
    pub leg_circuits: u64,
    /// Probe RTT samples across those legs.
    pub probes: u64,
    /// Estimated forwarding delay (ms); `None` without enough probes.
    pub f_est_ms: Option<f64>,
    /// Circuit attempts through this relay that ended in an error.
    pub failed_circuits: u64,
    /// Circuit attempts through this relay in total.
    pub circuits: u64,
    /// `health.quarantine` events naming this relay.
    pub quarantines: u64,
    /// `health.release` events naming this relay.
    pub releases: u64,
}

/// Per-relay attribution over the whole trace, keyed by node id.
pub fn per_relay(doc: &Document, trace: &Trace) -> BTreeMap<u32, RelayAttribution> {
    let mut table: BTreeMap<u32, RelayAttribution> = BTreeMap::new();
    // All probe RTTs (µs) over each relay's leg circuits, pooled.
    let mut pooled: BTreeMap<u32, Vec<f64>> = BTreeMap::new();

    let mut visit = |c: &CircuitNode| {
        for &node in &c.path {
            let entry = table.entry(node).or_default();
            entry.circuits += 1;
            if c.outcome != "ok" {
                entry.failed_circuits += 1;
            }
        }
        // Leg circuits are `w → relay`: the measured relay is the last
        // hop. Full circuits mix four relays' delays, so only legs feed
        // the forwarding-delay estimator.
        if c.kind == "full" || c.path.len() != 2 {
            return;
        }
        let relay = c.path[1];
        let probes: Vec<f64> = c
            .phases
            .iter()
            .filter(|p| p.phase == "probe")
            .map(|p| p.dur_us as f64)
            .collect();
        let entry = table.entry(relay).or_default();
        entry.leg_circuits += 1;
        entry.probes += probes.len() as u64;
        pooled.entry(relay).or_default().extend(probes);
    };

    let mut visit_pair = |p: &PairNode| {
        for c in &p.circuits {
            visit(c);
        }
    };
    for round in &trace.rounds {
        for pair in &round.pairs {
            visit_pair(pair);
        }
    }
    for pair in &trace.orphan_pairs {
        visit_pair(pair);
    }
    for c in &trace.orphan_circuits {
        visit(c);
    }

    for (relay, probes) in pooled {
        if probes.len() >= 2 {
            let min = probes.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = probes.iter().sum::<f64>() / probes.len() as f64;
            // Two traversals of the relay per probe round-trip.
            table.entry(relay).or_default().f_est_ms = Some((mean - min) / 1000.0 / 2.0);
        }
    }

    for ev in &doc.events {
        let counter = match ev.name.as_str() {
            names::HEALTH_QUARANTINE => 0,
            names::HEALTH_RELEASE => 1,
            _ => continue,
        };
        let node = ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("node", Value::U64(n)) => Some(*n as u32),
            _ => None,
        });
        if let Some(node) = node {
            let entry = table.entry(node).or_default();
            if counter == 0 {
                entry.quarantines += 1;
            } else {
                entry.releases += 1;
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{PhasePoint, RoundNode};
    use obs::{EventRecord, ObsConfig};

    fn leg(relay: u32, probes_us: &[u64], outcome: &str) -> CircuitNode {
        CircuitNode {
            id: 1,
            kind: "x".into(),
            path: vec![0, relay],
            attempt: 1,
            vantage: 0,
            t0: 0,
            t1: 10,
            outcome: outcome.into(),
            phases: probes_us
                .iter()
                .map(|&us| PhasePoint {
                    phase: "probe".into(),
                    t_ns: 0,
                    dur_us: us,
                })
                .collect(),
            errors: vec![],
        }
    }

    #[test]
    fn estimates_half_mean_excess_and_counts_failures() {
        let trace = Trace {
            rounds: vec![RoundNode {
                id: 1,
                t0: 0,
                t1: 100,
                planned: 1,
                measured: 1,
                failed: 0,
                pairs: vec![PairNode {
                    id: 2,
                    a: 7,
                    b: 8,
                    vantage: 0,
                    t0: 0,
                    t1: 100,
                    outcome: "accepted".into(),
                    circuits: vec![
                        leg(7, &[1000, 3000, 2000], "ok"),
                        leg(8, &[500], "probe-lost"),
                    ],
                }],
            }],
            orphan_pairs: vec![],
            orphan_circuits: vec![],
        };
        let doc = obs::Document {
            config: ObsConfig::Trace,
            seed: 0,
            config_hash: 0,
            counters: vec![],
            gauges: vec![],
            hists: vec![],
            events: vec![EventRecord {
                name: names::HEALTH_QUARANTINE.into(),
                t_ns: 5,
                fields: vec![("node".into(), Value::U64(8))],
            }],
        };
        let table = per_relay(&doc, &trace);
        // Relay 7: probes 1000/3000/2000 µs → min 1000, mean 2000,
        // excess 1000 µs → F̂ = 0.5 ms.
        assert_eq!(table[&7].f_est_ms, Some(0.5));
        assert_eq!(table[&7].failed_circuits, 0);
        // Relay 8: single probe (no estimate), failed circuit, one
        // quarantine.
        assert_eq!(table[&8].f_est_ms, None);
        assert_eq!(table[&8].failed_circuits, 1);
        assert_eq!(table[&8].quarantines, 1);
        // The shared local hop (node 0) is on both paths.
        assert_eq!(table[&0].circuits, 2);
    }
}
