//! A small strict JSON reader shared by the trace parser and the bench
//! diff engine.
//!
//! Numbers are kept as their **raw source token** rather than eagerly
//! converted: the `ting-obs-v1` round-trip contract is byte-level, and
//! whether `"1"` came from a `u64` or an integral `f64` is decided by
//! the consumer (both re-render to the same byte, so the distinction
//! never breaks the contract). Objects preserve key order for the same
//! reason.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// The raw number token, exactly as it appeared in the source.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object's fields, or an error naming `what` when it is not
    /// an object.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("{what}: expected object, got {}", other.kind())),
        }
    }

    /// Looks up a key in an object value.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what}: {raw:?} is not a u64")),
            other => Err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    /// The value as an `f64`, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("{what}: {raw:?} is not a number")),
            other => Err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    /// The value as a string, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed, trailing garbage is an error).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!("expected {want:?}, got {got:?}"));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Json::Str(self.string()?)),
            't' => self.literal("true", Json::Bool(true)),
            'f' => self.literal("false", Json::Bool(false)),
            'n' => self.literal("null", Json::Null),
            '-' | '0'..='9' => self.number(),
            other => Err(format!("unexpected character {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Json::Obj(fields)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: \uDnnn\uDnnn.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("unpaired high surrogate".to_owned());
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(hi).ok_or("invalid \\u escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape \\{other}")),
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!("unescaped control character {:#x}", c as u32))
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut n = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            n = n * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("bad hex digit {c:?}"))?;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err("number with no digits".to_owned());
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some('0'..='9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err("number with empty fraction".to_owned());
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some('0'..='9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err("number with empty exponent".to_owned());
            }
        }
        Ok(Json::Num(self.chars[start..self.pos].iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x"}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num("1".into()),
                Json::Num("-2".into()),
                Json::Num("3.5".into()),
                Json::Null,
                Json::Bool(true),
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("x".into())));
    }

    #[test]
    fn preserves_raw_number_tokens() {
        let v = parse("[1.50, 2e3]").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![Json::Num("1.50".into()), Json::Num("2e3".into())])
        );
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        let v = parse(r#""a\n\t\u0001\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("a\n\t\u{1}\u{1F600}".into()));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("01a").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
