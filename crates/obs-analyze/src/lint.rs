//! Trace linter: structural validation of a parsed `ting-obs-v1`
//! document against the `obs::names` registry.
//!
//! Three families of defects, each of which has bitten a tracing system
//! in the wild:
//!
//! * **unknown names** — an emitter typo'd an event or invented one
//!   without registering it, so downstream tooling silently ignores it;
//! * **non-monotonic clocks** — an emitter logged bookkeeping at a
//!   timestamp the trace had already moved past, so span reconstruction
//!   sees time run backwards;
//! * **span leaks** — a `*.begin` whose `*.end` never arrives (an
//!   early-return error path skipped the close), an end without a
//!   begin, or an end closing a span some *other* event opened.

use obs::names::{self, EventKind};
use obs::{Document, EventRecord, Value};
use std::collections::HashMap;

/// One linter finding. `event` is the index into `Document::events`
/// (`None` for whole-document findings like leaked spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    pub event: Option<usize>,
    pub msg: String,
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.event {
            Some(i) => write!(f, "event #{i}: {}", self.msg),
            None => write!(f, "document: {}", self.msg),
        }
    }
}

/// The `span` field of an event, when present and well-typed.
pub fn span_id(ev: &EventRecord) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        ("span", Value::U64(id)) => Some(*id),
        _ => None,
    })
}

/// Lints the document's event log. An empty result means the trace is
/// structurally sound.
pub fn lint(doc: &Document) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    let mut last_t: Option<(usize, u64)> = None;
    // Open spans: id → (begin-event index, begin name).
    let mut open: HashMap<u64, (usize, &str)> = HashMap::new();

    for (i, ev) in doc.events.iter().enumerate() {
        let Some(spec) = names::spec(&ev.name) else {
            issues.push(LintIssue {
                event: Some(i),
                msg: format!(
                    "unknown event name {:?} (not in obs::names::REGISTRY)",
                    ev.name
                ),
            });
            continue;
        };
        if let Some((j, t)) = last_t {
            if ev.t_ns < t {
                issues.push(LintIssue {
                    event: Some(i),
                    msg: format!(
                        "clock went backwards: t_ns {} after event #{j} at {}",
                        ev.t_ns, t
                    ),
                });
            }
        }
        last_t = Some((i, ev.t_ns));

        match spec.kind {
            EventKind::Point => {}
            EventKind::SpanBegin { .. } => match span_id(ev) {
                None => issues.push(LintIssue {
                    event: Some(i),
                    msg: format!("span begin {:?} lacks a span id field", ev.name),
                }),
                Some(id) => {
                    if let Some((j, prior)) = open.insert(id, (i, &ev.name)) {
                        issues.push(LintIssue {
                            event: Some(i),
                            msg: format!(
                                "span id {id} reopened while {prior:?} (event #{j}) still open"
                            ),
                        });
                    }
                }
            },
            EventKind::SpanEnd { begin } => match span_id(ev) {
                None => issues.push(LintIssue {
                    event: Some(i),
                    msg: format!("span end {:?} lacks a span id field", ev.name),
                }),
                Some(id) => match open.remove(&id) {
                    None => issues.push(LintIssue {
                        event: Some(i),
                        msg: format!("{:?} closes span id {id} that is not open", ev.name),
                    }),
                    Some((j, opened_as)) if opened_as != begin => issues.push(LintIssue {
                        event: Some(i),
                        msg: format!(
                            "{:?} closes span id {id}, but event #{j} opened it as {opened_as:?}",
                            ev.name
                        ),
                    }),
                    Some(_) => {}
                },
            },
        }
    }

    // Whatever is still open leaked on some exit path.
    let mut leaked: Vec<(u64, usize, &str)> =
        open.into_iter().map(|(id, (j, n))| (id, j, n)).collect();
    leaked.sort_unstable();
    for (id, j, name) in leaked {
        issues.push(LintIssue {
            event: None,
            msg: format!("span id {id} ({name:?}, opened at event #{j}) never closed"),
        });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ObsConfig;

    fn doc(events: Vec<EventRecord>) -> Document {
        Document {
            config: ObsConfig::Trace,
            seed: 0,
            config_hash: 0,
            counters: vec![],
            gauges: vec![],
            hists: vec![],
            events,
        }
    }

    fn ev(name: &str, t_ns: u64, span: Option<u64>) -> EventRecord {
        EventRecord {
            name: name.to_owned(),
            t_ns,
            fields: span
                .map(|id| ("span".to_owned(), Value::U64(id)))
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn clean_trace_has_no_issues() {
        let d = doc(vec![
            ev(names::SCAN_PAIR_BEGIN, 1, Some(1)),
            ev(names::TING_CIRCUIT_BEGIN, 2, Some(2)),
            ev(names::TING_PHASE, 3, None),
            ev(names::TING_CIRCUIT_END, 4, Some(2)),
            ev(names::SCAN_PAIR_END, 5, Some(1)),
        ]);
        assert_eq!(lint(&d), vec![]);
    }

    #[test]
    fn flags_unknown_names_backwards_clock_and_leaks() {
        let d = doc(vec![
            ev(names::TING_RETRY, 5, None),
            ev("ting.bogus", 1, None),
            ev(names::TING_PHASE, 3, None),
            ev(names::TING_CIRCUIT_BEGIN, 6, Some(9)),
        ]);
        let issues = lint(&d);
        assert!(issues.iter().any(|i| i.msg.contains("unknown event name")));
        assert!(issues
            .iter()
            .any(|i| i.msg.contains("clock went backwards")));
        assert!(issues.iter().any(|i| i.msg.contains("never closed")));
    }

    #[test]
    fn flags_mismatched_and_dangling_ends() {
        let d = doc(vec![
            ev(names::SCAN_PAIR_BEGIN, 1, Some(1)),
            ev(names::TING_CIRCUIT_END, 2, Some(1)),
            ev(names::SCAN_PAIR_END, 3, Some(7)),
        ]);
        let issues = lint(&d);
        assert!(issues.iter().any(|i| i.msg.contains("opened it as")));
        assert!(issues.iter().any(|i| i.msg.contains("not open")));
    }
}
