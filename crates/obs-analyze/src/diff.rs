//! Bench diff engine and CI regression gate.
//!
//! Compares two bench baseline documents of the same schema: scan
//! baselines (`ting-bench-scan-v1`, written by `bench --bin
//! perf_baseline`) or oracle serving baselines (`ting-bench-oracle-v1`,
//! written by `bench --bin oracle_load`, whose "phases" are served-RTT
//! distributions rather than wall latencies — equally deterministic for
//! a fixed seed). The
//! gated metrics are the per-phase latency quantiles, which are
//! **virtual-time** measurements: for a fixed seed and config they are
//! bit-deterministic, so the gate has no flakiness budget — any drift
//! beyond tolerance is a real change in the measurement pipeline, not
//! host noise. Wall-clock throughput is reported but never gated.

use crate::json;

/// One phase's quantile summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    pub count: u64,
    pub min_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Bench schemas the diff engine understands. All share the same
/// field shape; they differ in what the phase histograms mean
/// (virtual-time phase latencies vs served-RTT distributions; the
/// oracle v2 schema adds a `publish` phase recording pairs folded per
/// pipeline generation).
pub const KNOWN_SCHEMAS: [&str; 3] = [
    "ting-bench-scan-v1",
    "ting-bench-oracle-v1",
    "ting-bench-oracle-v2",
];

/// A parsed bench baseline document (see [`KNOWN_SCHEMAS`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    pub schema: String,
    pub seed: u64,
    pub config_hash: String,
    pub relays: u64,
    pub samples: u64,
    pub pairs: u64,
    pub measured: u64,
    pub failed: u64,
    pub wall_s: f64,
    pub virtual_s: f64,
    pub pairs_per_wall_s: f64,
    /// `(phase name, stats)` in document order.
    pub phases: Vec<(String, PhaseStats)>,
}

/// Parses a bench baseline document.
pub fn parse_bench(text: &str) -> Result<BenchDoc, String> {
    let v = json::parse(text.trim_end())?;
    let schema = v.get("schema").ok_or("missing schema")?.as_str("schema")?;
    if !KNOWN_SCHEMAS.contains(&schema) {
        return Err(format!("unsupported bench schema {schema:?}"));
    }
    let u = |key: &str| -> Result<u64, String> {
        v.get(key).ok_or(format!("missing {key}"))?.as_u64(key)
    };
    let f = |key: &str| -> Result<f64, String> {
        v.get(key).ok_or(format!("missing {key}"))?.as_f64(key)
    };
    let mut phases = Vec::new();
    for (name, p) in v.get("phases").ok_or("missing phases")?.as_obj("phases")? {
        let pu = |key: &str| -> Result<u64, String> {
            p.get(key)
                .ok_or(format!("phase {name}: missing {key}"))?
                .as_u64(key)
        };
        phases.push((
            name.clone(),
            PhaseStats {
                count: pu("count")?,
                min_us: pu("min_us")?,
                p50_us: pu("p50_us")?,
                p90_us: pu("p90_us")?,
                p99_us: pu("p99_us")?,
                max_us: pu("max_us")?,
            },
        ));
    }
    Ok(BenchDoc {
        schema: schema.to_owned(),
        seed: u("seed")?,
        config_hash: v
            .get("config_hash")
            .ok_or("missing config_hash")?
            .as_str("config_hash")?
            .to_owned(),
        relays: u("relays")?,
        samples: u("samples")?,
        pairs: u("pairs")?,
        measured: u("measured")?,
        failed: u("failed")?,
        wall_s: f("wall_s")?,
        virtual_s: f("virtual_s")?,
        pairs_per_wall_s: f("pairs_per_wall_s")?,
        phases,
    })
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// `build.p50_us`, `probe.count`, …
    pub metric: String,
    pub base: u64,
    pub current: u64,
    /// Relative change, `(current − base) / base`.
    pub delta: f64,
    /// Whether this line trips the gate at the configured tolerance.
    pub regressed: bool,
}

/// The diff verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
    /// Set when the runs are not comparable (different seed or config).
    pub incomparable: Option<String>,
    pub tolerance: f64,
}

impl DiffReport {
    /// True when the gate should fail the build.
    pub fn failed(&self) -> bool {
        self.incomparable.is_some() || self.lines.iter().any(|l| l.regressed)
    }

    /// Human-readable rendering, one line per metric.
    pub fn render(&self, base: &BenchDoc, current: &BenchDoc) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# bench diff: seed={} tolerance={:.1}%",
            base.seed,
            self.tolerance * 100.0
        );
        if let Some(why) = &self.incomparable {
            let _ = writeln!(out, "INCOMPARABLE: {why}");
        }
        for l in &self.lines {
            let _ = writeln!(
                out,
                "{:>9} {:<16} base={:<10} current={:<10} delta={:+.2}%",
                if l.regressed { "REGRESSED" } else { "ok" },
                l.metric,
                l.base,
                l.current,
                l.delta * 100.0
            );
        }
        let _ = writeln!(
            out,
            "# wall (informational): base={:.3}s current={:.3}s throughput {:.1} -> {:.1} pairs/s",
            base.wall_s, current.wall_s, base.pairs_per_wall_s, current.pairs_per_wall_s
        );
        out
    }
}

/// Diffs `current` against `base`. Phase quantiles (`p50/p90/p99`)
/// regress when `current` exceeds `base` by more than `tolerance`
/// (relative) *and* by more than `abs_floor_us` (absolute — log-bucket
/// granularity makes tiny relative shifts meaningless on microsecond
/// phases). Phase counts regress on any drift beyond tolerance in
/// either direction: losing probes is as much a regression as gaining
/// latency.
pub fn diff(base: &BenchDoc, current: &BenchDoc, tolerance: f64) -> DiffReport {
    let abs_floor_us = 50;
    let mut report = DiffReport {
        lines: Vec::new(),
        incomparable: None,
        tolerance,
    };
    if base.schema != current.schema {
        report.incomparable = Some(format!(
            "schema mismatch: base {:?} vs current {:?}",
            base.schema, current.schema
        ));
        return report;
    }
    if base.seed != current.seed {
        report.incomparable = Some(format!(
            "seed mismatch: base {} vs current {}",
            base.seed, current.seed
        ));
    } else if base.config_hash != current.config_hash {
        report.incomparable = Some(format!(
            "config mismatch: base {} vs current {}",
            base.config_hash, current.config_hash
        ));
    }
    for (name, b) in &base.phases {
        let Some((_, c)) = current.phases.iter().find(|(n, _)| n == name) else {
            report.incomparable = Some(format!("phase {name:?} missing from current run"));
            continue;
        };
        let rel = |b: u64, c: u64| {
            if b == 0 {
                if c == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (c as f64 - b as f64) / b as f64
            }
        };
        let count_delta = rel(b.count, c.count);
        report.lines.push(DiffLine {
            metric: format!("{name}.count"),
            base: b.count,
            current: c.count,
            delta: count_delta,
            regressed: count_delta.abs() > tolerance,
        });
        for (metric, bv, cv) in [
            ("p50_us", b.p50_us, c.p50_us),
            ("p90_us", b.p90_us, c.p90_us),
            ("p99_us", b.p99_us, c.p99_us),
        ] {
            let delta = rel(bv, cv);
            report.lines.push(DiffLine {
                metric: format!("{name}.{metric}"),
                base: bv,
                current: cv,
                delta,
                regressed: delta > tolerance && cv.saturating_sub(bv) > abs_floor_us,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(p50: u64) -> BenchDoc {
        BenchDoc {
            schema: "ting-bench-scan-v1".into(),
            seed: 2015,
            config_hash: "aa".into(),
            relays: 16,
            samples: 2,
            pairs: 120,
            measured: 118,
            failed: 2,
            wall_s: 1.0,
            virtual_s: 100.0,
            pairs_per_wall_s: 120.0,
            phases: vec![(
                "build".into(),
                PhaseStats {
                    count: 300,
                    min_us: 1000,
                    p50_us: p50,
                    p90_us: 9000,
                    p99_us: 12000,
                    max_us: 15000,
                },
            )],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let r = diff(&bench(5000), &bench(5000), 0.10);
        assert!(!r.failed(), "{:?}", r.lines);
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let r = diff(&bench(5000), &bench(5800), 0.10);
        assert!(r.failed());
        assert!(r
            .lines
            .iter()
            .any(|l| l.metric == "build.p50_us" && l.regressed));
    }

    #[test]
    fn speedup_and_small_drift_pass() {
        assert!(!diff(&bench(5000), &bench(4000), 0.10).failed());
        assert!(!diff(&bench(5000), &bench(5400), 0.10).failed());
    }

    #[test]
    fn seed_mismatch_is_incomparable() {
        let mut other = bench(5000);
        other.seed = 1;
        assert!(diff(&bench(5000), &other, 0.10).failed());
    }

    #[test]
    fn parses_the_perf_baseline_shape() {
        let text = "{\"schema\":\"ting-bench-scan-v1\",\"seed\":2015,\
                    \"config_hash\":\"00aabbccddeeff00\",\"relays\":16,\"samples\":2,\
                    \"reps\":1,\"pairs\":120,\"measured\":118,\"failed\":2,\
                    \"wall_s\":1.5,\"virtual_s\":99.25,\"pairs_per_wall_s\":80.0,\
                    \"phases\":{\"build\":{\"count\":300,\"min_us\":1,\"p50_us\":2,\
                    \"p90_us\":3,\"p99_us\":4,\"max_us\":5}}}\n";
        let doc = parse_bench(text).unwrap();
        assert_eq!(doc.seed, 2015);
        assert_eq!(doc.phases.len(), 1);
        assert_eq!(doc.phases[0].1.p99_us, 4);
    }

    #[test]
    fn parses_the_oracle_load_shape() {
        let text = "{\"schema\":\"ting-bench-oracle-v1\",\"seed\":2015,\
                    \"config_hash\":\"00aabbccddeeff00\",\"relays\":300,\"samples\":16,\
                    \"reps\":3,\"pairs\":2030000,\"measured\":2030000,\"failed\":0,\
                    \"wall_s\":0.41,\"virtual_s\":0.0,\"pairs_per_wall_s\":7000000.0,\
                    \"phases\":{\"point\":{\"count\":2000000,\"min_us\":1013,\"p50_us\":151551,\
                    \"p90_us\":270335,\"p99_us\":300000,\"max_us\":300000}}}\n";
        let doc = parse_bench(text).unwrap();
        assert_eq!(doc.schema, "ting-bench-oracle-v1");
        assert_eq!(doc.phases[0].0, "point");
        // The v2 schema (publish phase added) parses under the same
        // shape; an unknown future schema still refuses.
        assert!(parse_bench(&text.replace("oracle-v1", "oracle-v2")).is_ok());
        assert!(parse_bench(&text.replace("oracle-v1", "oracle-v3")).is_err());
    }

    #[test]
    fn schema_mismatch_is_incomparable() {
        let mut other = bench(5000);
        other.schema = "ting-bench-oracle-v1".into();
        let report = diff(&bench(5000), &other, 0.10);
        assert!(report.failed());
        assert!(report.incomparable.unwrap().contains("schema mismatch"));
    }
}
