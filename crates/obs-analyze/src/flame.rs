//! Folded-stack flamegraph output (the `inferno` / `flamegraph.pl`
//! input format: `frame;frame;frame value`, one stack per line).
//!
//! Values are self-time **nanoseconds of virtual time**, so the graph
//! profiles the simulated measurement pipeline, not the host. Lines
//! are sorted, so equal traces fold to byte-equal output.

use crate::tree::{circuit_self_times, pair_self_times, PairNode, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the trace as folded stacks.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (i, round) in trace.rounds.iter().enumerate() {
        let prefix = format!("scan;round-{i}");
        for pair in &round.pairs {
            fold_pair(&mut stacks, &prefix, pair);
        }
    }
    for pair in &trace.orphan_pairs {
        fold_pair(&mut stacks, "scan;raw", pair);
    }
    for c in &trace.orphan_circuits {
        let [b, s, smp] = circuit_self_times(c);
        let prefix = format!("scan;raw;circuit-{}-a{}", c.kind, c.attempt);
        for (label, ns) in [("build", b), ("stream", s), ("sample", smp)] {
            if ns > 0 {
                *stacks.entry(format!("{prefix};{label}")).or_insert(0) += ns;
            }
        }
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

fn fold_pair(stacks: &mut BTreeMap<String, u64>, prefix: &str, pair: &PairNode) {
    let pair_frame = format!("{prefix};pair-{}-{}@{}", pair.a, pair.b, pair.vantage);
    let st = pair_self_times(pair);
    for (label, ns) in [("setup", st[0]), ("wait", st[4]), ("finalize", st[5])] {
        if ns > 0 {
            *stacks.entry(format!("{pair_frame};{label}")).or_insert(0) += ns;
        }
    }
    for c in &pair.circuits {
        let [b, s, smp] = circuit_self_times(c);
        let circuit_frame = format!("{pair_frame};circuit-{}-a{}", c.kind, c.attempt);
        for (label, ns) in [("build", b), ("stream", s), ("sample", smp)] {
            if ns > 0 {
                *stacks
                    .entry(format!("{circuit_frame};{label}"))
                    .or_insert(0) += ns;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{CircuitNode, PhasePoint, RoundNode};

    #[test]
    fn folds_a_pair_into_sorted_stacks() {
        let c = CircuitNode {
            id: 2,
            kind: "full".into(),
            path: vec![1, 5, 6, 2],
            attempt: 1,
            vantage: 0,
            t0: 20,
            t1: 80,
            outcome: "ok".into(),
            phases: vec![
                PhasePoint {
                    phase: "build".into(),
                    t_ns: 50,
                    dur_us: 0,
                },
                PhasePoint {
                    phase: "stream".into(),
                    t_ns: 60,
                    dur_us: 0,
                },
            ],
            errors: vec![],
        };
        let trace = Trace {
            rounds: vec![RoundNode {
                id: 1,
                t0: 0,
                t1: 100,
                planned: 1,
                measured: 1,
                failed: 0,
                pairs: vec![PairNode {
                    id: 3,
                    a: 5,
                    b: 6,
                    vantage: 0,
                    t0: 10,
                    t1: 100,
                    outcome: "accepted".into(),
                    circuits: vec![c],
                }],
            }],
            orphan_pairs: vec![],
            orphan_circuits: vec![],
        };
        let folded = folded_stacks(&trace);
        let expected = "\
scan;round-0;pair-5-6@0;circuit-full-a1;build 30
scan;round-0;pair-5-6@0;circuit-full-a1;sample 20
scan;round-0;pair-5-6@0;circuit-full-a1;stream 10
scan;round-0;pair-5-6@0;finalize 20
scan;round-0;pair-5-6@0;setup 10
";
        assert_eq!(folded, expected);
        // Total folded time equals the pair span's duration.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 90);
    }
}
