//! Trace analysis and profiling for `ting-obs-v1` exports.
//!
//! The `obs` layer makes every seeded run export a byte-deterministic
//! JSONL trace; this crate is the consumer side — the `ting-prof` CLI
//! and the library underneath it:
//!
//! * [`parse`] — a strict parser whose output re-renders byte-identical
//!   through `obs::Document::render_jsonl` (property-tested);
//! * [`lint`] — structural validation against `obs::names::REGISTRY`:
//!   unknown events, non-monotonic clocks, leaked/mismatched spans;
//! * [`tree`] — span-tree reconstruction, exact self-time attribution
//!   (per-pair partitions telescope to the span duration), round
//!   critical paths;
//! * [`flame`] — inferno-compatible folded-stack flamegraph output;
//! * [`attrib`] — per-relay forwarding-delay estimates (`F̂_i`) and
//!   failure/quarantine involvement;
//! * [`diff`] — the `BENCH_scan.json` regression gate CI runs, built on
//!   deterministic virtual-time phase quantiles;
//! * [`report`] — the deterministic human-readable profile;
//! * [`lineage`] — a served pair's causal chain: probe → drain →
//!   coalesce folds → first serving generation, plus owning-shard
//!   outages (the `ting-prof lineage` walk);
//! * [`slo`] — SLO breach windows and the `slo.*` gauge family (the
//!   `ting-prof slo` report and CI's no-fault staleness gate).

pub mod attrib;
pub mod diff;
pub mod flame;
pub mod json;
pub mod lineage;
pub mod lint;
pub mod parse;
pub mod report;
pub mod slo;
pub mod tree;

pub use attrib::{per_relay, RelayAttribution};
pub use diff::{diff, parse_bench, BenchDoc, DiffReport};
pub use flame::folded_stacks;
pub use lineage::{render_lineage, trace_pair, LineageChain};
pub use lint::{lint, LintIssue};
pub use parse::{parse_document, ParseError};
pub use slo::{breached, breaches, render_slo, Breach};
pub use tree::{build, critical_path, pair_self_times, Trace};
