//! Span-tree reconstruction and exact self-time attribution.
//!
//! A trace's span events rebuild into rounds → pair measurements →
//! circuit attempts. Circuit-to-pair attachment needs no explicit
//! parent pointer: each vantage has at most one pair in flight, so an
//! open circuit belongs to the open pair on its vantage. Phase and
//! error points attach to their circuit by the explicit `circuit`
//! field the emitters stamp.
//!
//! Self-time attribution partitions every pair span **exactly** — all
//! arithmetic is on the integer `t_ns` stamps, and each pair's labeled
//! self-times telescope to `t1 − t0` with no remainder. That exactness
//! is a tested acceptance criterion, not an aspiration.

use crate::lint::span_id;
use obs::names;
use obs::{Document, EventRecord, Value};
use std::collections::HashMap;

/// One `ting.phase` point inside a circuit attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePoint {
    /// `build`, `stream`, or `probe`.
    pub phase: String,
    pub t_ns: u64,
    pub dur_us: u64,
}

/// One circuit attempt (`ting.circuit` span).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitNode {
    pub id: u64,
    /// `full`, `x`, `y`, or `leg`.
    pub kind: String,
    /// Node ids along the path, first hop first.
    pub path: Vec<u32>,
    pub attempt: u64,
    pub vantage: u64,
    pub t0: u64,
    pub t1: u64,
    /// `ok` or a `TingError` code.
    pub outcome: String,
    pub phases: Vec<PhasePoint>,
    /// `ting.error` codes attributed to this attempt.
    pub errors: Vec<String>,
}

/// One pair measurement (`scan.pair` span).
#[derive(Debug, Clone, PartialEq)]
pub struct PairNode {
    pub id: u64,
    pub a: u32,
    pub b: u32,
    pub vantage: u64,
    pub t0: u64,
    pub t1: u64,
    /// `accepted`, `rejected`, `ok`, or an error code.
    pub outcome: String,
    pub circuits: Vec<CircuitNode>,
}

/// One scan round (`scan.round` span).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundNode {
    pub id: u64,
    pub t0: u64,
    pub t1: u64,
    pub planned: u64,
    pub measured: u64,
    pub failed: u64,
    pub pairs: Vec<PairNode>,
}

/// The reconstructed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub rounds: Vec<RoundNode>,
    /// Pairs measured outside any round span (raw engine runs).
    pub orphan_pairs: Vec<PairNode>,
    /// Circuits sampled outside any pair span (direct `sample_circuit`
    /// calls).
    pub orphan_circuits: Vec<CircuitNode>,
}

/// The labels a pair span's time is partitioned into.
pub const SELF_TIME_LABELS: [&str; 6] = ["setup", "build", "stream", "sample", "wait", "finalize"];

fn get_u64(ev: &EventRecord, key: &str) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::U64(n)) if k2 == key => Some(*n),
        _ => None,
    })
}

fn get_str<'a>(ev: &'a EventRecord, key: &str) -> Option<&'a str> {
    ev.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (k2, Value::Str(s)) if k2 == key => Some(s.as_str()),
        _ => None,
    })
}

/// Rebuilds the span forest from a document's event log. The document
/// should lint clean first ([`crate::lint::lint`]); structural defects
/// surface here as errors.
pub fn build(doc: &Document) -> Result<Trace, String> {
    let mut trace = Trace::default();
    let mut open_round: Option<RoundNode> = None;
    let mut open_pairs: HashMap<u64, PairNode> = HashMap::new();
    let mut open_circuits: HashMap<u64, CircuitNode> = HashMap::new();

    for (i, ev) in doc.events.iter().enumerate() {
        match ev.name.as_str() {
            names::SCAN_ROUND_BEGIN => {
                if open_round.is_some() {
                    return Err(format!("event #{i}: nested scan rounds"));
                }
                open_round = Some(RoundNode {
                    id: span_id(ev).ok_or_else(|| format!("event #{i}: round without span id"))?,
                    t0: ev.t_ns,
                    t1: ev.t_ns,
                    planned: get_u64(ev, "planned").unwrap_or(0),
                    measured: 0,
                    failed: 0,
                    pairs: Vec::new(),
                });
            }
            names::SCAN_ROUND_END => {
                let mut round = open_round
                    .take()
                    .ok_or_else(|| format!("event #{i}: round end without begin"))?;
                round.t1 = ev.t_ns;
                round.measured = get_u64(ev, "measured").unwrap_or(0);
                round.failed = get_u64(ev, "failed").unwrap_or(0);
                trace.rounds.push(round);
            }
            names::SCAN_PAIR_BEGIN => {
                let id = span_id(ev).ok_or_else(|| format!("event #{i}: pair without span id"))?;
                open_pairs.insert(
                    id,
                    PairNode {
                        id,
                        a: get_u64(ev, "a").unwrap_or(0) as u32,
                        b: get_u64(ev, "b").unwrap_or(0) as u32,
                        vantage: get_u64(ev, "vantage").unwrap_or(0),
                        t0: ev.t_ns,
                        t1: ev.t_ns,
                        outcome: String::new(),
                        circuits: Vec::new(),
                    },
                );
            }
            names::SCAN_PAIR_END => {
                let id = span_id(ev).ok_or_else(|| format!("event #{i}: pair end without id"))?;
                let mut pair = open_pairs
                    .remove(&id)
                    .ok_or_else(|| format!("event #{i}: pair end for unopened span {id}"))?;
                pair.t1 = ev.t_ns;
                pair.outcome = get_str(ev, "outcome").unwrap_or("").to_owned();
                match &mut open_round {
                    Some(round) => round.pairs.push(pair),
                    None => trace.orphan_pairs.push(pair),
                }
            }
            names::TING_CIRCUIT_BEGIN => {
                let id =
                    span_id(ev).ok_or_else(|| format!("event #{i}: circuit without span id"))?;
                let path = get_str(ev, "path")
                    .unwrap_or("")
                    .split('-')
                    .filter_map(|t| t.parse().ok())
                    .collect();
                open_circuits.insert(
                    id,
                    CircuitNode {
                        id,
                        kind: get_str(ev, "kind").unwrap_or("").to_owned(),
                        path,
                        attempt: get_u64(ev, "attempt").unwrap_or(0),
                        vantage: get_u64(ev, "vantage").unwrap_or(0),
                        t0: ev.t_ns,
                        t1: ev.t_ns,
                        outcome: String::new(),
                        phases: Vec::new(),
                        errors: Vec::new(),
                    },
                );
            }
            names::TING_CIRCUIT_END => {
                let id =
                    span_id(ev).ok_or_else(|| format!("event #{i}: circuit end without id"))?;
                let mut c = open_circuits
                    .remove(&id)
                    .ok_or_else(|| format!("event #{i}: circuit end for unopened span {id}"))?;
                c.t1 = ev.t_ns;
                c.outcome = get_str(ev, "outcome").unwrap_or("").to_owned();
                // The owning pair is the open pair on this vantage.
                let owner = open_pairs.values_mut().find(|p| p.vantage == c.vantage);
                match owner {
                    Some(pair) => pair.circuits.push(c),
                    None => trace.orphan_circuits.push(c),
                }
            }
            names::TING_PHASE => {
                if let (Some(circuit), Some(phase)) = (get_u64(ev, "circuit"), get_str(ev, "phase"))
                {
                    if let Some(c) = open_circuits.get_mut(&circuit) {
                        c.phases.push(PhasePoint {
                            phase: phase.to_owned(),
                            t_ns: ev.t_ns,
                            dur_us: get_u64(ev, "dur_us").unwrap_or(0),
                        });
                    }
                }
            }
            names::TING_ERROR => {
                if let (Some(circuit), Some(code)) = (get_u64(ev, "circuit"), get_str(ev, "code")) {
                    if let Some(c) = open_circuits.get_mut(&circuit) {
                        c.errors.push(code.to_owned());
                    }
                }
            }
            _ => {}
        }
    }
    if open_round.is_some() || !open_pairs.is_empty() || !open_circuits.is_empty() {
        return Err(format!(
            "unclosed spans at end of trace: round={} pairs={} circuits={}",
            open_round.is_some(),
            open_pairs.len(),
            open_circuits.len()
        ));
    }
    Ok(trace)
}

/// Partitions one circuit attempt's `[t0, t1]` into build/stream/sample
/// nanoseconds. Phase *completion* events mark the boundaries: build
/// covers `[t0, t_build]`, stream `(t_build, t_stream]`, sampling the
/// rest. A phase that never completed (the attempt failed inside it)
/// absorbs the remainder, so the three parts always sum to `t1 − t0`.
pub fn circuit_self_times(c: &CircuitNode) -> [u64; 3] {
    let t_build = c
        .phases
        .iter()
        .find(|p| p.phase == "build")
        .map(|p| p.t_ns.clamp(c.t0, c.t1));
    let t_stream = c
        .phases
        .iter()
        .find(|p| p.phase == "stream")
        .map(|p| p.t_ns.clamp(c.t0, c.t1));
    match (t_build, t_stream) {
        (None, _) => [c.t1 - c.t0, 0, 0],
        (Some(tb), None) => [tb - c.t0, c.t1 - tb, 0],
        (Some(tb), Some(ts)) => [tb - c.t0, ts - tb, c.t1 - ts],
    }
}

/// Partitions one pair span into the six [`SELF_TIME_LABELS`] buckets
/// (ns). Time before the first circuit is `setup`, gaps between circuit
/// attempts are `wait` (retry backoff, teardown), time after the last
/// circuit is `finalize` (validation, cache bookkeeping). The six
/// buckets sum to exactly `t1 − t0`.
pub fn pair_self_times(p: &PairNode) -> [u64; 6] {
    let mut out = [0u64; 6];
    let mut cursor = p.t0;
    for (i, c) in p.circuits.iter().enumerate() {
        let gap = c.t0.saturating_sub(cursor);
        if i == 0 {
            out[0] += gap; // setup
        } else {
            out[4] += gap; // wait
        }
        let [b, s, smp] = circuit_self_times(c);
        out[1] += b;
        out[2] += s;
        out[3] += smp;
        cursor = c.t1;
    }
    out[5] = p.t1.saturating_sub(cursor); // finalize
    if p.circuits.is_empty() {
        out[0] = p.t1 - p.t0;
        out[5] = 0;
    }
    out
}

/// One segment of a round's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritSegment {
    /// `pair:a-b@v` or `idle`.
    pub label: String,
    pub t0: u64,
    pub t1: u64,
}

/// The round's critical path: walking backward from the round's end,
/// each step picks the latest-finishing pair measurement that ends at
/// or before the current frontier, then jumps to its start. Stretches
/// no pair covers are `idle` (planning, inter-pair scheduling). The
/// segments tile `[round.t0, round.t1]` exactly, latest first reversed
/// to chronological order.
pub fn critical_path(round: &RoundNode) -> Vec<CritSegment> {
    let mut segments = Vec::new();
    let mut frontier = round.t1;
    while let Some(p) = round
        .pairs
        .iter()
        .filter(|p| p.t1 <= frontier && p.t1 > round.t0)
        .max_by_key(|p| (p.t1, p.t0, p.id))
    {
        if p.t1 < frontier {
            segments.push(CritSegment {
                label: "idle".to_owned(),
                t0: p.t1,
                t1: frontier,
            });
        }
        let t0 = p.t0.max(round.t0);
        segments.push(CritSegment {
            label: format!("pair:{}-{}@{}", p.a, p.b, p.vantage),
            t0,
            t1: p.t1,
        });
        frontier = t0;
        if frontier == round.t0 {
            break;
        }
    }
    if frontier > round.t0 {
        segments.push(CritSegment {
            label: "idle".to_owned(),
            t0: round.t0,
            t1: frontier,
        });
    }
    segments.reverse();
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(t0: u64, t1: u64, phases: &[(&str, u64)]) -> CircuitNode {
        CircuitNode {
            id: 1,
            kind: "full".into(),
            path: vec![1, 2, 3, 4],
            attempt: 1,
            vantage: 0,
            t0,
            t1,
            outcome: "ok".into(),
            phases: phases
                .iter()
                .map(|&(phase, t_ns)| PhasePoint {
                    phase: phase.into(),
                    t_ns,
                    dur_us: 0,
                })
                .collect(),
            errors: vec![],
        }
    }

    #[test]
    fn circuit_partition_is_exact_in_every_failure_mode() {
        // Completed: build ends at 30, stream at 45.
        assert_eq!(
            circuit_self_times(&circuit(10, 100, &[("build", 30), ("stream", 45)])),
            [20, 15, 55]
        );
        // Build never completed.
        assert_eq!(circuit_self_times(&circuit(10, 100, &[])), [90, 0, 0]);
        // Stream never completed.
        assert_eq!(
            circuit_self_times(&circuit(10, 100, &[("build", 30)])),
            [20, 70, 0]
        );
    }

    #[test]
    fn pair_partition_sums_to_span_duration() {
        let p = PairNode {
            id: 9,
            a: 1,
            b: 2,
            vantage: 0,
            t0: 100,
            t1: 1000,
            outcome: "accepted".into(),
            circuits: vec![
                circuit(120, 300, &[("build", 200), ("stream", 240)]),
                circuit(350, 900, &[("build", 400)]),
            ],
        };
        let st = pair_self_times(&p);
        // setup 20, wait 50, finalize 100; circuits cover the rest.
        assert_eq!(st[0], 20);
        assert_eq!(st[4], 50);
        assert_eq!(st[5], 100);
        assert_eq!(st.iter().sum::<u64>(), 900);
    }

    #[test]
    fn critical_path_tiles_the_round() {
        let pair = |a: u32, v: u64, t0: u64, t1: u64| PairNode {
            id: u64::from(a),
            a,
            b: a + 1,
            vantage: v,
            t0,
            t1,
            outcome: "accepted".into(),
            circuits: vec![],
        };
        let round = RoundNode {
            id: 1,
            t0: 0,
            t1: 100,
            planned: 3,
            measured: 3,
            failed: 0,
            pairs: vec![pair(1, 0, 5, 40), pair(3, 1, 10, 90), pair(5, 0, 45, 70)],
        };
        let path = critical_path(&round);
        let labels: Vec<&str> = path.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["idle", "pair:3-4@1", "idle"]);
        // Exact tiling: contiguous, spanning [t0, t1].
        assert_eq!(path.first().unwrap().t0, 0);
        assert_eq!(path.last().unwrap().t1, 100);
        for w in path.windows(2) {
            assert_eq!(w[0].t1, w[1].t0);
        }
    }
}
