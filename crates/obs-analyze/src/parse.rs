//! Strict parser for `ting-obs-v1` JSONL exports.
//!
//! The exporter (`obs::Document::render_jsonl`) writes a rigid
//! document: meta header, counters, gauges, histograms (each block in
//! strictly increasing name order), then events in emission order, with
//! a fixed key order on every line. This parser accepts exactly that
//! shape and nothing looser — wrong section order, out-of-order names,
//! missing or extra keys are all errors, so a trace that parses is
//! guaranteed to re-render byte-identically through the same
//! `render_jsonl` the exporter used.

use crate::json::{self, Json};
use obs::{Document, EventRecord, HistRecord, ObsConfig, Value};
use obs::{HistSummary, FORMAT};

/// A parse failure, tagged with its 1-based document line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parses a full `ting-obs-v1` JSONL document.
pub fn parse_document(text: &str) -> Result<Document, ParseError> {
    let mut lines = text.lines().enumerate();
    let err = |line: usize, msg: String| ParseError {
        line: line + 1,
        msg,
    };

    let (meta_no, meta_line) = lines
        .next()
        .ok_or_else(|| err(0, "empty document".into()))?;
    let meta = json::parse(meta_line).map_err(|e| err(meta_no, e))?;
    let (config, seed, config_hash) = parse_meta(&meta).map_err(|e| err(meta_no, e))?;

    let mut doc = Document {
        config,
        seed,
        config_hash,
        counters: Vec::new(),
        gauges: Vec::new(),
        hists: Vec::new(),
        events: Vec::new(),
    };

    // Section order: counters, gauges, hists, events — never backwards.
    let mut section = 0usize;
    for (no, line) in lines {
        if line.is_empty() {
            return Err(err(no, "blank line inside document".into()));
        }
        let v = json::parse(line).map_err(|e| err(no, e))?;
        let fields = v.as_obj("line").map_err(|e| err(no, e))?;
        let head = fields
            .first()
            .map(|(k, _)| k.as_str())
            .ok_or_else(|| err(no, "empty object".into()))?;
        let this = match head {
            "counter" => 1,
            "gauge" => 2,
            "hist" => 3,
            "event" => 4,
            other => return Err(err(no, format!("unknown record type {other:?}"))),
        };
        if this < section {
            return Err(err(no, format!("{head} record after a later section")));
        }
        section = this;
        match this {
            1 => {
                let (name, value) = parse_named_value(fields, "counter")
                    .and_then(|(n, v)| Ok((n, v.as_u64("counter value")?)))
                    .map_err(|e| err(no, e))?;
                check_order(doc.counters.last().map(|(n, _)| n.as_str()), &name)
                    .map_err(|e| err(no, e))?;
                doc.counters.push((name, value));
            }
            2 => {
                let (name, value) = parse_named_value(fields, "gauge")
                    .and_then(|(n, v)| Ok((n, parse_i64(v)?)))
                    .map_err(|e| err(no, e))?;
                check_order(doc.gauges.last().map(|(n, _)| n.as_str()), &name)
                    .map_err(|e| err(no, e))?;
                doc.gauges.push((name, value));
            }
            3 => {
                let h = parse_hist(fields).map_err(|e| err(no, e))?;
                check_order(doc.hists.last().map(|h| h.name.as_str()), &h.name)
                    .map_err(|e| err(no, e))?;
                doc.hists.push(h);
            }
            _ => {
                let ev = parse_event(fields).map_err(|e| err(no, e))?;
                doc.events.push(ev);
            }
        }
    }
    Ok(doc)
}

fn parse_meta(v: &Json) -> Result<(ObsConfig, u64, u64), String> {
    let outer = v.as_obj("meta line")?;
    let [(key, meta)] = outer else {
        return Err("meta line must hold exactly one \"meta\" object".into());
    };
    if key != "meta" {
        return Err(format!("first line must be the meta header, got {key:?}"));
    }
    let fields = meta.as_obj("meta")?;
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["format", "mode", "seed", "config_hash"] {
        return Err(format!(
            "meta keys must be format/mode/seed/config_hash, got {keys:?}"
        ));
    }
    let format = fields[0].1.as_str("format")?;
    if format != FORMAT {
        return Err(format!("unsupported format {format:?} (want {FORMAT:?})"));
    }
    let config = match fields[1].1.as_str("mode")? {
        "off" => ObsConfig::Off,
        "metrics" => ObsConfig::Metrics,
        "trace" => ObsConfig::Trace,
        other => return Err(format!("unknown mode {other:?}")),
    };
    let seed = fields[2].1.as_u64("seed")?;
    let hash_text = fields[3].1.as_str("config_hash")?;
    if hash_text.len() != 16 || !hash_text.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("config_hash {hash_text:?} is not 16 hex digits"));
    }
    let config_hash =
        u64::from_str_radix(hash_text, 16).map_err(|e| format!("config_hash: {e}"))?;
    Ok((config, seed, config_hash))
}

/// Parses a `{"<kind>":name,"value":v}` line.
fn parse_named_value<'a>(
    fields: &'a [(String, Json)],
    kind: &str,
) -> Result<(String, &'a Json), String> {
    let [(k0, name), (k1, value)] = fields else {
        return Err(format!("{kind} line must have exactly name and value"));
    };
    if k0 != kind || k1 != "value" {
        return Err(format!("{kind} line keys must be [{kind:?}, \"value\"]"));
    }
    Ok((name.as_str(kind)?.to_owned(), value))
}

fn parse_i64(v: &Json) -> Result<i64, String> {
    match v {
        Json::Num(raw) => raw
            .parse::<i64>()
            .map_err(|_| format!("gauge value {raw:?} is not an i64")),
        other => Err(format!("gauge value must be a number, got {other:?}")),
    }
}

fn check_order(prev: Option<&str>, name: &str) -> Result<(), String> {
    if let Some(p) = prev {
        if p >= name {
            return Err(format!(
                "name {name:?} not in strictly increasing order after {p:?}"
            ));
        }
    }
    Ok(())
}

fn parse_hist(fields: &[(String, Json)]) -> Result<HistRecord, String> {
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    let summarized = keys
        == [
            "hist", "count", "min", "p50", "p90", "p99", "max", "buckets",
        ];
    if !summarized && keys != ["hist", "count", "buckets"] {
        return Err(format!("unexpected hist keys {keys:?}"));
    }
    let name = fields[0].1.as_str("hist name")?.to_owned();
    let count = fields[1].1.as_u64("hist count")?;
    if summarized != (count > 0) {
        return Err(format!(
            "hist {name:?}: summary present iff count > 0 (count = {count})"
        ));
    }
    let summary = if summarized {
        Some(HistSummary {
            min: fields[2].1.as_u64("min")?,
            p50: fields[3].1.as_u64("p50")?,
            p90: fields[4].1.as_u64("p90")?,
            p99: fields[5].1.as_u64("p99")?,
            max: fields[6].1.as_u64("max")?,
        })
    } else {
        None
    };
    let buckets_json = &fields.last().unwrap().1;
    let Json::Arr(items) = buckets_json else {
        return Err(format!("hist {name:?}: buckets must be an array"));
    };
    let mut buckets = Vec::with_capacity(items.len());
    for item in items {
        let Json::Arr(triple) = item else {
            return Err(format!("hist {name:?}: bucket must be [lo,hi,n]"));
        };
        let [lo, hi, n] = &triple[..] else {
            return Err(format!("hist {name:?}: bucket must have 3 entries"));
        };
        buckets.push((
            lo.as_u64("bucket lo")?,
            hi.as_u64("bucket hi")?,
            n.as_u64("bucket n")?,
        ));
    }
    Ok(HistRecord {
        name,
        count,
        summary,
        buckets,
    })
}

fn parse_event(fields: &[(String, Json)]) -> Result<EventRecord, String> {
    if fields.len() < 2 || fields[0].0 != "event" || fields[1].0 != "t_ns" {
        return Err("event line must start with event name and t_ns".into());
    }
    let name = fields[0].1.as_str("event name")?.to_owned();
    let t_ns = fields[1].1.as_u64("t_ns")?;
    let mut out = Vec::with_capacity(fields.len() - 2);
    for (key, v) in &fields[2..] {
        out.push((key.clone(), field_value(v)?));
    }
    Ok(EventRecord {
        name,
        t_ns,
        fields: out,
    })
}

/// Maps a JSON field value back to the `obs::Value` that renders to the
/// same bytes. A number token is classified by shape: `u64` first, then
/// `i64`, then `f64` — an integral float like `1.0` rendered as `"1"`
/// comes back as `U64(1)`, which re-renders to the same `"1"`, keeping
/// the byte contract. `null` is the rendering of every non-finite
/// float.
fn field_value(v: &Json) -> Result<Value, String> {
    Ok(match v {
        Json::Null => Value::F64(f64::NAN),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Num(raw) => number_value(raw)?,
        other => return Err(format!("unsupported event field value {other:?}")),
    })
}

fn number_value(raw: &str) -> Result<Value, String> {
    if raw == "-0" {
        // `-0` only arises from `Display` of the float negative zero;
        // classifying it as I64(0) would re-render as "0".
        return Ok(Value::F64(-0.0));
    }
    if raw.contains(['.', 'e', 'E']) {
        return raw
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("bad float {raw:?}"));
    }
    if let Ok(n) = raw.parse::<u64>() {
        return Ok(Value::U64(n));
    }
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(Value::I64(n));
    }
    // A digit string wider than 64 bits: only `Display` of a large
    // float prints one, and shortest-roundtrip parsing recovers it.
    raw.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| format!("bad number {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"meta\":{\"format\":\"ting-obs-v1\",\"mode\":\"trace\",\
                          \"seed\":7,\"config_hash\":\"00000000000000aa\"}}";

    #[test]
    fn parses_and_rerenders_a_minimal_document() {
        let text = format!(
            "{HEADER}\n\
             {{\"counter\":\"a.b\",\"value\":3}}\n\
             {{\"gauge\":\"g\",\"value\":-4}}\n\
             {{\"hist\":\"h\",\"count\":1,\"min\":5,\"p50\":5,\"p90\":5,\"p99\":5,\"max\":5,\
             \"buckets\":[[5,5,1]]}}\n\
             {{\"event\":\"ting.phase\",\"t_ns\":10,\"phase\":\"build\",\"dur_us\":12,\
             \"x\":0.5,\"bad\":null}}\n"
        );
        let doc = parse_document(&text).unwrap();
        assert_eq!(doc.seed, 7);
        assert_eq!(doc.config_hash, 0xaa);
        assert_eq!(doc.counters, vec![("a.b".to_owned(), 3)]);
        assert_eq!(doc.render_jsonl(), text);
    }

    #[test]
    fn rejects_section_disorder() {
        let text = format!(
            "{HEADER}\n\
             {{\"event\":\"ting.phase\",\"t_ns\":10}}\n\
             {{\"counter\":\"a\",\"value\":1}}\n"
        );
        let e = parse_document(&text).unwrap_err();
        assert!(e.msg.contains("later section"), "{e}");
    }

    #[test]
    fn rejects_unsorted_counters() {
        let text = format!(
            "{HEADER}\n\
             {{\"counter\":\"b\",\"value\":1}}\n\
             {{\"counter\":\"a\",\"value\":1}}\n"
        );
        assert!(parse_document(&text).is_err());
    }

    #[test]
    fn rejects_summary_count_mismatch() {
        let text = format!("{HEADER}\n{{\"hist\":\"h\",\"count\":2,\"buckets\":[]}}\n");
        let e = parse_document(&text).unwrap_err();
        assert!(e.msg.contains("summary present iff"), "{e}");
    }

    #[test]
    fn rejects_wrong_format_tag() {
        let text = "{\"meta\":{\"format\":\"ting-obs-v2\",\"mode\":\"off\",\
                    \"seed\":0,\"config_hash\":\"0000000000000000\"}}\n";
        assert!(parse_document(text).is_err());
    }
}
