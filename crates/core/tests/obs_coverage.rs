//! No silent error paths: every failure class the measurement pipeline
//! can hit during a chaos round must surface in the exported metrics.
//!
//! The test drives a storm (crashed relays, link loss, stalls, relay
//! overload, health + validation enabled) with observability at
//! `Metrics`, then derives the set of resilience events that *actually
//! occurred* from the pipeline's human-readable trace and checks each
//! one against the `obs` registry: the matching counter is nonzero,
//! its count agrees with the legacy [`MeasurementSnapshot`], and the
//! JSONL export carries it.

use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use ting::obs::{config_hash, ExportMeta, Obs, ObsConfig};
use ting::{
    AdaptiveTimeoutConfig, HealthConfig, Scanner, ScannerConfig, Ting, TingConfig, ValidationConfig,
};
use tor_sim::TorNetworkBuilder;

const SEED: u64 = 0x0b5e;

/// Extracts `code=<x>` from a trace line.
fn code_of(line: &str) -> &str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("code="))
        .expect("trace line missing code=")
}

#[test]
fn every_observed_failure_class_reaches_the_exported_metrics() {
    let obs = Obs::new(ObsConfig::Metrics);
    let mut net = TorNetworkBuilder::live(SEED, 12)
        .fault_plan(
            FaultPlan::new(SEED ^ 0x7)
                .with_link_loss(0.004)
                .with_stalls(0.001, 300.0),
        )
        .relay_faults(tor_sim::RelayFaultProfile {
            extend_refuse_prob: 0.02,
            overload_drop_prob: 0.002,
            overload_queue_depth: 32,
            seed: SEED ^ 0x9,
        })
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(8).collect();
    // Two permanently dead relays guarantee circuit failures, retries,
    // requeues, and quarantines occur.
    net.crash_relay(nodes[2], None);
    net.crash_relay(nodes[5], None);
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            staleness: SimDuration::from_hours(24),
            pairs_per_round: 8,
            retry_backoff: SimDuration::from_secs(60),
            retry_backoff_cap: SimDuration::from_hours(1),
            health: Some(HealthConfig::default()),
            validation: Some(ValidationConfig::default()),
        },
    );
    scanner.load_locations(&net);
    let ting = Ting::with_obs(
        TingConfig {
            max_attempts: 2,
            max_lost_probes: 4,
            adaptive_timeouts: Some(AdaptiveTimeoutConfig::default()),
            ..TingConfig::fast()
        },
        obs.clone(),
    );
    for round in 0..40u64 {
        let target = SimTime::ZERO + SimDuration::from_secs(round * 300);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        scanner.run_round(&mut net, &ting);
    }

    // Derive the classes that actually occurred from the trace, mapped
    // to the obs counter each one must have incremented.
    let mut expected: Vec<(String, u64)> = Vec::new();
    let mut tally = |name: String| match expected.iter_mut().find(|(n, _)| *n == name) {
        Some((_, count)) => *count += 1,
        None => expected.push((name, 1)),
    };
    for line in ting.metrics.trace_lines() {
        if line.starts_with("circuit_failed ") {
            tally("ting.error.circuit_build_failed".into());
        } else if line.starts_with("stream_failed ") {
            tally("ting.error.stream_failed".into());
        } else if line.starts_with("probes_lost ") {
            tally("ting.error.probe_lost".into());
        } else if line.starts_with("retry ") {
            tally("ting.retry".into());
        } else if line.starts_with("pair_requeued ") {
            tally("ting.pair_requeued".into());
        } else if line.starts_with("implausible_estimate ") {
            tally("ting.estimate.implausible".into());
        } else if line.starts_with("relay_quarantined ") {
            tally("ting.health.quarantined".into());
        } else if line.starts_with("relay_released ") && line.ends_with("reason=probation") {
            tally("ting.health.released.probation".into());
        } else if line.starts_with("relay_released ") && line.ends_with("reason=decay") {
            tally("ting.health.released.decay".into());
        } else if line.starts_with("probation_probe ") {
            tally("ting.health.probation_probe".into());
        } else if line.starts_with("estimate_rejected ") {
            tally(format!("ting.validate.reject.{}", code_of(&line)));
        } else if line.starts_with("estimate_flagged ") {
            tally(format!("ting.validate.flag.{}", code_of(&line)));
        }
    }

    // The storm must actually have exercised the interesting paths —
    // otherwise the coverage assertion below is vacuous.
    for must_occur in [
        "ting.error.circuit_build_failed",
        "ting.retry",
        "ting.pair_requeued",
        "ting.health.quarantined",
    ] {
        assert!(
            expected.iter().any(|(n, _)| n == must_occur),
            "storm too mild: {must_occur} never occurred"
        );
    }

    // Every class that occurred is in the registry with the exact same
    // count the trace shows, and in the JSONL export.
    let doc = obs.export_jsonl(&ExportMeta {
        seed: SEED,
        config_hash: config_hash("obs-coverage-v1"),
    });
    for (name, count) in &expected {
        assert_eq!(
            obs.counter_value(name),
            *count,
            "counter {name} disagrees with the trace"
        );
        assert!(
            doc.contains(&format!("{{\"counter\":\"{name}\",\"value\":{count}}}")),
            "export missing counter {name}={count}"
        );
    }

    // The legacy snapshot and the obs registry must agree everywhere
    // they overlap — no path bumps one but not the other.
    let snap = ting.metrics.snapshot();
    assert_eq!(
        snap.circuits_failed,
        obs.counter_value("ting.error.circuit_build_failed")
    );
    assert_eq!(snap.retries, obs.counter_value("ting.retry"));
    assert_eq!(snap.pairs_requeued, obs.counter_value("ting.pair_requeued"));
    assert_eq!(
        snap.probes_timed_out,
        obs.counter_value("ting.probe.timeout")
    );
    assert_eq!(
        snap.relays_quarantined,
        obs.counter_value("ting.health.quarantined")
    );
    assert_eq!(
        snap.relays_released,
        obs.counter_value("ting.health.released.probation")
            + obs.counter_value("ting.health.released.decay")
    );
    assert_eq!(
        snap.probation_probes,
        obs.counter_value("ting.health.probation_probe")
    );
    let sum_prefixed = |prefix: &str| {
        obs.counters()
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum::<u64>()
    };
    assert_eq!(
        snap.estimates_rejected,
        sum_prefixed("ting.validate.reject.")
    );
    assert_eq!(snap.estimates_flagged, sum_prefixed("ting.validate.flag."));

    // Per-phase latency histograms filled up alongside.
    let build = obs
        .histogram("ting.phase.build_us")
        .expect("build histogram");
    assert!(build.count() > 0);
    assert!(build.quantile(0.5).unwrap() > 0);
}
