//! Self-healing soak tests.
//!
//! Two levels: a fast acceptance test proving the health/quarantine
//! model pays for itself (permanently dead relays must not slow down
//! the live pairs), and an `#[ignore]`d chaos soak — churn, crashes,
//! overload, and a mid-run kill — holding the full self-healing
//! pipeline to its invariants: no panics, monotone progress, only
//! plausible estimates cached, quarantines eventually released, and a
//! killed-and-resumed scan bit-identical to an uninterrupted one.
//!
//! Run the soak with `cargo test -q -p ting --test soak -- --ignored`.

use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use ting::{
    AdaptiveTimeoutConfig, HealthConfig, Scanner, ScannerConfig, Ting, TingConfig, ValidationConfig,
};
use tor_sim::churn::ChurnConfig;
use tor_sim::{RelayFaultProfile, TorNetwork, TorNetworkBuilder};

const SEED: u64 = 0x50AC;

fn all_pairs_measured(scanner: &Scanner, nodes: &[NodeId]) -> bool {
    nodes.iter().enumerate().all(|(i, &a)| {
        nodes[i + 1..]
            .iter()
            .all(|&b| scanner.measured_at(a, b).is_some())
    })
}

/// Scans a 10-relay set with 3 relays permanently dead, returning the
/// virtual instant at which every live–live pair is measured.
fn time_to_complete_live_pairs(health: bool) -> SimTime {
    let mut net = TorNetworkBuilder::live(SEED, 12).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(10).collect();
    let dead = [nodes[2], nodes[5], nodes[8]];
    for &d in &dead {
        net.crash_relay(d, None);
    }
    // The consensus still lists the dead relays as running — exactly
    // the stale-directory window where a scanner keeps trying them.
    let live: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !dead.contains(n))
        .collect();
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            staleness: SimDuration::from_hours(24 * 365),
            pairs_per_round: 6,
            retry_backoff: SimDuration::from_secs(60),
            retry_backoff_cap: SimDuration::from_secs(600),
            health: health.then(HealthConfig::default),
            validation: None,
        },
    );
    let ting = Ting::new(TingConfig {
        max_attempts: 2,
        max_lost_probes: 4,
        ..TingConfig::fast()
    });
    for _round in 0..400u64 {
        scanner.run_round(&mut net, &ting);
        if all_pairs_measured(&scanner, &live) {
            return net.sim.now();
        }
        let next = net.sim.now() + SimDuration::from_secs(120);
        net.sim.advance_to(next);
    }
    panic!("live pairs never completed (health={health})");
}

/// The tentpole acceptance criterion: with 3 permanently dead relays in
/// the set, quarantining them must strictly shorten the virtual time to
/// finish every pair among the live relays — the health model's whole
/// justification is that dead relays stop taxing everyone else.
#[test]
fn quarantine_speeds_up_scan_with_dead_relays() {
    let with_health = time_to_complete_live_pairs(true);
    let without = time_to_complete_live_pairs(false);
    assert!(
        with_health < without,
        "health model must strictly help: with={with_health:?} without={without:?}"
    );
}

// ---------------------------------------------------------------------
// Chaos soak
// ---------------------------------------------------------------------

const ROUND_SECS: u64 = 300;
const N_NODES: usize = 8;

fn storm_net(seed: u64) -> TorNetwork {
    TorNetworkBuilder::live(seed, 12)
        .vantages(2)
        .fault_plan(
            FaultPlan::new(seed ^ 0x7)
                .with_link_loss(0.003)
                .with_stalls(0.001, 300.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: 0.01,
            overload_drop_prob: 0.002,
            overload_queue_depth: 32,
            seed: seed ^ 0x9,
        })
        .build()
}

fn storm_scan_config() -> ScannerConfig {
    ScannerConfig {
        staleness: SimDuration::from_hours(24),
        pairs_per_round: 8,
        retry_backoff: SimDuration::from_secs(60),
        retry_backoff_cap: SimDuration::from_hours(1),
        health: Some(HealthConfig::default()),
        validation: Some(ValidationConfig::default()),
    }
}

fn storm_ting_config() -> TingConfig {
    TingConfig {
        max_attempts: 2,
        max_lost_probes: 4,
        adaptive_timeouts: Some(AdaptiveTimeoutConfig::default()),
        ..TingConfig::fast()
    }
}

/// Final state of a storm run: everything that must be bit-identical
/// across a kill/resume.
#[derive(PartialEq, Debug)]
struct StormOutcome {
    checkpoint: String,
    timeouts: String,
}

/// Drives `rounds` scan rounds under a fault storm: relay churn every
/// 6 rounds, mass revival + consensus refresh every 9, link faults and
/// overload throughout. When `kill_at` is set, the scanner and the
/// Ting driver are torn down after that round and rebuilt from the
/// checkpoint + exported timeout state — the crash-recovery path.
fn storm_run(seed: u64, rounds: u64, kill_at: Option<u64>) -> StormOutcome {
    let mut net = storm_net(seed);
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(N_NODES).collect();
    let mut scanner = Scanner::new(nodes.clone(), storm_scan_config());
    scanner.load_locations(&net);
    let mut ting = Ting::new(storm_ting_config());
    let churn = ChurnConfig {
        initial_relays: 12,
        daily_departure_rate: 1.2,
        ..ChurnConfig::default()
    };
    let mut prev_measured = 0;
    for round in 0..rounds {
        let target = SimTime::ZERO + SimDuration::from_secs(round * ROUND_SECS);
        if target > net.sim.now() {
            net.sim.advance_to(target);
        }
        if round % 6 == 2 {
            net.churn_step(&churn, 1.0, seed ^ round);
            net.refresh_consensus();
        }
        if round % 9 == 8 {
            for &n in &net.relays.clone() {
                net.revive_relay(n);
            }
            net.refresh_consensus();
        }
        scanner.run_round_parallel(&mut net, &ting);

        // Invariant: progress is monotone — a completed pair never
        // un-completes, panics aside.
        let measured = scanner.matrix().measured_pairs();
        assert!(
            measured >= prev_measured,
            "round {round}: completed pairs went backwards ({prev_measured} -> {measured})"
        );
        prev_measured = measured;

        if kill_at == Some(round) {
            let checkpoint = scanner.to_checkpoint();
            let timeouts = ting.timeouts.export();
            scanner = Scanner::from_checkpoint(&checkpoint).expect("mid-storm checkpoint parses");
            scanner.load_locations(&net);
            ting = Ting::new(storm_ting_config());
            ting.timeouts
                .import(&timeouts)
                .expect("timeout state reimports");
        }
    }

    // Invariant: everything cached is a plausible estimate — positive,
    // finite, and at or above the lightspeed floor for the pair.
    for (a, b, est) in scanner.matrix().pairs() {
        assert!(
            est.is_finite() && est > 0.05,
            "implausible estimate cached for ({},{}): {est}",
            a.0,
            b.0
        );
        let pa = net.sim.underlay().node(a.index()).location;
        let pb = net.sim.underlay().node(b.index()).location;
        let floor = geo::lightspeed::min_rtt_ms(geo::great_circle_km(pa, pb));
        assert!(
            est >= floor,
            "faster-than-light estimate cached for ({},{}): {est} < {floor}",
            a.0,
            b.0
        );
    }

    // Invariant: quarantine is never a life sentence. With every relay
    // revived and probation + decay running, the roster must drain.
    for &n in &net.relays.clone() {
        net.revive_relay(n);
    }
    net.refresh_consensus();
    let mut extra = 0u64;
    while !scanner
        .health()
        .expect("storm config enables health")
        .quarantined_nodes()
        .is_empty()
    {
        extra += 1;
        assert!(
            extra <= 200,
            "quarantines never released: {:?}",
            scanner.health().unwrap().quarantined_nodes()
        );
        let next = net.sim.now() + SimDuration::from_secs(1800);
        net.sim.advance_to(next);
        scanner.run_round_parallel(&mut net, &ting);
    }

    StormOutcome {
        checkpoint: scanner.to_checkpoint(),
        timeouts: ting.timeouts.export(),
    }
}

/// The full chaos soak: four virtual hours of churn + crashes +
/// overload, once uninterrupted and once killed at a mid-storm round,
/// must converge to bit-identical scanner state and timeout estimators
/// — and hold every invariant checked inside [`storm_run`] throughout.
#[test]
#[ignore = "long soak; run explicitly with -- --ignored"]
fn soak_storm_killed_and_resumed_is_bit_identical() {
    let rounds = 4 * 3600 / ROUND_SECS;
    let uninterrupted = storm_run(SEED, rounds, None);
    let resumed = storm_run(SEED, rounds, Some(rounds / 3));
    assert_eq!(
        uninterrupted, resumed,
        "kill/resume diverged from the uninterrupted storm"
    );
}

/// Same storm, same seed, twice — the soak itself must be reproducible
/// bit for bit, or none of the other invariants mean much.
#[test]
#[ignore = "long soak; run explicitly with -- --ignored"]
fn soak_storm_is_deterministic() {
    let rounds = 2 * 3600 / ROUND_SECS;
    assert_eq!(
        storm_run(SEED ^ 1, rounds, None),
        storm_run(SEED ^ 1, rounds, None)
    );
}
