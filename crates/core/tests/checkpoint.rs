//! Crash-safety tests for the v2 checkpoint format: corruption is
//! always detected (proptest over byte flips and truncations), legacy
//! v1 documents still load, unknown config keys fail loudly, and the
//! `.bak` generation chain lets [`Scanner::recover`] survive a corrupt
//! primary.

use proptest::prelude::*;
use ting::checkpoint::{bak_path, seal};
use ting::Scanner;

/// A handwritten v2 document exercising every line kind: measurements,
/// failure backoffs, health scores, and a quarantine entry.
fn handwritten_v2() -> String {
    seal(String::from(
        "# ting scan checkpoint v2\n\
         # nodes: 0 1 2 3\n\
         # config: staleness_ns=86400000000000 pairs_per_round=8 \
         retry_backoff_ns=300000000000 retry_backoff_cap_ns=7200000000000 \
         health=1 health_alpha=0.3 health_qbelow=0.25 health_rabove=0.6 \
         health_probation_ns=1800000000000 health_halflife_ns=21600000000000 \
         val=1 val_divfactor=4 val_divslack_ms=50 val_lightspeed=1 \
         val_tivfactor=8 val_tivmin_ms=5\n\
         m\t0\t1\t12.5\t1000000000\n\
         m\t1\t2\t30.25\t2000000000\n\
         f\t0\t3\t2\t9000000000\n\
         h\t0\t0.95\t2000000000\n\
         h\t3\t0.2\t9000000000\n\
         q\t3\t9000000000\t10800000000000\n",
    ))
}

/// The canonical serialization of the handwritten state: whatever
/// `to_checkpoint` itself emits after one parse.
fn canonical_v2() -> String {
    Scanner::from_checkpoint(&handwritten_v2())
        .expect("handwritten v2 checkpoint must parse")
        .to_checkpoint()
}

#[test]
fn v2_roundtrip_is_exact_including_health_state() {
    let scanner = Scanner::from_checkpoint(&handwritten_v2()).unwrap();
    let health = scanner.health().expect("health=1 restores the model");
    assert!(health.is_quarantined(netsim::NodeId(3)));
    assert!(!health.is_quarantined(netsim::NodeId(0)));
    // Serialize → parse → serialize is a fixed point, byte for byte.
    let ck = scanner.to_checkpoint();
    let again = Scanner::from_checkpoint(&ck).unwrap().to_checkpoint();
    assert_eq!(ck, again);
}

#[test]
fn v1_checkpoints_still_load() {
    let v1 = "# ting scan checkpoint v1\n\
              # nodes: 0 1 2\n\
              # config: staleness_ns=1000000000000 pairs_per_round=5 \
              retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000\n\
              m\t0\t1\t10\t1000000000\n\
              f\t1\t2\t1\t5000000000\n";
    let scanner = Scanner::from_checkpoint(v1).expect("v1 must stay loadable");
    assert_eq!(
        scanner.matrix().get(netsim::NodeId(0), netsim::NodeId(1)),
        Some(10.0)
    );
    assert!(scanner.health().is_none(), "v1 predates the health model");
}

#[test]
fn v1_rejects_v2_only_lines() {
    // Health state in a v1 document is corruption, not forward compat.
    let v1 = "# ting scan checkpoint v1\n\
              # nodes: 0 1\n\
              # config: staleness_ns=1000000000000 pairs_per_round=5 \
              retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000\n\
              h\t0\t0.5\t1000000000\n";
    assert!(Scanner::from_checkpoint(v1).is_err());
    let v1_health_key = "# ting scan checkpoint v1\n\
                         # nodes: 0 1\n\
                         # config: staleness_ns=1000000000000 pairs_per_round=5 \
                         retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000 health=0\n";
    assert!(Scanner::from_checkpoint(v1_health_key).is_err());
}

#[test]
fn unknown_config_keys_error_loudly_naming_the_key() {
    let doc = seal(String::from(
        "# ting scan checkpoint v2\n\
         # nodes: 0 1\n\
         # config: staleness_ns=1000000000000 pairs_per_round=5 \
         retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000 \
         health=0 val=0 frobnicate=3\n",
    ));
    let err = match Scanner::from_checkpoint(&doc) {
        Err(e) => e,
        Ok(_) => panic!("unknown config key must be refused"),
    };
    assert!(
        err.contains("frobnicate"),
        "error must name the unknown key, got: {err}"
    );
}

#[test]
fn unknown_versions_are_refused() {
    let doc = seal(String::from(
        "# ting scan checkpoint v4\n# nodes: 0 1\n# config: staleness_ns=1\n",
    ));
    assert!(Scanner::from_checkpoint(&doc).is_err());
}

#[test]
fn v3_roundtrip_carries_rounds_and_lineage() {
    let doc = seal(String::from(
        "# ting scan checkpoint v3\n\
         # nodes: 0 1 2\n\
         # config: staleness_ns=1000000000000 pairs_per_round=5 \
         retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000 health=0 val=0\n\
         # rounds: 7\n\
         m\t0\t1\t10\t1000000000\t3\n\
         m\t1\t2\t20\t2000000000\t7\n",
    ));
    let scanner = Scanner::from_checkpoint(&doc).expect("v3 must parse");
    assert_eq!(scanner.rounds_run(), 7);
    assert_eq!(
        scanner.measured_round(netsim::NodeId(0), netsim::NodeId(1)),
        Some(3)
    );
    assert_eq!(
        scanner.measured_round(netsim::NodeId(2), netsim::NodeId(1)),
        Some(7)
    );
    // Serialize → parse → serialize is a fixed point, byte for byte.
    let ck = scanner.to_checkpoint();
    let again = Scanner::from_checkpoint(&ck).unwrap().to_checkpoint();
    assert_eq!(ck, again);
}

#[test]
fn v3_rows_without_round_are_corrupt() {
    let doc = seal(String::from(
        "# ting scan checkpoint v3\n\
         # nodes: 0 1\n\
         # config: staleness_ns=1000000000000 pairs_per_round=5 \
         retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000 health=0 val=0\n\
         # rounds: 1\n\
         m\t0\t1\t10\t1000000000\n",
    ));
    let err = match Scanner::from_checkpoint(&doc) {
        Err(e) => e,
        Ok(_) => panic!("a v3 row without a round column must be refused"),
    };
    assert!(err.contains("bad round"), "got: {err}");
}

#[test]
fn legacy_estimates_carry_round_zero() {
    // v1/v2 documents predate lineage: their estimates load with
    // round 0 ("unknown") and a fresh round counter.
    let scanner = Scanner::from_checkpoint(&handwritten_v2()).unwrap();
    assert_eq!(scanner.rounds_run(), 0);
    assert_eq!(
        scanner.measured_round(netsim::NodeId(0), netsim::NodeId(1)),
        Some(0)
    );
}

#[test]
fn save_promotes_backup_and_recover_falls_back() {
    let dir = std::env::temp_dir().join(format!("ting-ckpt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan.ckpt");

    let gen1 = Scanner::from_checkpoint(&handwritten_v2()).unwrap();
    gen1.save(&path).unwrap();
    let gen1_text = std::fs::read_to_string(&path).unwrap();

    // A second save promotes the first generation to `.bak`.
    let mut gen2 = Scanner::from_checkpoint(&gen1_text).unwrap();
    gen2.set_node_location(netsim::NodeId(0), geo::GeoPoint::new(0.0, 0.0));
    gen2.save(&path).unwrap();
    assert_eq!(std::fs::read_to_string(bak_path(&path)).unwrap(), gen1_text);

    // A healthy primary wins.
    assert_eq!(
        Scanner::recover(&path).unwrap().to_checkpoint(),
        gen2.to_checkpoint()
    );

    // Corrupt the primary: recover falls back to the `.bak` generation.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        Scanner::load(&path).is_err(),
        "corrupt primary must not load"
    );
    assert_eq!(Scanner::recover(&path).unwrap().to_checkpoint(), gen1_text);

    // Both gone: the primary's error surfaces.
    std::fs::remove_file(bak_path(&path)).unwrap();
    assert!(Scanner::recover(&path).is_err());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_save_leaves_a_loadable_checkpoint() {
    use ting::checkpoint::tmp_path;

    let dir = std::env::temp_dir().join(format!("ting-ckpt-interrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan.ckpt");

    let gen1 = Scanner::from_checkpoint(&handwritten_v2()).unwrap();
    gen1.save(&path).unwrap();
    // A save killed right after the rename leaves exactly this state:
    // the (fsynced) document under the final name, nothing else. It
    // must be complete and loadable, byte for byte.
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        gen1.to_checkpoint()
    );
    assert_eq!(
        Scanner::load(&path).unwrap().to_checkpoint(),
        gen1.to_checkpoint()
    );
    assert!(!tmp_path(&path).exists(), "no temp file survives a save");

    // A save killed *before* the rename instead leaves a torn `.tmp`
    // sibling. The primary is untouched by it, and the next save
    // replaces the garbage temp wholesale.
    std::fs::write(tmp_path(&path), "# torn half-written garb").unwrap();
    assert_eq!(
        Scanner::recover(&path).unwrap().to_checkpoint(),
        gen1.to_checkpoint()
    );
    let mut gen2 = Scanner::from_checkpoint(&gen1.to_checkpoint()).unwrap();
    gen2.set_node_location(netsim::NodeId(1), geo::GeoPoint::new(10.0, 20.0));
    gen2.save(&path).unwrap();
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        gen2.to_checkpoint()
    );
    assert!(!tmp_path(&path).exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bak_fallback_increments_counter_and_emits_event() {
    use netsim::{SimDuration, SimTime};
    use ting::obs::{names, Obs, ObsConfig};

    let dir = std::env::temp_dir().join(format!("ting-ckpt-observed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan.ckpt");

    let gen1 = Scanner::from_checkpoint(&handwritten_v2()).unwrap();
    gen1.save(&path).unwrap();
    let gen1_text = std::fs::read_to_string(&path).unwrap();
    Scanner::from_checkpoint(&gen1_text)
        .unwrap()
        .save(&path)
        .unwrap();

    let now = SimTime::ZERO + SimDuration::from_secs(5);

    // A healthy primary recovers silently: no counter, no event.
    let obs = Obs::new(ObsConfig::Trace);
    Scanner::recover_observed(&path, &obs, now).unwrap();
    assert_eq!(obs.counter_value("ting.checkpoint.recovered_bak"), 0);
    assert!(obs.events().is_empty());

    // Corrupt the primary: the `.bak` fallback is counted and traced.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let recovered = Scanner::recover_observed(&path, &obs, now).unwrap();
    assert_eq!(recovered.to_checkpoint(), gen1_text);
    assert_eq!(obs.counter_value("ting.checkpoint.recovered_bak"), 1);
    let events = obs.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, names::SCAN_RECOVER_BAK);
    assert_eq!(events[0].t_ns, now.as_nanos());
    assert!(
        events[0].fields.iter().any(|(k, _)| *k == "primary_error"),
        "event must carry the primary's error: {:?}",
        events[0].fields
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Flipping any byte of a sealed v2 checkpoint either fails the
    /// load or (for the rare flip that leaves the document equivalent,
    /// e.g. a hex-case flip inside the CRC trailer) reproduces the
    /// exact same scanner state — never a silently different one.
    #[test]
    fn flipped_bytes_never_load_different_state(pos in 0usize..8192, flip in 0u8..255) {
        let sealed = canonical_v2();
        let pos = pos % sealed.len();
        let mut bytes = sealed.clone().into_bytes();
        bytes[pos] ^= flip + 1; // 1..=255: always a real change
        if let Ok(corrupt) = String::from_utf8(bytes) {
            match Scanner::from_checkpoint(&corrupt) {
                Err(_) => {}
                Ok(s) => prop_assert_eq!(s.to_checkpoint(), sealed),
            }
        }
    }

    /// Truncating a sealed v2 checkpoint anywhere (beyond losing only
    /// the final newline) always fails the load.
    #[test]
    fn truncations_never_load(cut in 0usize..8192) {
        let sealed = canonical_v2();
        let cut = cut % (sealed.len() - 1);
        prop_assert!(Scanner::from_checkpoint(&sealed[..cut]).is_err());
    }
}
