//! Golden-trace determinism tests for the observability layer.
//!
//! The contract `obs` pins across the whole stack:
//!
//! 1. a fixed-seed scan exports **byte-identical** JSONL across runs —
//!    the trace is a pure function of seed + config;
//! 2. attaching observability (at any level) never changes behaviour —
//!    an `Off` run, a `Metrics` run, and a `Trace` run of the same
//!    campaign end in bit-identical scanner checkpoints at the same
//!    virtual instant;
//! 3. the `K = 1` parallel engine logs event-for-event equal to the
//!    sequential orchestrator (the scanner delegates, and the raw
//!    interleaved engine keeps the same build/stream skeleton).

use netsim::{FaultPlan, NodeId, SimDuration};
use ting::obs::{config_hash, Event, ExportMeta, Obs, ObsConfig, Value};
use ting::{measure_interleaved, Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::{TorNetwork, TorNetworkBuilder};

const SEED: u64 = 0x601d;

fn meta(seed: u64) -> ExportMeta {
    ExportMeta {
        seed,
        config_hash: config_hash("golden-trace-v1"),
    }
}

/// Runs one short, fault-laden scan campaign with every layer
/// instrumented at `mode`, returning the exported JSONL plus the
/// behavioural fingerprint (checkpoint text, final virtual instant).
fn traced_scan(seed: u64, mode: ObsConfig) -> (String, String, u64) {
    let obs = Obs::new(mode);
    let mut net = TorNetworkBuilder::live(seed, 10)
        .fault_plan(FaultPlan::new(seed ^ 0x7).with_link_loss(0.004))
        .observability(obs.clone())
        .build();
    let nodes: Vec<NodeId> = net.relays.clone();
    let ting = Ting::with_obs(TingConfig::fast(), obs.clone());
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            pairs_per_round: 20,
            retry_backoff: SimDuration::from_secs(60),
            ..ScannerConfig::default()
        },
    );
    scanner.load_locations(&net);
    for _ in 0..3 {
        scanner.run_round(&mut net, &ting);
        let next = net.sim.now() + SimDuration::from_secs(120);
        net.sim.advance_to(next);
    }
    net.publish_relay_totals();
    (
        obs.export_jsonl(&meta(seed)),
        scanner.to_checkpoint(),
        net.sim.now().as_nanos(),
    )
}

/// Contract 1: same seed → byte-identical JSONL; different seed →
/// a different document.
#[test]
fn fixed_seed_scan_exports_byte_identical_jsonl() {
    let (a, _, _) = traced_scan(SEED, ObsConfig::Trace);
    let (b, _, _) = traced_scan(SEED, ObsConfig::Trace);
    assert_eq!(a, b, "same seed must export byte-identical JSONL");
    let (c, _, _) = traced_scan(SEED + 1, ObsConfig::Trace);
    assert_ne!(a, c, "a different seed must produce a different trace");
}

/// The export really is the *unified* layer: one document carries
/// netsim fault/link counters, tor-sim relay gauges, orchestrator
/// phase histograms, and scanner round spans.
#[test]
fn export_covers_every_layer_of_the_stack() {
    let (doc, _, _) = traced_scan(SEED, ObsConfig::Trace);
    for needle in [
        "\"counter\":\"net.delivers\"",
        "\"counter\":\"net.conns_opened\"",
        "\"gauge\":\"tor.relay.cells_processed\"",
        "\"hist\":\"ting.phase.build_us\"",
        "\"hist\":\"ting.phase.probe_us\"",
        "\"event\":\"scan.round.begin\"",
        "\"event\":\"scan.pair.end\"",
        "\"event\":\"ting.phase\"",
    ] {
        assert!(doc.contains(needle), "export missing {needle}");
    }
}

/// Contract 2: observability is passive. The scan's outcome — the full
/// checkpoint (cache, timestamps, backoff, health) and the virtual
/// clock — is bit-identical whether obs is off, counting, or tracing.
#[test]
fn observability_level_never_changes_behaviour() {
    let (_, off_ckpt, off_now) = traced_scan(SEED, ObsConfig::Off);
    let (_, met_ckpt, met_now) = traced_scan(SEED, ObsConfig::Metrics);
    let (_, trc_ckpt, trc_now) = traced_scan(SEED, ObsConfig::Trace);
    assert_eq!(off_ckpt, met_ckpt, "Metrics mode perturbed the scan");
    assert_eq!(off_ckpt, trc_ckpt, "Trace mode perturbed the scan");
    assert_eq!(off_now, met_now);
    assert_eq!(off_now, trc_now);
}

/// One scan round over a single-vantage network, sequentially or via
/// the parallel entry point, exported as JSONL.
fn k1_round(parallel: bool) -> String {
    let obs = Obs::new(ObsConfig::Trace);
    let mut net = TorNetworkBuilder::live(SEED, 8)
        .observability(obs.clone())
        .build();
    let ting = Ting::with_obs(TingConfig::fast(), obs.clone());
    let mut scanner = Scanner::new(net.relays.clone(), ScannerConfig::default());
    let report = if parallel {
        scanner.run_round_parallel(&mut net, &ting)
    } else {
        scanner.run_round(&mut net, &ting)
    };
    assert!(report.measured > 0);
    obs.export_jsonl(&meta(SEED))
}

/// Contract 3a: with one vantage the parallel scanner *is* the
/// sequential scanner — its trace is byte-for-byte the same document.
#[test]
fn parallel_k1_round_logs_identically_to_sequential() {
    assert_eq!(k1_round(false), k1_round(true));
}

/// The build/stream structural skeleton of a trace: circuit-phase
/// completions (probe excluded — its sampling interleaves differently
/// under the raw engine), plus every error and retry event, in order.
fn phase_skeleton(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e.name {
            "ting.phase" => e.fields.iter().find_map(|(k, v)| match (k, v) {
                (&"phase", Value::Str(s)) if s != "probe" => Some(format!("phase:{s}")),
                _ => None,
            }),
            "ting.error" | "ting.retry" => Some(e.name.to_string()),
            _ => None,
        })
        .collect()
}

/// Contract 3b: even the *raw* interleaved engine at `K = 1` walks the
/// same circuit-phase skeleton as the sequential orchestrator: the same
/// builds and stream-opens succeed, in the same order, with no extra
/// errors or retries.
#[test]
fn interleaved_k1_phase_skeleton_matches_sequential() {
    let pairs = |net: &TorNetwork| {
        let n = &net.relays;
        vec![(n[0], n[1]), (n[2], n[3]), (n[4], n[5])]
    };

    let obs_seq = Obs::new(ObsConfig::Trace);
    let mut net_seq = TorNetworkBuilder::live(SEED, 8).build();
    let ting_seq = Ting::with_obs(TingConfig::fast(), obs_seq.clone());
    for (x, y) in pairs(&net_seq) {
        ting_seq.measure_pair(&mut net_seq, x, y).unwrap();
    }

    let obs_par = Obs::new(ObsConfig::Trace);
    let mut net_par = TorNetworkBuilder::live(SEED, 8).build();
    let ting_par = Ting::with_obs(TingConfig::fast(), obs_par.clone());
    let assignments: Vec<(usize, NodeId, NodeId)> = pairs(&net_par)
        .into_iter()
        .map(|(x, y)| (0usize, x, y))
        .collect();
    let outcomes = measure_interleaved(&mut net_par, &ting_par, &assignments);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));

    let seq = phase_skeleton(&obs_seq.events());
    assert!(!seq.is_empty());
    assert_eq!(seq, phase_skeleton(&obs_par.events()));
}
