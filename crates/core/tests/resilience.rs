//! Resilience-layer acceptance tests.
//!
//! Three properties the fault-injection work must hold:
//! 1. the whole pipeline is deterministic — same seed, same fault plan,
//!    byte-identical scan state and identical retry traces;
//! 2. with every fault knob at zero the resilience layer is a strict
//!    no-op — estimates are bit-identical to a build with no plan at
//!    all;
//! 3. a scan killed mid-run and resumed from its checkpoint ends up in
//!    exactly the state of an uninterrupted scan, with failed pairs
//!    re-queued under backoff rather than dropped.

use netsim::{FaultPlan, NodeId, SimDuration, SimTime};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::{RelayFaultProfile, TorNetwork, TorNetworkBuilder};

const SEED: u64 = 0x4E51;

fn faulty_net(seed: u64) -> TorNetwork {
    TorNetworkBuilder::live(seed, 14)
        .fault_plan(
            FaultPlan::new(seed ^ 0x7)
                .with_link_loss(0.004)
                .with_stalls(0.002, 300.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: 0.01,
            overload_drop_prob: 0.0,
            overload_queue_depth: 32,
            seed: seed ^ 0x9,
        })
        .build()
}

fn scan_config() -> ScannerConfig {
    ScannerConfig {
        staleness: SimDuration::from_hours(24),
        pairs_per_round: 8,
        retry_backoff: SimDuration::from_secs(60),
        retry_backoff_cap: SimDuration::from_hours(1),
        ..ScannerConfig::default()
    }
}

/// Runs `rounds` scan rounds, 30 virtual minutes apart, over the first
/// 6 relays. Returns the final checkpoint and the full retry trace.
fn run_scan(net: &mut TorNetwork, rounds: u64) -> (String, Vec<String>) {
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut scanner = Scanner::new(nodes, scan_config());
    let ting = Ting::new(TingConfig::fast());
    for round in 0..rounds {
        net.sim
            .advance_to(SimTime::ZERO + SimDuration::from_secs(round * 1800));
        scanner.run_round(net, &ting);
    }
    (scanner.to_checkpoint(), ting.metrics.trace_lines())
}

/// Same seed + same fault plan ⇒ byte-identical scan state and an
/// identical retry trace, event for event.
#[test]
fn faulty_scan_is_deterministic() {
    let (cp1, trace1) = run_scan(&mut faulty_net(SEED), 4);
    let (cp2, trace2) = run_scan(&mut faulty_net(SEED), 4);
    assert_eq!(cp1, cp2, "scan state diverged across identical runs");
    assert_eq!(
        trace1, trace2,
        "retry traces diverged across identical runs"
    );
    assert!(
        !trace1.is_empty(),
        "fault rates were meant to provoke at least one retry/requeue"
    );
}

/// Every fault knob at zero ⇒ the fault layer and the resilience
/// timeouts are strict no-ops: estimates come out bit-identical to a
/// network built with no fault plan at all, and no failure counter
/// moves.
#[test]
fn zero_rate_faults_give_bit_identical_estimates() {
    let measure = |with_plan: bool| {
        let mut b = TorNetworkBuilder::live(SEED, 14);
        if with_plan {
            b = b
                .fault_plan(
                    FaultPlan::new(0xDEAD)
                        .with_link_loss(0.0)
                        .with_stalls(0.0, 500.0),
                )
                .relay_faults(RelayFaultProfile {
                    extend_refuse_prob: 0.0,
                    overload_drop_prob: 0.0,
                    overload_queue_depth: 8,
                    seed: 0xBEEF,
                });
        }
        let mut net = b.build();
        let (x, y) = (net.relays[0], net.relays[1]);
        let ting = Ting::new(TingConfig::fast());
        let m = ting
            .measure_pair(&mut net, x, y)
            .expect("clean measurement");
        (m.estimate_ms().to_bits(), ting.metrics.snapshot())
    };
    let (bits_plain, counters_plain) = measure(false);
    let (bits_zeroed, counters_zeroed) = measure(true);
    assert_eq!(
        bits_plain, bits_zeroed,
        "zero-rate faults perturbed the estimate"
    );
    assert_eq!(counters_plain, counters_zeroed);
    assert_eq!(counters_zeroed.circuits_failed, 0);
    assert_eq!(counters_zeroed.retries, 0);
}

/// Drives the §4.6 scan with a mid-run relay crash. When `kill_after`
/// is set, the scanner is serialized to a checkpoint after that round
/// and a brand-new scanner resumes from it — simulating a killed and
/// restarted scan process against the same (still-running) network.
fn scan_with_crash(net: &mut TorNetwork, kill_after: Option<u64>) -> (String, Vec<(u32, SimTime)>) {
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let victim = nodes[4];
    let mut scanner = Scanner::new(nodes.clone(), scan_config());
    let mut ting = Ting::new(TingConfig::fast());
    let mut backoff_states = Vec::new();
    for round in 0..6u64 {
        net.sim
            .advance_to(SimTime::ZERO + SimDuration::from_secs(round * 1800));
        // The victim departs before round 1 (while unmeasured pairs
        // through it remain) and comes back before round 3.
        if round == 1 {
            net.crash_relay(victim, None);
        }
        if round == 3 {
            net.revive_relay(victim);
            net.refresh_consensus();
        }
        scanner.run_round(net, &ting);
        // (2, 4) is still unmeasured when the victim departs, so it is
        // the pair whose backoff history we follow.
        if let Some(state) = scanner.retry_state(nodes[2], victim) {
            backoff_states.push(state);
        }
        if kill_after == Some(round) {
            let checkpoint = scanner.to_checkpoint();
            scanner = Scanner::from_checkpoint(&checkpoint).expect("checkpoint parses");
            ting = Ting::new(TingConfig::fast());
        }
    }
    (scanner.to_checkpoint(), backoff_states)
}

/// A scan killed mid-run and resumed from its checkpoint completes the
/// same pair set, with the same estimates and timestamps, as the scan
/// that was never interrupted — and while the victim relay is down its
/// pairs sit under exponential backoff instead of being hot-looped or
/// forgotten.
#[test]
fn checkpoint_resume_matches_uninterrupted_scan() {
    let (uninterrupted, backoffs) = scan_with_crash(&mut faulty_net(SEED), None);
    // Kill right after the round that saw the crash-induced failures.
    let (resumed, backoffs_resumed) = scan_with_crash(&mut faulty_net(SEED), Some(1));

    assert_eq!(
        uninterrupted, resumed,
        "resumed scan diverged from the uninterrupted one"
    );
    assert_eq!(backoffs, backoffs_resumed);

    // The crashed relay's pair really was re-queued under backoff …
    assert!(!backoffs.is_empty(), "victim pair never entered backoff");
    let (attempts, next_at) = backoffs[0];
    assert!(attempts >= 1);
    assert!(next_at > SimTime::ZERO);
    // … with attempts growing while the relay stayed down.
    let max_attempts = backoffs.iter().map(|&(a, _)| a).max().unwrap();
    assert!(max_attempts >= 2, "backoff never escalated: {backoffs:?}");

    // After revival + consensus refresh the scan recovered: the final
    // matrix covers all 15 pairs and nothing is left under backoff.
    let final_scanner = Scanner::from_checkpoint(&uninterrupted).unwrap();
    assert!(final_scanner.matrix().is_complete());
    let nodes = final_scanner.matrix().nodes().to_vec();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            assert_eq!(final_scanner.retry_state(a, b), None);
        }
    }
}

/// The checkpoint text format round-trips exactly, including f64
/// estimates and failure backoff state.
#[test]
fn checkpoint_roundtrip_is_exact() {
    let mut net = faulty_net(SEED);
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let victim = nodes[4];
    let mut scanner = Scanner::new(nodes, scan_config());
    let ting = Ting::new(TingConfig::fast());
    scanner.run_round(&mut net, &ting);
    net.crash_relay(victim, None);
    net.sim
        .advance_to(SimTime::ZERO + SimDuration::from_secs(1800));
    scanner.run_round(&mut net, &ting); // provokes failures → backoff state
    let text = scanner.to_checkpoint();
    let reloaded = Scanner::from_checkpoint(&text).expect("parses");
    assert_eq!(reloaded.to_checkpoint(), text);
}
