//! Tests for the shard supervision layer (`ting::shard`): the
//! partitioner's exact-cover property, bit-identity of a one-shard
//! supervised scan with the plain `Scanner`, completion-order
//! invariance of the merge, kill/resume losslessness, heartbeat stall
//! detection, corrupt-checkpoint recovery, and degraded-mode scanning
//! with a shard dead past its restart budget.

use netsim::{NodeId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use ting::obs::{Obs, ObsConfig};
use ting::shard::{
    merge_checkpoints, partition_pairs, MergeDelta, ShardStatus, Supervisor, SupervisorConfig,
};
use ting::{RttMatrix, Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The partitioner covers every relay pair exactly once — no gaps,
    /// no duplicates, no pair in two shards — for arbitrary relay and
    /// shard counts, including more shards than pairs.
    #[test]
    fn partition_covers_every_pair_exactly_once(n in 0u32..40, shards in 1usize..60) {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let owned = partition_pairs(&nodes, shards);
        prop_assert_eq!(owned.len(), shards);
        let mut seen = HashSet::new();
        for pairs in &owned {
            for &(a, b) in pairs {
                prop_assert!(a < b, "pairs are emitted in index order");
                prop_assert!(seen.insert((a, b)), "pair {:?} assigned twice", (a, b));
            }
        }
        let expected = (n as usize) * (n as usize).saturating_sub(1) / 2;
        prop_assert_eq!(seen.len(), expected, "every pair must be owned");
        // Round-robin balance: shard sizes differ by at most one.
        let sizes: Vec<usize> = owned.iter().map(Vec::len).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "unbalanced shards: {:?}", sizes);
    }
}

/// The scanner config every test here shares.
fn scanner_config() -> ScannerConfig {
    ScannerConfig {
        pairs_per_round: 7,
        ..ScannerConfig::default()
    }
}

fn supervisor_config(shards: usize) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        scanner: scanner_config(),
        heartbeat_timeout: SimDuration::from_hours(4),
        restart_budget: 3,
        restart_backoff: SimDuration::from_nanos(0),
        restart_backoff_cap: SimDuration::from_nanos(0),
    }
}

/// A one-shard supervised scan must be bit-identical to the plain
/// `Scanner` over the same network: same checkpoint bytes, same merged
/// matrix. Sharding at S = 1 is a pure refactor, not a behavior change.
#[test]
fn one_shard_supervised_scan_is_bit_identical_to_plain_scanner() {
    // Plain run.
    let mut net = TorNetworkBuilder::testbed(97).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut scanner = Scanner::new(nodes.clone(), scanner_config());
    let ting = Ting::new(TingConfig::fast());
    for _ in 0..3 {
        scanner.run_round_parallel(&mut net, &ting);
    }
    let plain_ckpt = scanner.to_checkpoint();
    let plain_end = net.sim.now();

    // Supervised run over an identically seeded network.
    let mut net2 = TorNetworkBuilder::testbed(97).vantages(2).build();
    let mut sup = Supervisor::new(nodes, supervisor_config(1), TingConfig::fast());
    sup.load_locations(&net2);
    for _ in 0..3 {
        sup.run_round(&mut net2);
    }
    assert_eq!(net2.sim.now(), plain_end, "virtual clocks must agree");
    assert_eq!(
        sup.shard_checkpoint(0),
        plain_ckpt,
        "one-shard checkpoint must match the plain scanner byte for byte"
    );
    let merged = sup.merge(net2.sim.now()).unwrap();
    assert_eq!(merged.matrix.to_tsv(), scanner.matrix().to_tsv());
    assert_eq!(merged.coverage(), 1.0);
    assert_eq!(merged.shards.len(), 1);
    assert_eq!(merged.shards[0].status, "live");
    assert_eq!(merged.shards[0].uncovered, 0);
}

/// Runs an S-shard supervised scan to completion and returns the
/// supervisor plus its network.
fn run_sharded(shards: usize, rounds: usize) -> (Supervisor, tor_sim::TorNetwork) {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut sup = Supervisor::new(nodes, supervisor_config(shards), TingConfig::fast());
    sup.load_locations(&net);
    for _ in 0..rounds {
        sup.run_round(&mut net);
    }
    (sup, net)
}

/// The merge is a fixed shard-ordering reduction: feeding it shard
/// checkpoints in any completion order produces the same document.
#[test]
fn merge_is_invariant_to_shard_completion_order() {
    let (sup, net) = run_sharded(3, 3);
    let now = net.sim.now();
    let entries: Vec<(u32, &'static str, String)> = (0..3)
        .map(|k| (k as u32, sup.status(k).tag(), sup.shard_checkpoint(k)))
        .collect();
    let sorted_doc = merge_checkpoints(&entries, now).unwrap().to_document();
    let mut rotated = entries.clone();
    rotated.rotate_left(1);
    let mut reversed = entries;
    reversed.reverse();
    assert_eq!(
        merge_checkpoints(&rotated, now).unwrap().to_document(),
        sorted_doc
    );
    assert_eq!(
        merge_checkpoints(&reversed, now).unwrap().to_document(),
        sorted_doc
    );
    // And the scan actually finished: every shard fully covered.
    let merged = merge_checkpoints(&rotated, now).unwrap();
    assert_eq!(merged.coverage(), 1.0);
    assert!(merged.shards.iter().all(|c| c.uncovered == 0));
}

/// Killing a shard mid-scan and letting the supervisor restart it from
/// its checkpoint must not change one bit of the final merged output
/// relative to an uninterrupted run.
#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted_run() {
    let rounds = 4;
    let baseline = {
        let (sup, net) = run_sharded(4, rounds);
        sup.merge(net.sim.now()).unwrap().to_document()
    };

    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut sup = Supervisor::new(nodes, supervisor_config(4), TingConfig::fast());
    sup.load_locations(&net);
    for round in 0..rounds {
        if round == 1 {
            // Crash shard 2 between rounds: its live state is gone; it
            // restarts from the checkpoint taken after round 0.
            sup.inject_crash(2, net.sim.now());
            assert!(matches!(sup.status(2), ShardStatus::Restarting { .. }));
        }
        sup.run_round(&mut net);
    }
    assert_eq!(sup.status(2), ShardStatus::Running);
    assert_eq!(sup.restarts(2), 1);
    let resumed = sup.merge(net.sim.now()).unwrap().to_document();
    assert_eq!(
        resumed, baseline,
        "restart from checkpoint must be lossless"
    );
}

/// A shard killed past its restart budget is quarantined; the scan
/// continues degraded: the surviving shards complete their pairs, the
/// merged matrix reports the dead shard's pairs as uncovered with
/// staleness metadata, and the whole scenario is deterministic.
#[test]
fn dead_shard_degrades_scan_without_blocking_it() {
    let run = || {
        let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
        let mut config = supervisor_config(4);
        config.restart_budget = 0; // first crash quarantines
        let obs = Obs::new(ObsConfig::Metrics);
        let mut sup = Supervisor::with_obs(nodes, config, TingConfig::fast(), obs.clone());
        sup.load_locations(&net);
        // Kill shard 1 before it ever measures: every owned pair stays
        // uncovered.
        sup.inject_crash(1, net.sim.now());
        assert_eq!(sup.status(1), ShardStatus::Quarantined);
        for _ in 0..4 {
            let report = sup.run_round(&mut net);
            assert_eq!(report.shards_quarantined, 1);
        }
        assert_eq!(obs.counter_value("ting.shard.crashed"), 1);
        assert_eq!(obs.counter_value("ting.shard.quarantined"), 1);
        assert_eq!(obs.counter_value("ting.shard.restarted"), 0);
        let merged = sup.merge(net.sim.now()).unwrap();
        (merged.to_document(), merged)
    };

    let (doc_a, merged) = run();
    let (doc_b, _) = run();
    assert_eq!(doc_a, doc_b, "degraded runs must be deterministic");

    let dead = &merged.shards[1];
    assert_eq!(dead.status, "dead");
    assert!(dead.owned > 0);
    assert_eq!(dead.covered, 0);
    assert_eq!(dead.uncovered, dead.owned);
    assert_eq!(
        dead.oldest_ns, None,
        "no staleness data for unmeasured pairs"
    );
    for k in [0usize, 2, 3] {
        let live = &merged.shards[k];
        assert_eq!(live.status, "live");
        assert_eq!(
            live.uncovered, 0,
            "surviving shard {k} must complete its pairs"
        );
        assert!(live.oldest_ns.is_some() && live.newest_ns.is_some());
        assert!(live.oldest_ns <= live.newest_ns);
        assert_eq!(live.stale, 0, "just-measured pairs are not stale");
    }
    assert!(merged.coverage() < 1.0);
    // The dead shard's pairs are absent from the matrix itself.
    for &(a, b) in &partition_pairs(merged.matrix.nodes(), 4)[1] {
        assert_eq!(merged.matrix.get(a, b), None);
    }
}

/// A wedged shard — alive but making no progress — trips the heartbeat
/// deadline, is killed and restarted, and then finishes its work.
#[test]
fn heartbeat_detects_wedged_shard_and_restarts_it() {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut config = supervisor_config(3);
    config.heartbeat_timeout = SimDuration::from_hours(1);
    let obs = Obs::new(ObsConfig::Metrics);
    let mut sup = Supervisor::with_obs(nodes, config, TingConfig::fast(), obs.clone());
    sup.load_locations(&net);
    // Wedge shard 1 indefinitely; only the heartbeat can free it.
    sup.inject_hang(1, t(1_000_000));
    let round_secs = 600;
    for round in 0..12u64 {
        net.sim.advance_to(t(round * round_secs).max(net.sim.now()));
        sup.run_round(&mut net);
    }
    assert!(
        obs.counter_value("ting.shard.stalled") >= 1,
        "the wedge must be detected as a stall"
    );
    assert!(obs.counter_value("ting.shard.restarted") >= 1);
    assert_eq!(sup.status(1), ShardStatus::Running);
    let merged = sup.merge(net.sim.now()).unwrap();
    assert_eq!(
        merged.coverage(),
        1.0,
        "the restarted shard must finish its pairs"
    );
}

/// A shard whose stored checkpoint is corrupt restarts fresh — its
/// cache is lost and re-measured — instead of wedging the scan.
#[test]
fn corrupt_checkpoint_restarts_shard_fresh() {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let obs = Obs::new(ObsConfig::Metrics);
    let mut sup =
        Supervisor::with_obs(nodes, supervisor_config(2), TingConfig::fast(), obs.clone());
    sup.load_locations(&net);
    sup.run_round(&mut net); // measures everything (7-pair budget, ~8 owned)
    sup.corrupt_stored_checkpoint(0);
    sup.inject_crash(0, net.sim.now());
    for _ in 0..3 {
        sup.run_round(&mut net);
    }
    assert_eq!(obs.counter_value("ting.shard.checkpoint_corrupt"), 1);
    assert_eq!(sup.status(0), ShardStatus::Running);
    let merged = sup.merge(net.sim.now()).unwrap();
    assert_eq!(
        merged.coverage(),
        1.0,
        "the fresh shard must re-measure its pairs"
    );
}

/// File-backed shard checkpoints: every shard persists its own sealed
/// file, restarts recover through it, and a corrupt primary falls back
/// to `.bak` (visible through the recovery counter).
#[test]
fn file_backed_shards_recover_from_bak_generation() {
    let dir = std::env::temp_dir().join(format!("ting-shard-files-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let obs = Obs::new(ObsConfig::Metrics);
    let mut sup =
        Supervisor::with_obs(nodes, supervisor_config(2), TingConfig::fast(), obs.clone());
    sup.set_checkpoint_dir(&dir);
    sup.load_locations(&net);
    sup.run_round(&mut net);
    sup.run_round(&mut net); // second save promotes a `.bak` generation
    for k in 0..2u32 {
        let path = ting::shard::shard_path(&dir, k);
        assert!(path.exists(), "shard {k} must persist a checkpoint");
        Scanner::load(&path).expect("persisted shard checkpoint must verify");
    }

    // Corrupt shard 0's primary on disk; a crash-restart must recover
    // through the `.bak` generation and say so.
    let path = ting::shard::shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    sup.inject_crash(0, net.sim.now());
    sup.run_round(&mut net);
    assert_eq!(sup.status(0), ShardStatus::Running);
    assert_eq!(obs.counter_value("ting.checkpoint.recovered_bak"), 1);
    assert_eq!(obs.counter_value("ting.shard.checkpoint_corrupt"), 0);
    let merged = sup.merge(net.sim.now()).unwrap();
    assert_eq!(merged.coverage(), 1.0);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Losing a shard's live state without the status flipping — the
/// half-applied crash the old code met with a panic — routes through
/// the ordinary crash path: the round counts the shard as waiting, the
/// crash is metered, and the restarted shard still finishes its pairs.
#[test]
fn scanner_loss_mid_supervision_crashes_the_shard_not_the_supervisor() {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let obs = Obs::new(ObsConfig::Metrics);
    let mut sup =
        Supervisor::with_obs(nodes, supervisor_config(3), TingConfig::fast(), obs.clone());
    sup.load_locations(&net);
    sup.run_round(&mut net);
    sup.inject_scanner_loss(1);
    assert_eq!(
        sup.status(1),
        ShardStatus::Running,
        "the loss leaves the status untouched — that is the hazard"
    );
    let report = sup.run_round(&mut net); // must not panic
    assert!(report.shards_waiting >= 1);
    assert_eq!(obs.counter_value("ting.shard.crashed"), 1);
    for _ in 0..3 {
        sup.run_round(&mut net);
    }
    assert_eq!(sup.status(1), ShardStatus::Running);
    let merged = sup.merge(net.sim.now()).unwrap();
    assert_eq!(merged.coverage(), 1.0, "the shard must recover and finish");
}

/// Replaying the incremental delta stream reproduces exactly the full
/// merge: same matrix, same per-pair freshness. The pipeline's
/// apply-deltas path and the offline `merge()` path agree.
#[test]
fn delta_stream_replays_to_the_full_merge() {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut sup = Supervisor::new(nodes.clone(), supervisor_config(3), TingConfig::fast());
    sup.load_locations(&net);

    let mut matrix = RttMatrix::new(nodes);
    let mut measured_at: HashMap<(NodeId, NodeId), SimTime> = HashMap::new();
    let mut seqs = Vec::new();
    for _ in 0..4 {
        sup.run_round(&mut net);
        let delta = sup.take_delta(net.sim.now());
        seqs.push(delta.seq);
        assert_eq!(delta.statuses, vec!["live"; 3]);
        for p in delta.pairs {
            matrix.set(p.a, p.b, p.rtt_ms);
            measured_at.insert((p.a, p.b), p.measured_at);
            assert!(
                p.lineage.round >= 1,
                "live-scanned pairs must carry a real lineage round"
            );
        }
    }
    assert_eq!(seqs, vec![1, 2, 3, 4], "drains are sequence-numbered");

    // Draining again may re-emit watermark-boundary measurements
    // (inclusive filter), but applying them must change nothing.
    let matrix_before = matrix.to_tsv();
    for p in sup.take_delta(net.sim.now()).pairs {
        assert_eq!(
            measured_at.get(&(p.a, p.b)),
            Some(&p.measured_at),
            "only boundary re-emits"
        );
        matrix.set(p.a, p.b, p.rtt_ms);
    }
    assert_eq!(matrix.to_tsv(), matrix_before, "re-application is a no-op");

    let merged = sup.merge(net.sim.now()).unwrap();
    assert_eq!(matrix.to_tsv(), merged.matrix.to_tsv());
    assert_eq!(measured_at, merged.measured_at);
}

/// A downed shard's frozen last-known-good checkpoint enters the delta
/// stream once per outage — repeated drains while it stays down do not
/// re-emit it, and its watermark stays put so a restore re-covers the
/// gap.
#[test]
fn downed_shard_emits_its_checkpoint_once_per_outage() {
    let mut net = TorNetworkBuilder::testbed(41).vantages(2).build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut sup = Supervisor::new(nodes.clone(), supervisor_config(3), TingConfig::fast());
    sup.load_locations(&net);
    sup.run_round(&mut net);
    sup.inject_crash(1, net.sim.now());

    let owned = partition_pairs(&nodes, 3);
    let has_shard1 = |d: &MergeDelta| d.pairs.iter().any(|p| owned[1].contains(&(p.a, p.b)));
    let d1 = sup.take_delta(net.sim.now());
    assert_eq!(d1.statuses[1], "restarting");
    assert!(
        has_shard1(&d1),
        "the first drain after the crash carries the frozen checkpoint"
    );
    // Crash again without an intervening restore: still one outage as
    // far as the stream is concerned — nothing new to say.
    let d2 = sup.take_delta(net.sim.now());
    assert!(!has_shard1(&d2), "the frozen checkpoint is not re-emitted");

    // Restore (zero backoff) and finish: the shard's fresh
    // measurements re-enter the stream.
    let mut revived = false;
    for _ in 0..4 {
        sup.run_round(&mut net);
        revived |= has_shard1(&sup.take_delta(net.sim.now()));
    }
    assert_eq!(sup.status(1), ShardStatus::Running);
    assert!(revived, "a restored shard's new measurements are drained");
}
