//! Property tests for the RTT-matrix TSV dataset format.
//!
//! §4.6's cacheable all-pairs dataset is only trustworthy if the cache
//! file is: `render ∘ parse == id` must hold exactly — including the
//! f64 payloads, which `to_tsv` prints via `{}` (shortest
//! representation that round-trips) — over arbitrary node sets and
//! coverage patterns.

use netsim::NodeId;
use proptest::prelude::*;
use ting::{RttMatrix, TSV_MAGIC};

/// Arbitrary node-id sets: spread across the u32 range, deduplicated.
fn node_set() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(any::<u32>(), 1..24).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(NodeId).collect()
    })
}

/// Finite f64 values drawn from raw bit patterns, so subnormals, huge
/// magnitudes, and awkward fractions all appear — not just round
/// decimals.
fn exact_f64s() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any::<u64>(), 0..64).prop_map(|bits| {
        bits.into_iter()
            .map(f64::from_bits)
            .map(|v| if v.is_finite() { v } else { 1.5 })
            .collect()
    })
}

proptest! {
    #[test]
    fn tsv_roundtrip_is_identity(nodes in node_set(), values in exact_f64s()) {
        let mut m = RttMatrix::new(nodes.clone());
        // Fill an arbitrary prefix of the pair list with exact values.
        let mut vi = values.iter();
        'fill: for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                match vi.next() {
                    Some(&v) => m.set(a, b, v),
                    None => break 'fill,
                }
            }
        }
        let tsv = m.to_tsv();
        let back = RttMatrix::from_tsv(&tsv).expect("own rendering must parse");
        prop_assert_eq!(&back, &m);
        // And rendering the parsed matrix is a byte-level fixed point.
        prop_assert_eq!(back.to_tsv(), tsv);
    }

    #[test]
    fn tsv_parser_never_panics_on_arbitrary_text(text in "[a-z0-9\t\n #.:-]{0,200}") {
        // Errors are fine; aborts are not. (Pre-fix, a row naming an
        // unknown node panicked instead of erroring.)
        let _ = RttMatrix::from_tsv(&text);
    }

    #[test]
    fn tsv_corrupted_node_id_never_loads_silently(frac in 1u32..1000, denom in 1u32..100) {
        // A fractional id anywhere must fail the whole load — the
        // pre-fix parser truncated it through f64 and filed the row
        // under the wrong pair.
        let doc = format!(
            "{TSV_MAGIC}\n# nodes: 1 2 3\n1\t2\t10.5\n{frac}.{denom}\t3\t4.5\n"
        );
        prop_assert!(RttMatrix::from_tsv(&doc).is_err());
    }
}

#[test]
fn corruption_cases_for_each_error_path() {
    let good = format!("{TSV_MAGIC}\n# nodes: 1 2 3\n1\t2\t10.5\n2\t3\t4.25\n");
    assert!(RttMatrix::from_tsv(&good).is_ok());

    let cases: &[(&str, String)] = &[
        ("empty input", String::new()),
        ("wrong magic", good.replacen("v1", "v9", 1)),
        ("missing node list", format!("{TSV_MAGIC}\n")),
        (
            "malformed node list",
            good.replacen("# nodes:", "# relays:", 1),
        ),
        (
            "fractional header id",
            good.replacen("# nodes: 1 2 3", "# nodes: 1 2.5 3", 1),
        ),
        (
            "duplicate header id",
            good.replacen("# nodes: 1 2 3", "# nodes: 1 2 2", 1),
        ),
        (
            "unknown node in row",
            good.replacen("2\t3\t4.25", "2\t9\t4.25", 1),
        ),
        (
            "fractional row id",
            good.replacen("2\t3\t4.25", "2.5\t3\t4.25", 1),
        ),
        (
            "oversized row id",
            good.replacen("2\t3\t4.25", "5000000000\t3\t4.25", 1),
        ),
        ("missing rtt field", good.replacen("2\t3\t4.25", "2\t3", 1)),
        ("unparseable rtt", good.replacen("4.25", "fast", 1)),
        ("non-finite rtt", good.replacen("4.25", "nan", 1)),
    ];
    for (what, doc) in cases {
        assert!(
            RttMatrix::from_tsv(doc).is_err(),
            "{what}: corrupt document must be refused:\n{doc}"
        );
    }
}
