//! Tests for the multi-vantage parallel scanner: the incremental work
//! queue is held to bit-equality with the O(n²) reference planner over
//! randomized histories, `K = 1` parallel scans are held bit-identical
//! to the sequential scanner, and `K = 4` must actually halve the
//! virtual time of a full all-pairs scan.

use netsim::{NodeId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;
use ting::{Scanner, ScannerConfig, Ting, TingConfig, WorkQueue};
use tor_sim::TorNetworkBuilder;

const STALENESS_S: u64 = 1_000;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Renders a checkpoint for a scanner whose final state is `measured`
/// (pair → measurement time, seconds) and `failed` (pair → backoff
/// deadline, seconds), so the O(n²) `plan_round` reference can be
/// queried against an arbitrary history's end state.
fn checkpoint(
    nodes: u32,
    pairs_per_round: usize,
    measured: &BTreeMap<(u32, u32), u64>,
    failed: &BTreeMap<(u32, u32), u64>,
) -> String {
    let mut out = String::from("# ting scan checkpoint v1\n# nodes:");
    for i in 0..nodes {
        out.push_str(&format!(" {i}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "# config: staleness_ns={} pairs_per_round={pairs_per_round} \
         retry_backoff_ns=1000000000 retry_backoff_cap_ns=2000000000\n",
        STALENESS_S * 1_000_000_000
    ));
    for (&(a, b), &t_s) in measured {
        out.push_str(&format!("m\t{a}\t{b}\t10\t{}\n", t_s * 1_000_000_000));
    }
    for (&(a, b), &until_s) in failed {
        out.push_str(&format!("f\t{a}\t{b}\t1\t{}\n", until_s * 1_000_000_000));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental queue's plan must be bit-equal to the O(n²)
    /// reference sweep after any sequence of measurement successes and
    /// failures, queried at any (non-decreasing) instant and round cap.
    #[test]
    fn work_queue_plan_matches_reference_plan_round(
        n in 3u32..8,
        limit in 1usize..30,
        events in prop::collection::vec((any::<u16>(), any::<u8>(), 0u64..400), 0..60),
    ) {
        let node_ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut queue = WorkQueue::new(node_ids, SimDuration::from_secs(STALENESS_S));
        // Shadow maps with the scanner's exact record semantics: a
        // success overwrites the timestamp and clears any backoff; a
        // failure sets the backoff and keeps the measurement history.
        let mut measured: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut failed: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut clock = 0u64;
        for (sel, kind, dt) in events {
            clock += dt;
            let i = (sel as u32) % n;
            let j = (i + 1 + ((sel as u32) / n) % (n - 1)) % n;
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            if kind % 2 == 0 {
                queue.on_measured(NodeId(a), NodeId(b), t(clock));
                measured.insert((a, b), clock);
                failed.remove(&(a, b));
            } else {
                let until = clock + 1 + (kind as u64 % 7) * 100;
                queue.on_failed(NodeId(a), NodeId(b), t(until));
                failed.insert((a, b), until);
            }
        }
        let reference =
            Scanner::from_checkpoint(&checkpoint(n, limit, &measured, &failed)).unwrap();
        for now_s in [clock, clock + STALENESS_S / 2, clock + 2 * STALENESS_S + 700] {
            prop_assert_eq!(reference.plan_round(t(now_s)), queue.plan(t(now_s), limit));
        }
    }
}

/// Runs a 3-round scan over 6 relays on an identically seeded testbed
/// and returns the full scanner checkpoint (matrix values + timestamps).
fn scan_checkpoint(vantages: Option<usize>, parallel: bool) -> String {
    let mut builder = TorNetworkBuilder::testbed(97);
    if let Some(k) = vantages {
        builder = builder.vantages(k);
    }
    let mut net = builder.build();
    let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            pairs_per_round: 7,
            ..ScannerConfig::default()
        },
    );
    let ting = Ting::new(TingConfig::fast());
    for _ in 0..3 {
        if parallel {
            scanner.run_round_parallel(&mut net, &ting);
        } else {
            scanner.run_round(&mut net, &ting);
        }
    }
    scanner.to_checkpoint()
}

/// K = 1 must not perturb the sequential scanner in any way: neither
/// provisioning a (single) vantage pool nor routing through the
/// parallel entry point may change a single bit of the output.
#[test]
fn k1_parallel_scan_is_bit_identical_to_sequential() {
    let baseline = scan_checkpoint(None, false);
    assert_eq!(baseline, scan_checkpoint(Some(1), false));
    assert_eq!(baseline, scan_checkpoint(Some(1), true));
}

/// A fixed (seed, K) must reproduce the interleaved scan exactly,
/// estimates and timestamps included.
#[test]
fn parallel_scan_is_deterministic_for_fixed_seed_and_k() {
    let run = || {
        let mut net = TorNetworkBuilder::testbed(7).vantages(3).build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(6).collect();
        let mut scanner = Scanner::new(
            nodes,
            ScannerConfig {
                pairs_per_round: 8,
                ..ScannerConfig::default()
            },
        );
        let ting = Ting::new(TingConfig::fast());
        let r1 = scanner.run_round_parallel(&mut net, &ting);
        let r2 = scanner.run_round_parallel(&mut net, &ting);
        (scanner.to_checkpoint(), net.sim.now(), r1, r2)
    };
    assert_eq!(run(), run());
}

/// The tentpole acceptance: on a 40-relay network, K = 4 vantages must
/// complete a full all-pairs scan in at most half the virtual time of
/// the sequential scanner, while both reach full coverage.
#[test]
fn four_vantages_halve_full_scan_virtual_time() {
    let full_scan = |k: usize| {
        let mut net = TorNetworkBuilder::live(41, 40).vantages(k).build();
        let nodes: Vec<NodeId> = net.relays.clone();
        let pairs = nodes.len() * (nodes.len() - 1) / 2;
        let mut scanner = Scanner::new(
            nodes,
            ScannerConfig {
                pairs_per_round: pairs,
                ..ScannerConfig::default()
            },
        );
        let ting = Ting::new(TingConfig::with_samples(3));
        let report = scanner.run_round_parallel(&mut net, &ting);
        assert_eq!(
            report.measured + report.failed,
            pairs,
            "round must attempt every pair"
        );
        assert!(
            scanner.coverage() > 0.95,
            "k={k}: coverage {:.3}",
            scanner.coverage()
        );
        net.sim.now() - SimTime::ZERO
    };
    let sequential = full_scan(1);
    let interleaved = full_scan(4);
    assert!(
        interleaved.as_nanos() * 2 <= sequential.as_nanos(),
        "k=4 took {:.1} virtual s vs {:.1} sequential — not a 2x speedup",
        interleaved.as_secs_f64(),
        sequential.as_secs_f64()
    );
}
