//! All-pairs RTT matrices.
//!
//! §4.6 argues Ting's measurements are stable enough that "taking
//! measurements with Ting infrequently and caching them is sufficient,
//! and thus permits obtaining a large dataset of RTTs between Tor
//! nodes." [`RttMatrix`] is that dataset: symmetric, indexed by relay,
//! serializable to TSV so experiment binaries can regenerate or reload
//! it, and the input to every §5 application.

use crate::orchestrator::{Ting, TingError};
use netsim::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;
use tor_sim::TorNetwork;

/// A symmetric all-pairs RTT dataset over a fixed relay set.
#[derive(Debug, Clone, PartialEq)]
pub struct RttMatrix {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    /// Row-major upper-triangular storage; `None` = unmeasured.
    rtt_ms: Vec<Option<f64>>,
}

/// The first line of the [`RttMatrix::to_tsv`] format. Loaders refuse
/// anything else: a missing or unknown version means the file is not a
/// dataset this code knows how to interpret, and silently parsing it
/// anyway is how corrupt caches are born.
pub const TSV_MAGIC: &str = "# ting all-pairs rtt matrix v1";

impl RttMatrix {
    /// Creates an empty matrix over `nodes`.
    ///
    /// # Panics
    /// Panics on duplicate nodes.
    pub fn new(nodes: Vec<NodeId>) -> RttMatrix {
        RttMatrix::try_new(nodes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor for load paths: duplicate nodes become an
    /// error instead of a panic.
    pub fn try_new(nodes: Vec<NodeId>) -> Result<RttMatrix, String> {
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            if index.insert(*n, i).is_some() {
                return Err(format!("duplicate node {}", n.0));
            }
        }
        let n = nodes.len();
        Ok(RttMatrix {
            nodes,
            index,
            rtt_ms: vec![None; n * (n + 1) / 2],
        })
    }

    /// The relay set, in index order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn tri_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Upper triangle incl. diagonal, row-major.
        lo * self.nodes.len() - lo * (lo + 1) / 2 + hi
    }

    /// Records a measurement (symmetric).
    ///
    /// # Panics
    /// Panics on a non-finite RTT or a node outside the matrix; load
    /// paths that cannot trust their input use [`RttMatrix::try_set`].
    pub fn set(&mut self, a: NodeId, b: NodeId, rtt_ms: f64) {
        self.try_set(a, b, rtt_ms).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`RttMatrix::set`]: unknown nodes and non-finite RTTs
    /// become errors instead of panics.
    pub fn try_set(&mut self, a: NodeId, b: NodeId, rtt_ms: f64) -> Result<(), String> {
        if !rtt_ms.is_finite() {
            return Err(format!("non-finite RTT {rtt_ms}"));
        }
        let lookup = |n: NodeId| -> Result<usize, String> {
            self.index
                .get(&n)
                .copied()
                .ok_or_else(|| format!("unknown node {}", n.0))
        };
        let (ia, ib) = (lookup(a)?, lookup(b)?);
        let idx = self.tri_index(ia, ib);
        self.rtt_ms[idx] = Some(rtt_ms);
        Ok(())
    }

    /// Looks up a pair (symmetric). The diagonal is implicitly 0.
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let (ia, ib) = (*self.index.get(&a)?, *self.index.get(&b)?);
        self.rtt_ms[self.tri_index(ia, ib)]
    }

    /// Iterates all measured off-diagonal pairs `(a, b, rtt)` with
    /// `a` before `b` in index order.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        let n = self.nodes.len();
        (0..n).flat_map(move |i| {
            ((i + 1)..n).filter_map(move |j| {
                self.rtt_ms[self.tri_index(i, j)].map(|v| (self.nodes[i], self.nodes[j], v))
            })
        })
    }

    /// Number of measured off-diagonal pairs.
    pub fn measured_pairs(&self) -> usize {
        self.pairs().count()
    }

    /// Whether every off-diagonal pair is measured.
    pub fn is_complete(&self) -> bool {
        self.measured_pairs() == self.len() * (self.len() - 1) / 2
    }

    /// The mean measured RTT — the `µ` of deanonymization Algorithm 1
    /// ("the average RTT across the entire all-pairs data").
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for (_, _, v) in self.pairs() {
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// All measured RTT values (for CDFs, Fig. 11).
    pub fn values(&self) -> Vec<f64> {
        self.pairs().map(|(_, _, v)| v).collect()
    }

    /// Serializes to a TSV document (`a b rtt_ms` per line, header with
    /// the node list) — the cacheable dataset §4.6 calls for.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("# ting all-pairs rtt matrix v1\n");
        out.push_str("# nodes:");
        for n in &self.nodes {
            let _ = write!(out, " {}", n.0);
        }
        out.push('\n');
        for (a, b, v) in self.pairs() {
            // `{}` prints the shortest representation that parses back
            // to the identical f64, so save/load roundtrips exactly.
            let _ = writeln!(out, "{}\t{}\t{}", a.0, b.0, v);
        }
        out
    }

    /// Measures the full matrix over `nodes` with Ting, one pair at a
    /// time in index order. `progress` is called after each pair with
    /// `(done, total)` — pass `|_, _| {}` to ignore.
    pub fn measure(
        net: &mut TorNetwork,
        nodes: Vec<NodeId>,
        ting: &Ting,
        mut progress: impl FnMut(usize, usize),
    ) -> Result<RttMatrix, TingError> {
        let mut m = RttMatrix::new(nodes);
        let n = m.len();
        let total = n * (n - 1) / 2;
        let mut done = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (m.nodes[i], m.nodes[j]);
                let measurement = ting.measure_pair(net, a, b)?;
                m.set(a, b, measurement.estimate_ms());
                done += 1;
                progress(done, total);
            }
        }
        Ok(m)
    }

    /// Parses the [`RttMatrix::to_tsv`] format.
    ///
    /// The loader is strict where it used to be forgiving, because a
    /// cached dataset that loads wrongly poisons every downstream
    /// application: the version line must match [`TSV_MAGIC`] exactly,
    /// node IDs must be integer `u32` tokens (no `f64` round-trip that
    /// would silently truncate `4.7` to node 4), and a data row naming
    /// a node absent from the header is an error, not a panic.
    pub fn from_tsv(text: &str) -> Result<RttMatrix, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty input")?;
        if magic.trim_end() != TSV_MAGIC {
            return Err(format!(
                "unsupported matrix header {magic:?} (expected {TSV_MAGIC:?})"
            ));
        }
        let nodes_line = lines.next().ok_or("missing node list")?;
        let nodes: Vec<NodeId> = nodes_line
            .strip_prefix("# nodes:")
            .ok_or_else(|| format!("line 2 is not a '# nodes:' list: {nodes_line:?}"))?
            .split_whitespace()
            .map(|t| {
                t.parse::<u32>()
                    .map(NodeId)
                    .map_err(|_| format!("line 2: invalid node id {t:?} (expected a u32)"))
            })
            .collect::<Result<_, _>>()?;
        let mut m = RttMatrix::try_new(nodes)?;
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let n = lineno + 3;
            let mut f = line.split('\t');
            let mut field = |what: &str| -> Result<&str, String> {
                f.next()
                    .ok_or_else(|| format!("line {n}: missing {what} field"))
            };
            let node = |t: &str| -> Result<NodeId, String> {
                t.parse::<u32>()
                    .map(NodeId)
                    .map_err(|_| format!("line {n}: invalid node id {t:?} (expected a u32)"))
            };
            let a = node(field("source node")?)?;
            let b = node(field("destination node")?)?;
            let v = field("rtt")?
                .parse::<f64>()
                .map_err(|e| format!("line {n}: invalid rtt: {e}"))?;
            m.try_set(a, b, v).map_err(|e| format!("line {n}: {e}"))?;
        }
        Ok(m)
    }

    /// Builds the compact index-addressed read view of this matrix.
    pub fn view(&self) -> RttView {
        let n = self.nodes.len();
        let mut rtt_ms = vec![f64::NAN; n * n];
        for i in 0..n {
            rtt_ms[i * n + i] = 0.0;
            for j in (i + 1)..n {
                if let Some(v) = self.rtt_ms[self.tri_index(i, j)] {
                    rtt_ms[i * n + j] = v;
                    rtt_ms[j * n + i] = v;
                }
            }
        }
        RttView {
            nodes: self.nodes.clone(),
            index: self.index.iter().map(|(n, &i)| (*n, i as u32)).collect(),
            rtt_ms,
        }
    }
}

/// A compact, immutable, index-addressed read view of an [`RttMatrix`].
///
/// Query services resolve `NodeId`s to dense indices once per request
/// and then work entirely in index space: a lookup is a multiply and a
/// load from a row-major `n × n` table (`NaN` = unmeasured, diagonal
/// 0), each node's distances are one contiguous [`RttView::row`] for
/// k-nearest scans, and the detour kernel streams two rows linearly —
/// no per-query `HashMap` hops anywhere on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct RttView {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, u32>,
    /// Row-major `n × n`; `NaN` = unmeasured, diagonal 0.
    rtt_ms: Vec<f64>,
}

/// The best single-relay detour the kernel found for one pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetourBest {
    /// Dense index of the via relay.
    pub via: u32,
    /// `R(s, via) + R(via, d)` in milliseconds.
    pub rtt_ms: f64,
}

impl RttView {
    /// The relay set, in index order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resolves a node to its dense index.
    pub fn index_of(&self, n: NodeId) -> Option<u32> {
        self.index.get(&n).copied()
    }

    /// The node at a dense index.
    pub fn node(&self, i: u32) -> NodeId {
        self.nodes[i as usize]
    }

    /// Index-space lookup; `None` = unmeasured. The diagonal is 0.
    #[inline]
    pub fn get_idx(&self, i: u32, j: u32) -> Option<f64> {
        let v = self.rtt_ms[i as usize * self.nodes.len() + j as usize];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Node-space lookup (resolves both IDs, then [`RttView::get_idx`]).
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let (i, j) = (self.index_of(a)?, self.index_of(b)?);
        self.get_idx(i, j)
    }

    /// Node `i`'s full distance row (`NaN` = unmeasured).
    #[inline]
    pub fn row(&self, i: u32) -> &[f64] {
        let n = self.nodes.len();
        &self.rtt_ms[i as usize * n..(i as usize + 1) * n]
    }

    /// Number of measured off-diagonal pairs.
    pub fn measured_pairs(&self) -> usize {
        let n = self.nodes.len();
        (0..n)
            .map(|i| {
                self.row(i as u32)[i + 1..]
                    .iter()
                    .filter(|v| !v.is_nan())
                    .count()
            })
            .sum()
    }

    /// The shared ShorTor/TIV detour kernel: the via relay minimizing
    /// `R(s, v) + R(v, d)` over every relay `v ∉ {s, d}` with both legs
    /// measured. Candidates are scanned in index order with a strict
    /// improvement test, so ties keep the lowest index — the same
    /// deterministic answer `analysis::tiv` has always produced.
    /// Returns `None` when no third relay has both legs measured.
    pub fn best_detour(&self, i: u32, j: u32) -> Option<DetourBest> {
        let (row_i, row_j) = (self.row(i), self.row(j));
        let mut best: Option<DetourBest> = None;
        for v in 0..self.nodes.len() as u32 {
            if v == i || v == j {
                continue;
            }
            // NaN legs propagate into a NaN sum, which fails the `<`
            // test — unmeasured candidates drop out for free.
            let detour = row_i[v as usize] + row_j[v as usize];
            if best.is_none_or(|b| detour < b.rtt_ms) && !detour.is_nan() {
                best = Some(DetourBest {
                    via: v,
                    rtt_ms: detour,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn set_get_symmetric() {
        let mut m = RttMatrix::new(nodes(4));
        m.set(NodeId(1), NodeId(3), 42.5);
        assert_eq!(m.get(NodeId(1), NodeId(3)), Some(42.5));
        assert_eq!(m.get(NodeId(3), NodeId(1)), Some(42.5));
        assert_eq!(m.get(NodeId(0), NodeId(2)), None);
        assert_eq!(m.get(NodeId(2), NodeId(2)), Some(0.0));
    }

    #[test]
    fn completeness_tracking() {
        let mut m = RttMatrix::new(nodes(3));
        assert!(!m.is_complete());
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(0), NodeId(2), 2.0);
        assert_eq!(m.measured_pairs(), 2);
        m.set(NodeId(1), NodeId(2), 3.0);
        assert!(m.is_complete());
        assert_eq!(m.mean_rtt_ms(), Some(2.0));
    }

    #[test]
    fn pairs_iterate_upper_triangle_once() {
        let mut m = RttMatrix::new(nodes(3));
        m.set(NodeId(2), NodeId(0), 9.0); // reversed order on set
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(2), 9.0)]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut m = RttMatrix::new(vec![NodeId(4), NodeId(7), NodeId(9)]);
        m.set(NodeId(4), NodeId(7), 12.25);
        m.set(NodeId(7), NodeId(9), 80.5);
        let tsv = m.to_tsv();
        let back = RttMatrix::from_tsv(&tsv).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tsv_rejects_garbage() {
        assert!(RttMatrix::from_tsv("").is_err());
        assert!(RttMatrix::from_tsv("# x\n# nodes: 1 2\n1\tnope\t3").is_err());
    }

    #[test]
    fn overwrite_updates_value() {
        let mut m = RttMatrix::new(nodes(2));
        m.set(NodeId(0), NodeId(1), 5.0);
        m.set(NodeId(1), NodeId(0), 6.0);
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(6.0));
    }

    #[test]
    #[should_panic]
    fn duplicate_nodes_rejected() {
        let _ = RttMatrix::new(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut m = RttMatrix::new(nodes(2));
        m.set(NodeId(0), NodeId(1), f64::NAN);
    }

    #[test]
    fn tsv_rejects_unknown_node_in_data_row() {
        // Regression: `from_tsv` used to panic in `set` (`self.index[&a]`)
        // when a data row named a node absent from the header.
        let doc = format!("{TSV_MAGIC}\n# nodes: 1 2\n1\t9\t3.5\n");
        let err = RttMatrix::from_tsv(&doc).expect_err("unknown node must be an error");
        assert!(err.contains("line 3"), "error must locate the row: {err}");
        assert!(
            err.contains("unknown node 9"),
            "error must name the node: {err}"
        );
    }

    #[test]
    fn tsv_rejects_non_integer_node_ids() {
        // Regression: node IDs were parsed through the shared `f64`
        // closure then truncated `as u32`, so `4.7` silently became
        // node 4 and the row loaded under the wrong pair.
        let doc = format!("{TSV_MAGIC}\n# nodes: 4 5\n4.7\t5\t3.5\n");
        let err = RttMatrix::from_tsv(&doc).expect_err("fractional id must be an error");
        assert!(err.contains("invalid node id \"4.7\""), "{err}");
        // IDs beyond u32 (where an f64 round-trip would also lose
        // precision past 2^53) are refused, not wrapped.
        let doc = format!("{TSV_MAGIC}\n# nodes: 4 5\n99999999999999999999\t5\t3.5\n");
        assert!(RttMatrix::from_tsv(&doc).is_err());
        let doc = format!("{TSV_MAGIC}\n# nodes: 4 5.5\n");
        assert!(
            RttMatrix::from_tsv(&doc).is_err(),
            "header ids are checked too"
        );
    }

    #[test]
    fn tsv_validates_the_magic_line() {
        // Regression: the magic line was read and discarded (`let
        // _magic`), so any garbage first line — or a future format
        // version — parsed as if it were v1.
        let err = RttMatrix::from_tsv("# ting all-pairs rtt matrix v2\n# nodes: 1 2\n")
            .expect_err("unknown versions must be refused");
        assert!(err.contains("unsupported matrix header"), "{err}");
        assert!(RttMatrix::from_tsv("hello\n# nodes: 1 2\n").is_err());
        // The real magic still parses.
        let doc = format!("{TSV_MAGIC}\n# nodes: 1 2\n1\t2\t3.5\n");
        let m = RttMatrix::from_tsv(&doc).unwrap();
        assert_eq!(m.get(NodeId(1), NodeId(2)), Some(3.5));
    }

    #[test]
    fn tsv_rejects_malformed_node_list_and_duplicates() {
        let doc = format!("{TSV_MAGIC}\n1 2\n");
        assert!(
            RttMatrix::from_tsv(&doc).is_err(),
            "missing '# nodes:' prefix"
        );
        let doc = format!("{TSV_MAGIC}\n# nodes: 1 2 1\n");
        let err = RttMatrix::from_tsv(&doc).expect_err("duplicate header node");
        assert!(err.contains("duplicate node 1"), "{err}");
    }

    #[test]
    fn tsv_rejects_non_finite_rtt() {
        // "inf" parses as a perfectly good f64; the matrix still must
        // not accept it.
        let doc = format!("{TSV_MAGIC}\n# nodes: 1 2\n1\t2\tinf\n");
        let err = RttMatrix::from_tsv(&doc).expect_err("non-finite rtt");
        assert!(
            err.contains("line 3") && err.contains("non-finite"),
            "{err}"
        );
    }

    #[test]
    fn try_set_reports_unknown_nodes_and_set_still_panics() {
        let mut m = RttMatrix::new(nodes(2));
        assert!(m.try_set(NodeId(0), NodeId(7), 1.0).is_err());
        assert!(m.try_set(NodeId(0), NodeId(1), f64::INFINITY).is_err());
        assert!(m.try_set(NodeId(0), NodeId(1), 1.5).is_ok());
        assert_eq!(m.get(NodeId(1), NodeId(0)), Some(1.5));
    }

    #[test]
    fn view_agrees_with_matrix() {
        let mut m = RttMatrix::new(nodes(5));
        m.set(NodeId(0), NodeId(1), 10.0);
        m.set(NodeId(3), NodeId(2), 4.25);
        m.set(NodeId(1), NodeId(4), 7.5);
        let v = m.view();
        assert_eq!(v.nodes(), m.nodes());
        assert_eq!(v.measured_pairs(), m.measured_pairs());
        for &a in m.nodes() {
            for &b in m.nodes() {
                assert_eq!(v.get(a, b), m.get(a, b), "({a:?}, {b:?})");
                let (i, j) = (v.index_of(a).unwrap(), v.index_of(b).unwrap());
                assert_eq!(v.get_idx(i, j), m.get(a, b));
            }
        }
        assert_eq!(v.index_of(NodeId(99)), None);
    }

    #[test]
    fn detour_kernel_finds_planted_violation_and_skips_unmeasured() {
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        let mut m = RttMatrix::new(vec![a, b, c, d]);
        m.set(a, b, 100.0);
        m.set(a, c, 20.0);
        m.set(c, b, 20.0);
        // d has an unmeasured leg to b: it must not be a candidate for
        // (a, b) even though a–d is measured (and cheap).
        m.set(a, d, 1.0);
        let v = m.view();
        let best = v.best_detour(0, 1).expect("c has both legs");
        assert_eq!(best.via, 2);
        assert_eq!(best.rtt_ms, 40.0);

        // No third relay has both legs measured → no detour at all.
        let mut sparse = RttMatrix::new(nodes(3));
        sparse.set(NodeId(0), NodeId(1), 5.0);
        assert!(sparse.view().best_detour(0, 1).is_none());
    }

    #[test]
    fn values_match_pairs() {
        let mut m = RttMatrix::new(nodes(3));
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(1), NodeId(2), 2.0);
        let mut v = m.values();
        v.sort_by(f64::total_cmp);
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
