//! All-pairs RTT matrices.
//!
//! §4.6 argues Ting's measurements are stable enough that "taking
//! measurements with Ting infrequently and caching them is sufficient,
//! and thus permits obtaining a large dataset of RTTs between Tor
//! nodes." [`RttMatrix`] is that dataset: symmetric, indexed by relay,
//! serializable to TSV so experiment binaries can regenerate or reload
//! it, and the input to every §5 application.

use crate::orchestrator::{Ting, TingError};
use netsim::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;
use tor_sim::TorNetwork;

/// A symmetric all-pairs RTT dataset over a fixed relay set.
#[derive(Debug, Clone, PartialEq)]
pub struct RttMatrix {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    /// Row-major upper-triangular storage; `None` = unmeasured.
    rtt_ms: Vec<Option<f64>>,
}

impl RttMatrix {
    /// Creates an empty matrix over `nodes`.
    ///
    /// # Panics
    /// Panics on duplicate nodes.
    pub fn new(nodes: Vec<NodeId>) -> RttMatrix {
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            assert!(index.insert(*n, i).is_none(), "duplicate node {n:?}");
        }
        let n = nodes.len();
        RttMatrix {
            nodes,
            index,
            rtt_ms: vec![None; n * (n + 1) / 2],
        }
    }

    /// The relay set, in index order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn tri_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Upper triangle incl. diagonal, row-major.
        lo * self.nodes.len() - lo * (lo + 1) / 2 + hi
    }

    /// Records a measurement (symmetric).
    pub fn set(&mut self, a: NodeId, b: NodeId, rtt_ms: f64) {
        assert!(rtt_ms.is_finite(), "non-finite RTT");
        let (ia, ib) = (self.index[&a], self.index[&b]);
        let idx = self.tri_index(ia, ib);
        self.rtt_ms[idx] = Some(rtt_ms);
    }

    /// Looks up a pair (symmetric). The diagonal is implicitly 0.
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let (ia, ib) = (*self.index.get(&a)?, *self.index.get(&b)?);
        self.rtt_ms[self.tri_index(ia, ib)]
    }

    /// Iterates all measured off-diagonal pairs `(a, b, rtt)` with
    /// `a` before `b` in index order.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        let n = self.nodes.len();
        (0..n).flat_map(move |i| {
            ((i + 1)..n).filter_map(move |j| {
                self.rtt_ms[self.tri_index(i, j)].map(|v| (self.nodes[i], self.nodes[j], v))
            })
        })
    }

    /// Number of measured off-diagonal pairs.
    pub fn measured_pairs(&self) -> usize {
        self.pairs().count()
    }

    /// Whether every off-diagonal pair is measured.
    pub fn is_complete(&self) -> bool {
        self.measured_pairs() == self.len() * (self.len() - 1) / 2
    }

    /// The mean measured RTT — the `µ` of deanonymization Algorithm 1
    /// ("the average RTT across the entire all-pairs data").
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for (_, _, v) in self.pairs() {
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// All measured RTT values (for CDFs, Fig. 11).
    pub fn values(&self) -> Vec<f64> {
        self.pairs().map(|(_, _, v)| v).collect()
    }

    /// Serializes to a TSV document (`a b rtt_ms` per line, header with
    /// the node list) — the cacheable dataset §4.6 calls for.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("# ting all-pairs rtt matrix v1\n");
        out.push_str("# nodes:");
        for n in &self.nodes {
            let _ = write!(out, " {}", n.0);
        }
        out.push('\n');
        for (a, b, v) in self.pairs() {
            // `{}` prints the shortest representation that parses back
            // to the identical f64, so save/load roundtrips exactly.
            let _ = writeln!(out, "{}\t{}\t{}", a.0, b.0, v);
        }
        out
    }

    /// Measures the full matrix over `nodes` with Ting, one pair at a
    /// time in index order. `progress` is called after each pair with
    /// `(done, total)` — pass `|_, _| {}` to ignore.
    pub fn measure(
        net: &mut TorNetwork,
        nodes: Vec<NodeId>,
        ting: &Ting,
        mut progress: impl FnMut(usize, usize),
    ) -> Result<RttMatrix, TingError> {
        let mut m = RttMatrix::new(nodes);
        let n = m.len();
        let total = n * (n - 1) / 2;
        let mut done = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (m.nodes[i], m.nodes[j]);
                let measurement = ting.measure_pair(net, a, b)?;
                m.set(a, b, measurement.estimate_ms());
                done += 1;
                progress(done, total);
            }
        }
        Ok(m)
    }

    /// Parses the [`RttMatrix::to_tsv`] format.
    pub fn from_tsv(text: &str) -> Result<RttMatrix, String> {
        let mut lines = text.lines();
        let _magic = lines.next().ok_or("empty input")?;
        let nodes_line = lines.next().ok_or("missing node list")?;
        let nodes: Vec<NodeId> = nodes_line
            .trim_start_matches("# nodes:")
            .split_whitespace()
            .map(|t| t.parse::<u32>().map(NodeId).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let mut m = RttMatrix::new(nodes);
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split('\t');
            let parse = |t: Option<&str>| -> Result<f64, String> {
                t.ok_or_else(|| format!("line {}: missing field", lineno + 3))?
                    .parse::<f64>()
                    .map_err(|e| e.to_string())
            };
            let a = parse(f.next())? as u32;
            let b = parse(f.next())? as u32;
            let v = parse(f.next())?;
            m.set(NodeId(a), NodeId(b), v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn set_get_symmetric() {
        let mut m = RttMatrix::new(nodes(4));
        m.set(NodeId(1), NodeId(3), 42.5);
        assert_eq!(m.get(NodeId(1), NodeId(3)), Some(42.5));
        assert_eq!(m.get(NodeId(3), NodeId(1)), Some(42.5));
        assert_eq!(m.get(NodeId(0), NodeId(2)), None);
        assert_eq!(m.get(NodeId(2), NodeId(2)), Some(0.0));
    }

    #[test]
    fn completeness_tracking() {
        let mut m = RttMatrix::new(nodes(3));
        assert!(!m.is_complete());
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(0), NodeId(2), 2.0);
        assert_eq!(m.measured_pairs(), 2);
        m.set(NodeId(1), NodeId(2), 3.0);
        assert!(m.is_complete());
        assert_eq!(m.mean_rtt_ms(), Some(2.0));
    }

    #[test]
    fn pairs_iterate_upper_triangle_once() {
        let mut m = RttMatrix::new(nodes(3));
        m.set(NodeId(2), NodeId(0), 9.0); // reversed order on set
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(2), 9.0)]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut m = RttMatrix::new(vec![NodeId(4), NodeId(7), NodeId(9)]);
        m.set(NodeId(4), NodeId(7), 12.25);
        m.set(NodeId(7), NodeId(9), 80.5);
        let tsv = m.to_tsv();
        let back = RttMatrix::from_tsv(&tsv).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tsv_rejects_garbage() {
        assert!(RttMatrix::from_tsv("").is_err());
        assert!(RttMatrix::from_tsv("# x\n# nodes: 1 2\n1\tnope\t3").is_err());
    }

    #[test]
    fn overwrite_updates_value() {
        let mut m = RttMatrix::new(nodes(2));
        m.set(NodeId(0), NodeId(1), 5.0);
        m.set(NodeId(1), NodeId(0), 6.0);
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(6.0));
    }

    #[test]
    #[should_panic]
    fn duplicate_nodes_rejected() {
        let _ = RttMatrix::new(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut m = RttMatrix::new(nodes(2));
        m.set(NodeId(0), NodeId(1), f64::NAN);
    }

    #[test]
    fn values_match_pairs() {
        let mut m = RttMatrix::new(nodes(3));
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(1), NodeId(2), 2.0);
        let mut v = m.values();
        v.sort_by(f64::total_cmp);
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
