//! Interleaved multi-vantage measurement.
//!
//! §6 of the paper sizes all-pairs coverage of the live network by
//! assuming "multiple instances of Ting can run in parallel" from
//! several vantage pairs. This module reproduces that scaling step in
//! the simulator: each vantage `i` (its own proxy, local relay pair
//! `(w_i, z_i)`, and echo server — see
//! [`tor_sim::TorNetworkBuilder::vantages`]) owns one in-flight
//! measurement at a time, and a cooperative driver multiplexes all of
//! them over the single `netsim` event loop so K pairs are measured
//! concurrently *in virtual time*.
//!
//! The sequential [`crate::orchestrator::Ting::measure_pair`] blocks on
//! `run_until_idle`, which cannot overlap two measurements. Here each
//! measurement is a poll-driven state machine ([`PairTask`]) that
//! issues controller commands without draining the queue; the driver
//! ([`measure_interleaved`]) peeks the next event time
//! ([`netsim::Simulator::next_event_at`]), compares it with every
//! task's earliest wake-up deadline, and advances whichever comes
//! first. The event stream — and therefore every estimate — remains a
//! deterministic function of `(seed, K, assignment order)`.

use crate::estimator::{CircuitSamples, TingMeasurement};
use crate::orchestrator::{Ting, TingError};
use crate::timeout::TimeoutPhase;
use netsim::{NodeId, SimDuration, SimTime, Simulator};
use std::collections::VecDeque;
use tor_sim::{CircuitHandle, CircuitStatus, Controller, StreamHandle, StreamStatus, TorNetwork};

/// The completion record of one interleaved pair measurement.
#[derive(Debug)]
pub struct PairOutcome {
    pub x: NodeId,
    pub y: NodeId,
    /// Vantage index that measured the pair.
    pub vantage: usize,
    /// Virtual instant the measurement finished (success or failure).
    pub completed_at: SimTime,
    /// The pair's `scan.pair` trace span, opened by the engine when the
    /// measurement started. The completion handler must close it (the
    /// scanner does so with the validation outcome;
    /// [`measure_interleaved`] closes it with the raw result).
    pub span: obs::SpanId,
    pub result: Result<TingMeasurement, TingError>,
}

/// Where one in-flight measurement currently is.
enum TaskState {
    /// About to build the current phase's circuit.
    StartPhase,
    /// Waiting for the circuit build to settle.
    Building {
        circuit: CircuitHandle,
        deadline: Option<SimTime>,
    },
    /// Waiting for the echo stream to connect.
    Opening {
        circuit: CircuitHandle,
        stream: StreamHandle,
        deadline: Option<SimTime>,
    },
    /// Waiting out the inter-probe spacing.
    Spacing {
        circuit: CircuitHandle,
        stream: StreamHandle,
        resume_at: SimTime,
    },
    /// A probe is in flight.
    AwaitEcho {
        circuit: CircuitHandle,
        stream: StreamHandle,
        expect: Vec<u8>,
        sent_at: SimTime,
        deadline: Option<SimTime>,
    },
    /// Waiting out the retry backoff before rebuilding the circuit.
    Backoff { resume_at: SimTime },
    /// Finished; the result has been recorded.
    Done,
}

/// A poll-driven measurement of one pair through one vantage: the same
/// three-circuit, retry-under-backoff procedure as
/// [`Ting::measure_pair`], restructured so it never drains the event
/// queue itself and can therefore interleave with other tasks.
struct PairTask {
    x: NodeId,
    y: NodeId,
    w: NodeId,
    z: NodeId,
    echo: NodeId,
    /// Vantage index this task measures from (trace attribution).
    vantage: usize,
    /// The open `scan.pair` span (id 0 when not tracing).
    pair_span: obs::SpanId,
    /// The `ting.circuit` span of the in-flight attempt, tagging every
    /// phase/error event recorded while it is open.
    circuit_span: obs::SpanId,
    started: SimTime,
    /// 0 = `C_xy`, 1 = `C_x`, 2 = `C_y`.
    phase: usize,
    /// 1-based attempt counter for the current phase.
    attempt: u32,
    samples: Vec<f64>,
    lost: u32,
    probe_idx: u64,
    phase_samples: Vec<CircuitSamples>,
    /// When the in-flight circuit build was issued (adaptive-timeout
    /// observation).
    build_started: SimTime,
    /// When the in-flight stream open was issued.
    open_started: SimTime,
    state: TaskState,
    result: Option<Result<TingMeasurement, TingError>>,
}

impl PairTask {
    #[allow(clippy::too_many_arguments)]
    fn new(
        x: NodeId,
        y: NodeId,
        w: NodeId,
        z: NodeId,
        echo: NodeId,
        vantage: usize,
        pair_span: obs::SpanId,
        now: SimTime,
    ) -> PairTask {
        PairTask {
            x,
            y,
            w,
            z,
            echo,
            vantage,
            pair_span,
            circuit_span: obs::SpanId(0),
            started: now,
            phase: 0,
            attempt: 1,
            samples: Vec::new(),
            lost: 0,
            probe_idx: 0,
            phase_samples: Vec::new(),
            build_started: now,
            open_started: now,
            state: TaskState::StartPhase,
            result: None,
        }
    }

    /// The relay path of the current phase.
    fn phase_path(&self) -> Vec<NodeId> {
        match self.phase {
            0 => vec![self.w, self.x, self.y, self.z],
            1 => vec![self.w, self.x],
            _ => vec![self.w, self.y],
        }
    }

    fn deadline(sim: &Simulator, timeout_ms: Option<f64>) -> Option<SimTime> {
        timeout_ms.map(|ms| sim.now() + SimDuration::from_millis_f64(ms))
    }

    fn past(sim: &Simulator, deadline: Option<SimTime>) -> bool {
        deadline.is_some_and(|d| sim.now() >= d)
    }

    /// Handles a failed circuit attempt: retry under the same jittered
    /// exponential backoff as the sequential pipeline, or conclude the
    /// measurement once attempts are exhausted (or the failure is
    /// permanent).
    fn fail_attempt(&mut self, sim: &Simulator, ting: &Ting, err: TingError) {
        // Whatever happens next (retry or give up), this attempt's
        // circuit is over — close its span so no error path leaks one.
        ting.observe_circuit_end(self.circuit_span, err.code(), sim.now());
        let max_attempts = ting.config.max_attempts.max(1);
        if !err.is_retryable() || self.attempt >= max_attempts {
            self.result = Some(Err(err));
            self.state = TaskState::Done;
            return;
        }
        let path = self.phase_path();
        let pause_ms = ting.backoff_ms(&path, self.attempt);
        self.attempt += 1;
        ting.metrics.on_retry();
        ting.observe_retry(self.attempt, sim.now());
        ting.metrics.trace(format!(
            "retry attempt={} path={:?} backoff_ms={pause_ms:.1}",
            self.attempt,
            path.iter().map(|n| n.0).collect::<Vec<_>>()
        ));
        self.state = TaskState::Backoff {
            resume_at: sim.now() + SimDuration::from_millis_f64(pause_ms),
        };
    }

    /// Sends the next probe on the open stream.
    fn send_probe(
        &mut self,
        sim: &mut Simulator,
        ctl: &mut Controller,
        ting: &Ting,
        circuit: CircuitHandle,
        stream: StreamHandle,
    ) {
        let payload = ting.probe_payload(self.probe_idx);
        self.probe_idx += 1;
        let sent_at = sim.now();
        let deadline = Self::deadline(sim, ting.phase_timeout_ms(TimeoutPhase::Probe));
        ctl.send(sim, stream, payload.clone());
        self.state = TaskState::AwaitEcho {
            circuit,
            stream,
            expect: payload,
            sent_at,
            deadline,
        };
    }

    /// Advances the state machine as far as it can go at the current
    /// instant. Returns the earliest virtual time this task needs to be
    /// woken at (`None` = it is waiting purely on network events).
    ///
    /// `idle` tells the task the global event queue has drained with no
    /// other task holding a wake-up — the interleaved equivalent of
    /// `run_until_idle` returning in the sequential pipeline, at which
    /// point an unmet condition (circuit not ready, echo not arrived)
    /// can never be met and must be treated as a failure/timeout.
    fn poll(
        &mut self,
        sim: &mut Simulator,
        ctl: &mut Controller,
        ting: &Ting,
        mut idle: bool,
    ) -> Option<SimTime> {
        loop {
            match self.state {
                TaskState::StartPhase => {
                    self.samples.clear();
                    self.lost = 0;
                    self.probe_idx = 0;
                    self.build_started = sim.now();
                    let kind = match self.phase {
                        0 => "full",
                        1 => "x",
                        _ => "y",
                    };
                    let path = self.phase_path();
                    self.circuit_span = ting.observe_circuit_begin(
                        &path,
                        kind,
                        self.attempt,
                        self.vantage,
                        sim.now(),
                    );
                    let deadline = Self::deadline(sim, ting.phase_timeout_ms(TimeoutPhase::Build));
                    let circuit = ctl.build_circuit(sim, path);
                    self.state = TaskState::Building { circuit, deadline };
                }
                TaskState::Building { circuit, deadline } => match ctl.circuit_status(circuit) {
                    CircuitStatus::Ready => {
                        ting.observe_phase_ms(
                            TimeoutPhase::Build,
                            sim.now().since(self.build_started).as_millis_f64(),
                            sim.now(),
                            self.circuit_span,
                        );
                        self.open_started = sim.now();
                        let deadline =
                            Self::deadline(sim, ting.phase_timeout_ms(TimeoutPhase::Stream));
                        let stream = ctl.open_stream(sim, circuit, self.echo);
                        self.state = TaskState::Opening {
                            circuit,
                            stream,
                            deadline,
                        };
                    }
                    status => {
                        let settled = status == CircuitStatus::Failed;
                        if !settled && !Self::past(sim, deadline) && !idle {
                            return deadline;
                        }
                        idle = false;
                        let path = self.phase_path();
                        let permanent = ctl.circuit_error(circuit).is_some();
                        ting.metrics.on_circuit_failed();
                        ting.metrics.trace(format!(
                            "circuit_failed path={:?} permanent={permanent}",
                            path.iter().map(|n| n.0).collect::<Vec<_>>()
                        ));
                        ctl.close_circuit(sim, circuit);
                        let err = TingError::CircuitBuildFailed { path, permanent };
                        ting.observe_error(&err, sim.now(), self.circuit_span);
                        self.fail_attempt(sim, ting, err);
                    }
                },
                TaskState::Opening {
                    circuit,
                    stream,
                    deadline,
                } => match ctl.stream_status(stream) {
                    StreamStatus::Open => {
                        ting.observe_phase_ms(
                            TimeoutPhase::Stream,
                            sim.now().since(self.open_started).as_millis_f64(),
                            sim.now(),
                            self.circuit_span,
                        );
                        self.send_probe(sim, ctl, ting, circuit, stream);
                    }
                    status => {
                        let settled = status != StreamStatus::Connecting;
                        if !settled && !Self::past(sim, deadline) && !idle {
                            return deadline;
                        }
                        idle = false;
                        ting.metrics
                            .trace(format!("stream_failed circuit={}", circuit.0));
                        ctl.close_circuit(sim, circuit);
                        ting.observe_error(&TingError::StreamFailed, sim.now(), self.circuit_span);
                        self.fail_attempt(sim, ting, TingError::StreamFailed);
                    }
                },
                TaskState::Spacing {
                    circuit,
                    stream,
                    resume_at,
                } => {
                    if sim.now() < resume_at {
                        return Some(resume_at);
                    }
                    self.send_probe(sim, ctl, ting, circuit, stream);
                }
                TaskState::AwaitEcho {
                    circuit,
                    stream,
                    ref expect,
                    sent_at,
                    deadline,
                } => {
                    let echoed = ctl
                        .take_received(stream)
                        .into_iter()
                        .filter(|(arrival, data)| *arrival >= sent_at && data == expect)
                        .map(|(arrival, _)| (arrival - sent_at).as_millis_f64())
                        .next_back();
                    match echoed {
                        Some(rtt) => {
                            ting.observe_phase_ms(
                                TimeoutPhase::Probe,
                                rtt,
                                sim.now(),
                                self.circuit_span,
                            );
                            self.samples.push(rtt);
                            if ting.config.policy.wants_more(&self.samples) {
                                self.pause_or_probe(sim, ctl, ting, circuit, stream);
                            } else {
                                self.finish_phase(sim, ctl, ting, circuit, stream);
                            }
                        }
                        None => {
                            if !Self::past(sim, deadline) && !idle {
                                return deadline;
                            }
                            idle = false;
                            self.lost += 1;
                            ting.metrics.on_probe_timed_out();
                            ting.observe_probe_timeout();
                            if self.lost > ting.config.max_lost_probes {
                                ting.metrics.trace(format!(
                                    "probes_lost circuit={} lost={}",
                                    circuit.0, self.lost
                                ));
                                ctl.close_stream(sim, stream);
                                ctl.close_circuit(sim, circuit);
                                ting.observe_error(
                                    &TingError::ProbeLost,
                                    sim.now(),
                                    self.circuit_span,
                                );
                                self.fail_attempt(sim, ting, TingError::ProbeLost);
                            } else {
                                self.pause_or_probe(sim, ctl, ting, circuit, stream);
                            }
                        }
                    }
                }
                TaskState::Backoff { resume_at } => {
                    if sim.now() < resume_at {
                        return Some(resume_at);
                    }
                    self.state = TaskState::StartPhase;
                }
                TaskState::Done => return None,
            }
        }
    }

    /// Waits out the probe spacing (if configured) before the next
    /// probe. The first probe of a circuit never waits.
    fn pause_or_probe(
        &mut self,
        sim: &mut Simulator,
        ctl: &mut Controller,
        ting: &Ting,
        circuit: CircuitHandle,
        stream: StreamHandle,
    ) {
        if ting.config.probe_spacing_ms > 0.0 && self.probe_idx > 0 {
            self.state = TaskState::Spacing {
                circuit,
                stream,
                resume_at: sim.now() + SimDuration::from_millis_f64(ting.config.probe_spacing_ms),
            };
        } else {
            self.send_probe(sim, ctl, ting, circuit, stream);
        }
    }

    /// Seals the current phase's samples, tears the circuit down, and
    /// either advances to the next phase or completes the measurement.
    fn finish_phase(
        &mut self,
        sim: &mut Simulator,
        ctl: &mut Controller,
        ting: &Ting,
        circuit: CircuitHandle,
        stream: StreamHandle,
    ) {
        ctl.close_stream(sim, stream);
        ctl.close_circuit(sim, circuit);
        ting.observe_circuit_end(self.circuit_span, "ok", sim.now());
        self.phase_samples
            .push(CircuitSamples::new(std::mem::take(&mut self.samples)));
        self.phase += 1;
        self.attempt = 1;
        if self.phase == 3 {
            let y_leg = self.phase_samples.pop().expect("three phases");
            let x_leg = self.phase_samples.pop().expect("three phases");
            let full = self.phase_samples.pop().expect("three phases");
            let elapsed_s = (sim.now() - self.started).as_secs_f64();
            self.result = Some(Ok(TingMeasurement {
                full,
                x_leg,
                y_leg,
                elapsed_s,
            }));
            self.state = TaskState::Done;
        } else {
            self.state = TaskState::StartPhase;
        }
    }
}

/// Measures `assignments` — `(vantage, x, y)` triples — with one
/// in-flight measurement per vantage, interleaved over the shared event
/// loop so up to [`TorNetwork::vantage_count`] pairs progress
/// concurrently in virtual time. Each vantage works through its own
/// shard of the assignment list in order; outcomes are returned in
/// completion order (deterministic for a fixed network and assignment
/// list). The engine closes each pair's trace span with the raw
/// measurement outcome; use [`measure_interleaved_with`] to take over
/// completion handling (the scanner does, closing spans with the
/// validation verdict instead).
///
/// # Panics
/// Panics when an assignment names a vantage the network does not have,
/// or when the driver detects a livelock (a task neither progressing
/// nor holding a wake-up — a bug, not an expected runtime condition).
pub fn measure_interleaved(
    net: &mut TorNetwork,
    ting: &Ting,
    assignments: &[(usize, NodeId, NodeId)],
) -> Vec<PairOutcome> {
    let mut outcomes = Vec::with_capacity(assignments.len());
    measure_interleaved_with(net, ting, assignments, |outcome| {
        let label = match &outcome.result {
            Ok(_) => "ok",
            Err(e) => e.code(),
        };
        ting.observe_pair_end(outcome.span, label, outcome.completed_at);
        outcomes.push(outcome);
    });
    outcomes
}

/// [`measure_interleaved`] with a custom completion handler:
/// `on_complete` runs *at the virtual instant each measurement
/// finishes* (the simulation has not advanced past
/// [`PairOutcome::completed_at`]), so bookkeeping it performs — cache
/// updates, health accounting, trace events — lands at the completion
/// time and the trace stays time-ordered. The handler owns the pair's
/// `scan.pair` span ([`PairOutcome::span`]) and must close it.
pub fn measure_interleaved_with(
    net: &mut TorNetwork,
    ting: &Ting,
    assignments: &[(usize, NodeId, NodeId)],
    mut on_complete: impl FnMut(PairOutcome),
) {
    let k = net.vantage_count();
    let mut shards: Vec<VecDeque<(NodeId, NodeId)>> = (0..k).map(|_| VecDeque::new()).collect();
    for &(v, x, y) in assignments {
        assert!(v < k, "assignment to vantage {v} but only {k} provisioned");
        shards[v].push_back((x, y));
    }
    let mut active: Vec<Option<PairTask>> = (0..k).map(|_| None).collect();
    let mut idle_pending = false;
    let mut stuck_polls = 0u32;

    loop {
        let idle = std::mem::take(&mut idle_pending);
        let mut wake: Option<SimTime> = None;
        let mut any_active = false;
        for v in 0..k {
            if active[v].is_none() {
                if let Some((x, y)) = shards[v].pop_front() {
                    let (w, z, echo) = net.vantage_endpoints(v);
                    let span = ting.observe_pair_begin(x, y, v, net.sim.now());
                    active[v] = Some(PairTask::new(x, y, w, z, echo, v, span, net.sim.now()));
                }
            }
            let Some(task) = active[v].as_mut() else {
                continue;
            };
            any_active = true;
            let (sim, ctl, _, _, _) = net.vantage_parts(v);
            let hint = task.poll(sim, ctl, ting, idle);
            if let Some(result) = task.result.take() {
                on_complete(PairOutcome {
                    x: task.x,
                    y: task.y,
                    vantage: v,
                    completed_at: net.sim.now(),
                    span: task.pair_span,
                    result,
                });
                active[v] = None;
            } else if let Some(h) = hint {
                wake = Some(wake.map_or(h, |w| w.min(h)));
            }
        }
        if !any_active && shards.iter().all(VecDeque::is_empty) {
            break;
        }

        // Advance virtual time to whatever comes first: the next queued
        // event or the earliest task wake-up. When neither exists the
        // network is quiescent with tasks still waiting — re-poll them
        // with the idle flag so unmet conditions resolve as timeouts.
        match (net.sim.next_event_at(), wake) {
            (Some(te), Some(tw)) if te > tw => {
                net.sim.advance_to(tw);
            }
            (Some(_), _) => {
                net.sim.step();
            }
            (None, Some(tw)) => {
                net.sim.advance_to(tw);
            }
            (None, None) => {
                idle_pending = true;
                stuck_polls += 1;
                assert!(
                    stuck_polls < 100_000,
                    "interleaved measurement livelocked with tasks pending"
                );
                continue;
            }
        }
        stuck_polls = 0;
    }
}
