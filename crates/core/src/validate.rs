//! Estimate validation: the gate between a raw Eq. (4) estimate and
//! the cache.
//!
//! §4.6 caches estimates for a week, which makes a poisoned entry
//! expensive — every §5 application reads it until staleness evicts
//! it. The paper's own plausibility argument (estimates track ground
//! truth to within ~1 ms, Fig. 5) justifies three cheap cross-checks
//! before caching:
//!
//! * **Speed of light** (reject): `R(x, y)` below the great-circle
//!   light-in-fiber round trip ([`geo::lightspeed`]) is physically
//!   impossible — an Eq. (4) undershoot artifact, like the
//!   negative-estimate case [`crate::report::implausibly_low`] already
//!   catches.
//! * **Cache divergence** (reject once, then accept): a re-measurement
//!   that lands far from a still-fresh cached value is suspect — but
//!   paths do change, so only the *first* divergent measurement is
//!   refused (re-queued under backoff with a reason code); a retry
//!   that still diverges is accepted as the new truth and flagged.
//! * **TIV outlier** (flag only): an estimate enormously larger than
//!   the best cached detour `R(x, z) + R(z, y)` is *recorded* as a
//!   triangle-inequality-violation outlier but never rejected —
//!   genuine TIVs are common in Tor and §5.2 exploits them; the flag
//!   exists so a campaign audit can distinguish "interesting topology"
//!   from "suspect sample".
//!
//! Reason codes land in the `MeasurementMetrics` trace, so a
//! deterministic run yields a deterministic audit trail.

/// Validation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationConfig {
    /// A re-measurement further than `factor×` (plus slack) from a
    /// fresh cached value is divergent.
    pub divergence_factor: f64,
    /// Absolute slack (ms) before divergence triggers — sub-ms paths
    /// jitter by more than any ratio test tolerates.
    pub divergence_slack_ms: f64,
    /// Enforce the great-circle lightspeed lower bound (needs node
    /// locations; pairs without locations are skipped).
    pub lightspeed: bool,
    /// Flag estimates above `best_detour × factor` as TIV outliers.
    pub tiv_factor: f64,
    /// Ignore detours shorter than this (ms) for TIV flagging.
    pub tiv_min_detour_ms: f64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            divergence_factor: 4.0,
            divergence_slack_ms: 50.0,
            lightspeed: true,
            tiv_factor: 8.0,
            tiv_min_detour_ms: 5.0,
        }
    }
}

/// Why an estimate was refused or flagged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidationError {
    /// Faster than light in fiber over the pair's great circle.
    BelowLightspeed { est_ms: f64, min_possible_ms: f64 },
    /// Far from a still-fresh cached estimate of the same pair.
    CacheDivergence { est_ms: f64, cached_ms: f64 },
    /// Vastly above the best cached two-hop detour.
    TivOutlier { est_ms: f64, best_detour_ms: f64 },
}

impl ValidationError {
    /// Stable reason code for metrics traces.
    pub fn code(&self) -> &'static str {
        match self {
            ValidationError::BelowLightspeed { .. } => "below_lightspeed",
            ValidationError::CacheDivergence { .. } => "cache_divergence",
            ValidationError::TivOutlier { .. } => "tiv_outlier",
        }
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BelowLightspeed {
                est_ms,
                min_possible_ms,
            } => write!(
                f,
                "estimate {est_ms:.3} ms beats the lightspeed floor {min_possible_ms:.3} ms"
            ),
            ValidationError::CacheDivergence { est_ms, cached_ms } => write!(
                f,
                "estimate {est_ms:.3} ms diverges from fresh cached {cached_ms:.3} ms"
            ),
            ValidationError::TivOutlier {
                est_ms,
                best_detour_ms,
            } => write!(
                f,
                "estimate {est_ms:.3} ms dwarfs best detour {best_detour_ms:.3} ms"
            ),
        }
    }
}

/// The gate's decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Cache it.
    Accept,
    /// Cache it, but record the anomaly.
    Flag(ValidationError),
    /// Refuse it; the pair re-queues under backoff.
    Reject(ValidationError),
}

/// Everything the checks need to know about the pair being validated.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidationContext {
    /// Great-circle distance between the endpoints, if both are
    /// geolocated.
    pub distance_km: Option<f64>,
    /// The cached estimate, only when it is still fresh (stale cache
    /// entries prove nothing about the current path).
    pub fresh_cached_ms: Option<f64>,
    /// Whether this measurement is already a retry of a refused one —
    /// a second divergent reading confirms the change instead of
    /// re-rejecting forever.
    pub confirming_retry: bool,
    /// `min over z of R(x,z) + R(z,y)` from the cache, if any third
    /// node connects both endpoints.
    pub best_detour_ms: Option<f64>,
}

/// Runs the checks in severity order and returns the verdict.
pub fn validate(est_ms: f64, config: &ValidationConfig, ctx: &ValidationContext) -> Verdict {
    if config.lightspeed {
        if let Some(km) = ctx.distance_km {
            let min_possible_ms = geo::lightspeed::min_rtt_ms(km);
            if est_ms < min_possible_ms {
                return Verdict::Reject(ValidationError::BelowLightspeed {
                    est_ms,
                    min_possible_ms,
                });
            }
        }
    }
    if let Some(cached_ms) = ctx.fresh_cached_ms {
        let hi = cached_ms * config.divergence_factor + config.divergence_slack_ms;
        let lo = (cached_ms / config.divergence_factor - config.divergence_slack_ms).max(0.0);
        if est_ms > hi || est_ms < lo {
            let err = ValidationError::CacheDivergence { est_ms, cached_ms };
            return if ctx.confirming_retry {
                Verdict::Flag(err)
            } else {
                Verdict::Reject(err)
            };
        }
    }
    if let Some(best_detour_ms) = ctx.best_detour_ms {
        if best_detour_ms >= config.tiv_min_detour_ms && est_ms > best_detour_ms * config.tiv_factor
        {
            return Verdict::Flag(ValidationError::TivOutlier {
                est_ms,
                best_detour_ms,
            });
        }
    }
    Verdict::Accept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ValidationConfig {
        ValidationConfig::default()
    }

    #[test]
    fn clean_estimate_accepted() {
        let v = validate(80.0, &cfg(), &ValidationContext::default());
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn faster_than_light_rejected() {
        // New York ↔ Sydney is ~16,000 km; ~160 ms light-in-fiber RTT.
        let ctx = ValidationContext {
            distance_km: Some(16_000.0),
            ..Default::default()
        };
        match validate(20.0, &cfg(), &ctx) {
            Verdict::Reject(e @ ValidationError::BelowLightspeed { .. }) => {
                assert_eq!(e.code(), "below_lightspeed");
            }
            other => panic!("expected lightspeed rejection, got {other:?}"),
        }
        // A plausible transpacific RTT passes.
        assert_eq!(validate(220.0, &cfg(), &ctx), Verdict::Accept);
    }

    #[test]
    fn divergence_rejects_once_then_confirms() {
        let ctx = ValidationContext {
            fresh_cached_ms: Some(40.0),
            ..Default::default()
        };
        // 40 → 500 ms is past 4× + 50 ms slack.
        assert!(matches!(
            validate(500.0, &cfg(), &ctx),
            Verdict::Reject(ValidationError::CacheDivergence { .. })
        ));
        // The confirming retry is accepted (flagged, not refused).
        let confirming = ValidationContext {
            confirming_retry: true,
            ..ctx
        };
        assert!(matches!(
            validate(500.0, &cfg(), &confirming),
            Verdict::Flag(ValidationError::CacheDivergence { .. })
        ));
        // Ordinary re-measurement noise is fine.
        assert_eq!(validate(55.0, &cfg(), &ctx), Verdict::Accept);
    }

    #[test]
    fn stale_cache_never_triggers_divergence() {
        // The caller models staleness by leaving fresh_cached_ms unset.
        let ctx = ValidationContext::default();
        assert_eq!(validate(500.0, &cfg(), &ctx), Verdict::Accept);
    }

    #[test]
    fn tiv_outlier_is_flagged_never_rejected() {
        let ctx = ValidationContext {
            best_detour_ms: Some(10.0),
            ..Default::default()
        };
        match validate(200.0, &cfg(), &ctx) {
            Verdict::Flag(e @ ValidationError::TivOutlier { .. }) => {
                assert_eq!(e.code(), "tiv_outlier");
            }
            other => panic!("expected TIV flag, got {other:?}"),
        }
        // An ordinary TIV (direct a bit above the detour) passes clean:
        // §5.2 *wants* those in the dataset.
        assert_eq!(validate(25.0, &cfg(), &ctx), Verdict::Accept);
        // Tiny detours prove nothing.
        let tiny = ValidationContext {
            best_detour_ms: Some(0.5),
            ..Default::default()
        };
        assert_eq!(validate(200.0, &cfg(), &tiny), Verdict::Accept);
    }
}
