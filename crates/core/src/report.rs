//! Measurement-campaign reports.
//!
//! A deployment that publishes Ting datasets (as the authors did at
//! `cs.umd.edu/projects/ting`) wants a human-readable summary next to
//! the raw TSV: population, coverage, RTT distribution, and data-quality
//! flags. [`CampaignReport`] renders one from a matrix plus optional
//! per-pair sample records.

use crate::estimator::TingMeasurement;
use crate::matrix::RttMatrix;
use stats::{EmpiricalCdf, MinConvergence};
use std::fmt::Write as _;

/// Whether an Eq. (4) estimate is below any plausible RTT floor
/// (negative or ~0 ms). The subtraction of two half-leg minima can
/// undershoot when the leg circuits were measured under different
/// congestion floors; such a value is a measurement artifact, not an
/// RTT. Shared by the campaign audit below and by
/// [`crate::scanner::Scanner`], which refuses to cache such estimates.
/// NaN (an artifact of degenerate sampling) counts as implausible too —
/// a plain `< 0.05` would let it slip into the cache.
pub fn implausibly_low(estimate_ms: f64) -> bool {
    estimate_ms.is_nan() || estimate_ms < 0.05
}

/// Quality flags a campaign can raise about individual pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QualityFlag {
    /// Estimate is below any plausible floor (negative or ~0): the leg
    /// circuits were likely measured under different congestion floors.
    ImplausiblyLow { pair_index: usize },
    /// The running minimum was still improving when sampling stopped.
    Unconverged { pair_index: usize },
}

/// A rendered summary of one measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub pairs_measured: usize,
    pub pairs_expected: usize,
    pub rtt_min_ms: f64,
    pub rtt_median_ms: f64,
    pub rtt_max_ms: f64,
    pub mean_rtt_ms: f64,
    pub total_samples: usize,
    pub flags: Vec<QualityFlag>,
}

impl CampaignReport {
    /// Builds the report. `measurements` (optional, index-aligned with
    /// `matrix.pairs()` order) enables the per-pair quality checks.
    pub fn build(matrix: &RttMatrix, measurements: &[TingMeasurement]) -> CampaignReport {
        let values = matrix.values();
        let n = matrix.len();
        let cdf = if values.is_empty() {
            None
        } else {
            Some(EmpiricalCdf::new(&values))
        };
        let mut flags = Vec::new();
        let mut total_samples = 0;
        for (i, m) in measurements.iter().enumerate() {
            total_samples += m.total_samples();
            if implausibly_low(m.estimate_ms()) {
                flags.push(QualityFlag::ImplausiblyLow { pair_index: i });
            }
            if let Some(conv) = MinConvergence::analyze(&m.full.samples) {
                // Unconverged: the minimum arrived in the last 5% of
                // samples, suggesting more sampling would improve it.
                if conv.samples_to_min * 20 > conv.n * 19 && conv.n >= 20 {
                    flags.push(QualityFlag::Unconverged { pair_index: i });
                }
            }
        }
        CampaignReport {
            pairs_measured: matrix.measured_pairs(),
            pairs_expected: n * n.saturating_sub(1) / 2,
            rtt_min_ms: cdf.as_ref().map(|c| c.min()).unwrap_or(0.0),
            rtt_median_ms: cdf.as_ref().map(|c| c.median()).unwrap_or(0.0),
            rtt_max_ms: cdf.as_ref().map(|c| c.max()).unwrap_or(0.0),
            mean_rtt_ms: matrix.mean_rtt_ms().unwrap_or(0.0),
            total_samples,
            flags,
        }
    }

    /// Coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.pairs_expected == 0 {
            return 1.0;
        }
        self.pairs_measured as f64 / self.pairs_expected as f64
    }

    /// Renders the human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "ting measurement campaign");
        let _ = writeln!(
            out,
            "  coverage : {}/{} pairs ({:.1}%)",
            self.pairs_measured,
            self.pairs_expected,
            self.coverage() * 100.0
        );
        let _ = writeln!(
            out,
            "  rtt      : min {:.1} / median {:.1} / max {:.1} ms (mean {:.1})",
            self.rtt_min_ms, self.rtt_median_ms, self.rtt_max_ms, self.mean_rtt_ms
        );
        let _ = writeln!(out, "  samples  : {}", self.total_samples);
        if self.flags.is_empty() {
            let _ = writeln!(out, "  quality  : no flags");
        } else {
            let _ = writeln!(out, "  quality  : {} flags", self.flags.len());
            for f in &self.flags {
                let _ = writeln!(out, "    - {f:?}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::CircuitSamples;
    use netsim::NodeId;

    fn measurement(full: Vec<f64>, leg: f64) -> TingMeasurement {
        TingMeasurement {
            full: CircuitSamples::new(full),
            x_leg: CircuitSamples::new(vec![leg]),
            y_leg: CircuitSamples::new(vec![leg]),
            elapsed_s: 1.0,
        }
    }

    fn small_matrix() -> RttMatrix {
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), 50.0);
        m.set(NodeId(0), NodeId(2), 120.0);
        m
    }

    #[test]
    fn coverage_and_distribution() {
        let m = small_matrix();
        let r = CampaignReport::build(&m, &[]);
        assert_eq!(r.pairs_measured, 2);
        assert_eq!(r.pairs_expected, 3);
        assert!((r.coverage() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.rtt_min_ms, 50.0);
        assert_eq!(r.rtt_max_ms, 120.0);
        assert_eq!(r.mean_rtt_ms, 85.0);
    }

    #[test]
    fn flags_implausibly_low_estimates() {
        let m = small_matrix();
        // full min 10, legs 10 each → estimate = 10 − 5 − 5 = 0.
        let bad = measurement(vec![10.0; 25], 10.0);
        let good = measurement(vec![100.0; 25], 20.0);
        let r = CampaignReport::build(&m, &[bad, good]);
        assert!(r
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::ImplausiblyLow { pair_index: 0 })));
        assert!(!r
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::ImplausiblyLow { pair_index: 1 })));
    }

    #[test]
    fn flags_unconverged_minimum() {
        // Minimum arrives at the very last sample of 40.
        let mut samples = vec![100.0; 39];
        samples.push(80.0);
        let m = small_matrix();
        let r = CampaignReport::build(&m, &[measurement(samples, 10.0)]);
        assert!(r
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::Unconverged { pair_index: 0 })));
    }

    #[test]
    fn converged_minimum_not_flagged() {
        let mut samples = vec![80.0];
        samples.extend(vec![100.0; 39]);
        let m = small_matrix();
        let r = CampaignReport::build(&m, &[measurement(samples, 10.0)]);
        assert!(!r
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::Unconverged { .. })));
    }

    #[test]
    fn render_is_stable_text() {
        let m = small_matrix();
        let r = CampaignReport::build(&m, &[]);
        let text = r.render();
        assert!(text.contains("coverage : 2/3"));
        assert!(text.contains("no flags"));
    }

    #[test]
    fn empty_matrix_report() {
        let m = RttMatrix::new(vec![NodeId(0)]);
        let r = CampaignReport::build(&m, &[]);
        assert_eq!(r.pairs_expected, 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn implausibly_low_boundary_values() {
        // The gate is exactly `< 0.05 ms` with NaN on the implausible
        // side: estimates at the threshold pass, anything below — or
        // not a number at all — is refused.
        assert!(!implausibly_low(0.05));
        assert!(!implausibly_low(0.050001));
        assert!(!implausibly_low(100.0));
        assert!(!implausibly_low(f64::INFINITY));
        assert!(implausibly_low(0.049999));
        assert!(implausibly_low(0.0));
        assert!(implausibly_low(-0.0));
        assert!(implausibly_low(-25.0));
        assert!(implausibly_low(f64::NEG_INFINITY));
        assert!(implausibly_low(f64::NAN));
    }

    #[test]
    fn zero_node_matrix_report_has_no_nans() {
        // n = 0: no nodes at all. Every statistic must degrade to a
        // finite placeholder and render without panicking.
        let m = RttMatrix::new(vec![]);
        let r = CampaignReport::build(&m, &[]);
        assert_eq!(r.pairs_measured, 0);
        assert_eq!(r.pairs_expected, 0);
        assert_eq!(r.coverage(), 1.0);
        assert!(r.rtt_min_ms.is_finite());
        assert!(r.rtt_median_ms.is_finite());
        assert!(r.rtt_max_ms.is_finite());
        assert!(r.mean_rtt_ms.is_finite());
        let text = r.render();
        assert!(text.contains("coverage : 0/0 pairs (100.0%)"));
        assert!(!text.contains("NaN"));
    }
}
