//! The §4.3 forwarding-delay measurement procedure.
//!
//! For a relay `x`:
//!
//! 1. measure `R_C1` through `C1 = (w, z)` (both local) and estimate
//!    `F_w = F_z = (R_C1 − R̃(s,w) − R̃(z,d)) / 2`, exploiting
//!    `R̃(w,z) ≈ 0` on the same host;
//! 2. measure `R_C2` through `C2 = (w, x, z)`;
//! 3. probe `R̃(w,x)` with ping (ICMP) or a TCP probe;
//! 4. `F_x = R_C2 − F_w − F_z − 2R̃(w,x) − 2R̃(s,w)`.
//!
//! On protocol-neutral networks this lands at the relay's 0–3 ms
//! processing floor; on networks that treat ICMP, TCP, and Tor traffic
//! differently the result is wildly wrong — often *negative* — which is
//! exactly the Fig. 5 anomaly Ting's pure-Tor design avoids.

use crate::orchestrator::{Ting, TingError};
use netsim::NodeId;
use tor_sim::TorNetwork;

/// Which probe tool plays the role of `ping`/`tcptraceroute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeProtocol {
    Icmp,
    Tcp,
}

/// Result of the §4.3 procedure for one relay.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardingDelayMeasurement {
    /// The relay measured.
    pub relay: NodeId,
    /// Estimated local-relay forwarding delay `F_w = F_z` (ms).
    pub f_local_ms: f64,
    /// Estimated forwarding delay `F_x` (ms). Negative values reveal
    /// protocol-differential treatment on the relay's network.
    pub f_x_ms: f64,
    /// Probe protocol used for the direct measurements.
    pub protocol: ProbeProtocol,
}

/// Runs the procedure with `probe_samples` direct probes per leg.
pub fn measure_forwarding_delay(
    ting: &Ting,
    net: &mut TorNetwork,
    x: NodeId,
    protocol: ProbeProtocol,
    probe_samples: usize,
) -> Result<ForwardingDelayMeasurement, TingError> {
    let (w, z) = (net.local_w, net.local_z);
    let host = net.proxy;

    // Step 1–2: the local two-hop circuit.
    let c1 = ting.sample_circuit(net, vec![w, z])?;
    let probe_min = |net: &mut TorNetwork, a: NodeId, b: NodeId| -> f64 {
        (0..probe_samples)
            .map(|_| match protocol {
                ProbeProtocol::Icmp => net.sim.ping_rtt_ms(a, b),
                ProbeProtocol::Tcp => net.sim.tcp_rtt_ms(a, b),
            })
            .fold(f64::INFINITY, f64::min)
    };
    let r_sw = probe_min(net, host, w);
    let r_zd = probe_min(net, z, net.echo_server);
    let f_local_ms = (c1.min_ms() - r_sw - r_zd) / 2.0;

    // Step 5–7: the three-hop circuit through x.
    let c2 = ting.sample_circuit(net, vec![w, x, z])?;
    let r_wx = probe_min(net, w, x);
    let f_x_ms = c2.min_ms() - 2.0 * f_local_ms - 2.0 * r_wx - 2.0 * r_sw;

    Ok(ForwardingDelayMeasurement {
        relay: x,
        f_local_ms,
        f_x_ms,
        protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::TingConfig;
    use netsim::ProtocolPolicy;
    use tor_sim::TorNetworkBuilder;

    fn ting() -> Ting {
        Ting::new(TingConfig::with_samples(40))
    }

    #[test]
    fn neutral_network_forwarding_delay_is_small_positive() {
        let mut net = TorNetworkBuilder::testbed(31).neutral_fraction(1.0).build();
        let x = net.relays[6];
        let m = measure_forwarding_delay(&ting(), &mut net, x, ProbeProtocol::Icmp, 50).unwrap();
        // §4.3: nearly 65% of nodes sit in 0–2 ms; allow a little slack
        // for residual queueing above the minimum.
        assert!(
            m.f_x_ms > -1.0 && m.f_x_ms < 6.0,
            "F_x = {} out of the expected neutral band",
            m.f_x_ms
        );
    }

    #[test]
    fn icmp_deprioritization_turns_forwarding_delay_negative() {
        let mut net = TorNetworkBuilder::testbed(32).neutral_fraction(1.0).build();
        let x = net.relays[9];
        let x_as = net.sim.underlay().node(x.index()).as_id;
        net.sim.underlay_mut().as_profile_mut(x_as).policy =
            ProtocolPolicy::icmp_deprioritized(25.0);
        let m = measure_forwarding_delay(&ting(), &mut net, x, ProbeProtocol::Icmp, 50).unwrap();
        // ping overestimates R(w,x) by ~25 ms; F_x ≈ real F − 2·25.
        assert!(m.f_x_ms < -20.0, "F_x = {} not negative", m.f_x_ms);
    }

    #[test]
    fn tcp_shaping_inflates_forwarding_delay() {
        let mut net = TorNetworkBuilder::testbed(33).neutral_fraction(1.0).build();
        let x = net.relays[11];
        let x_as = net.sim.underlay().node(x.index()).as_id;
        // ICMP unaffected, Tor/TCP slowed: the Tor circuit's leg looks
        // long relative to ping → large positive F_x.
        net.sim.underlay_mut().as_profile_mut(x_as).policy = ProtocolPolicy::tcp_shaped(15.0);
        let m = measure_forwarding_delay(&ting(), &mut net, x, ProbeProtocol::Icmp, 50).unwrap();
        assert!(m.f_x_ms > 15.0, "F_x = {} not inflated", m.f_x_ms);
    }

    #[test]
    fn tcp_probe_agrees_with_tor_under_tcp_shaping() {
        // When the network shapes all TCP alike, tcptraceroute-style
        // probes see the same path as Tor and the anomaly disappears.
        let mut net = TorNetworkBuilder::testbed(34).neutral_fraction(1.0).build();
        let x = net.relays[13];
        let x_as = net.sim.underlay().node(x.index()).as_id;
        net.sim.underlay_mut().as_profile_mut(x_as).policy = ProtocolPolicy::tcp_shaped(15.0);
        let m = measure_forwarding_delay(&ting(), &mut net, x, ProbeProtocol::Tcp, 50).unwrap();
        assert!(
            m.f_x_ms > -1.0 && m.f_x_ms < 6.0,
            "F_x = {} should be nominal with TCP probes",
            m.f_x_ms
        );
    }

    #[test]
    fn local_forwarding_delay_is_tiny() {
        let mut net = TorNetworkBuilder::testbed(35).build();
        let x = net.relays[0];
        let m = measure_forwarding_delay(&ting(), &mut net, x, ProbeProtocol::Icmp, 50).unwrap();
        assert!(
            m.f_local_ms > 0.0 && m.f_local_ms < 3.0,
            "local F = {}",
            m.f_local_ms
        );
    }
}
