//! Sampling policies.
//!
//! §4.4: "The Ting algorithm takes as a parameter the number of times to
//! sample each circuit, which allows one to adjust the balance between
//! speed of measurement and accuracy." The validation takes 1000 samples,
//! shows 200 matches it almost exactly (Fig. 7), and notes that
//! accepting 5% error lets a pair be measured "in less than 15 seconds".
//! [`SamplePolicy::EarlyStop`] encodes that trade-off as a stopping rule:
//! quit once the running minimum stops improving.

/// When to stop sampling a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplePolicy {
    /// Take exactly `n` samples (the paper's validation setting:
    /// 1000, later 200).
    FixedCount(usize),
    /// Stop when `window` consecutive samples fail to improve the
    /// running minimum by more than `epsilon_ms`, subject to
    /// `min_samples ≤ taken ≤ max_samples`.
    EarlyStop {
        min_samples: usize,
        window: usize,
        epsilon_ms: f64,
        max_samples: usize,
    },
}

impl SamplePolicy {
    /// The paper's high-accuracy setting.
    pub fn paper_accurate() -> SamplePolicy {
        SamplePolicy::FixedCount(200)
    }

    /// The paper's "measure a pair in under 15 seconds" setting (§4.4,
    /// ~5% error budget).
    pub fn paper_fast() -> SamplePolicy {
        SamplePolicy::EarlyStop {
            min_samples: 8,
            window: 6,
            epsilon_ms: 0.5,
            max_samples: 50,
        }
    }

    /// Upper bound on samples this policy can take.
    pub fn max_samples(&self) -> usize {
        match *self {
            SamplePolicy::FixedCount(n) => n,
            SamplePolicy::EarlyStop { max_samples, .. } => max_samples,
        }
    }

    /// Given the samples so far, should we take another?
    pub fn wants_more(&self, samples: &[f64]) -> bool {
        match *self {
            SamplePolicy::FixedCount(n) => samples.len() < n,
            SamplePolicy::EarlyStop {
                min_samples,
                window,
                epsilon_ms,
                max_samples,
            } => {
                if samples.len() < min_samples.max(1) {
                    return true;
                }
                if samples.len() >= max_samples {
                    return false;
                }
                // Has the running min improved by > epsilon within the
                // last `window` samples?
                let n = samples.len();
                if n < window + 1 {
                    return true;
                }
                let min_before: f64 = samples[..n - window]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let min_now: f64 = samples.iter().copied().fold(f64::INFINITY, f64::min);
                min_before - min_now > epsilon_ms
            }
        }
    }
}

/// The minimum filter: the final estimate for a circuit is the minimum
/// of its samples (§3.3: "we take multiple samples, and use the minimum
/// value"). Returns `None` for an empty slice.
pub fn min_filter(samples: &[f64]) -> Option<f64> {
    samples.iter().copied().reduce(f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_count_takes_exactly_n() {
        let p = SamplePolicy::FixedCount(3);
        assert!(p.wants_more(&[]));
        assert!(p.wants_more(&[1.0, 2.0]));
        assert!(!p.wants_more(&[1.0, 2.0, 3.0]));
        assert_eq!(p.max_samples(), 3);
    }

    #[test]
    fn early_stop_quits_on_plateau() {
        let p = SamplePolicy::EarlyStop {
            min_samples: 2,
            window: 3,
            epsilon_ms: 0.5,
            max_samples: 100,
        };
        // Still improving: min went 10 → 5 within the window.
        assert!(p.wants_more(&[10.0, 9.0, 8.0, 6.0, 5.0]));
        // Plateau: the window's samples didn't improve the min.
        assert!(!p.wants_more(&[5.0, 9.0, 8.0, 7.0, 6.0]));
    }

    #[test]
    fn early_stop_respects_min_and_max() {
        let p = SamplePolicy::EarlyStop {
            min_samples: 5,
            window: 2,
            epsilon_ms: 0.1,
            max_samples: 6,
        };
        assert!(p.wants_more(&[1.0; 4])); // below min_samples
        assert!(!p.wants_more(&[1.0; 6])); // at max_samples
    }

    #[test]
    fn early_stop_keeps_going_while_window_unfilled() {
        let p = SamplePolicy::EarlyStop {
            min_samples: 1,
            window: 10,
            epsilon_ms: 0.1,
            max_samples: 100,
        };
        assert!(p.wants_more(&[3.0, 3.0, 3.0]));
    }

    #[test]
    fn min_filter_finds_minimum() {
        assert_eq!(min_filter(&[3.0, 1.5, 2.0]), Some(1.5));
        assert_eq!(min_filter(&[]), None);
    }

    #[test]
    fn paper_presets_are_sane() {
        assert_eq!(SamplePolicy::paper_accurate().max_samples(), 200);
        assert!(SamplePolicy::paper_fast().max_samples() <= 100);
    }
}
