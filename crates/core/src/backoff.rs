//! Exponential-backoff arithmetic shared by every retry path.
//!
//! Three call sites used to roll their own doubling-with-cap math: the
//! scanner's per-pair failure backoff, the orchestrator's per-circuit
//! retry pause, and (via the orchestrator) the parallel pipeline's
//! `Backoff` task state. They now all route through this module, which
//! owns the two hazards the ad-hoc versions each had to dodge:
//!
//! * **Overflow** — `base · 2^(attempts−1)` exceeds `u64` nanoseconds
//!   after ~30 doublings of any realistic base. [`exponential`] does
//!   the shift in `u128` and saturates at the cap, so arbitrarily
//!   large attempt counts are safe (property-tested below).
//! * **Synchronized retries** — concurrent measurements that fail
//!   together would retry together. [`jittered_ms`] spreads pauses
//!   with a keyed hash of the circuit path, never the simulation RNG,
//!   so runs stay replayable.

use netsim::{NodeId, SimDuration};

/// The pause after the `attempts`-th consecutive failure:
/// `min(base · 2^(attempts−1), cap)`, computed without overflow.
/// `attempts = 0` is treated like the first failure.
pub fn exponential(base: SimDuration, attempts: u32, cap: SimDuration) -> SimDuration {
    let base_ns = base.as_nanos();
    let cap_ns = cap.as_nanos();
    if base_ns == 0 {
        return SimDuration::from_nanos(0);
    }
    let shift = attempts.saturating_sub(1);
    // base ≥ 1 ns shifted 64+ places exceeds u64; the cap applies.
    if shift >= 64 {
        return SimDuration::from_nanos(cap_ns);
    }
    let ns = ((base_ns as u128) << shift).min(cap_ns as u128) as u64;
    SimDuration::from_nanos(ns)
}

/// The pause before retry `attempt` (1-based) of a circuit:
/// exponential in the attempt, jittered by a keyed hash of the path so
/// concurrent deployments desynchronize — but never drawn from the
/// simulation RNG, keeping retries replayable. The jitter factor lies
/// in `[0.5, 1.5)`; the result is capped at `cap_ms`.
pub fn jittered_ms(base_ms: f64, cap_ms: f64, path: &[NodeId], attempt: u32) -> f64 {
    // Clamp the exponent so pathological attempt counts neither wrap
    // through `as i32` nor overflow `powi` into NaN territory; anything
    // past ~2^1024 saturates at the cap regardless.
    let exp = (i64::from(attempt) - 1).clamp(-1, 1_024) as i32;
    let base = base_ms * 2f64.powi(exp);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for n in path {
        h = (h ^ n.0 as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ attempt as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
    (base * jitter).min(cap_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exponential_doubles_then_caps() {
        let base = SimDuration::from_secs(60);
        let cap = SimDuration::from_hours(1);
        assert_eq!(exponential(base, 1, cap), SimDuration::from_secs(60));
        assert_eq!(exponential(base, 2, cap), SimDuration::from_secs(120));
        assert_eq!(exponential(base, 3, cap), SimDuration::from_secs(240));
        assert_eq!(exponential(base, 7, cap), cap); // 60·64 s > 1 h
        assert_eq!(exponential(base, 64, cap), cap);
        assert_eq!(exponential(base, u32::MAX, cap), cap);
    }

    #[test]
    fn exponential_treats_zero_attempts_as_first() {
        let base = SimDuration::from_secs(5);
        let cap = SimDuration::from_hours(1);
        assert_eq!(exponential(base, 0, cap), base);
        assert_eq!(exponential(base, 1, cap), base);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let path = [NodeId(3), NodeId(7), NodeId(9)];
        let a = jittered_ms(500.0, 8_000.0, &path, 2);
        let b = jittered_ms(500.0, 8_000.0, &path, 2);
        assert_eq!(a.to_bits(), b.to_bits());
        // attempt 2 ⇒ base 1000 ms, jitter ∈ [0.5, 1.5)
        assert!((500.0..1_500.0).contains(&a));
        // Different paths see different pauses.
        let c = jittered_ms(500.0, 8_000.0, &[NodeId(4), NodeId(7)], 2);
        assert_ne!(a.to_bits(), c.to_bits());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// No attempt count panics or overflows, and the result never
        /// exceeds the cap.
        #[test]
        fn exponential_never_overflows(
            base_ns in 0u64..u64::MAX,
            attempts in 0u32..u32::MAX,
            cap_ns in 0u64..u64::MAX,
        ) {
            let got = exponential(
                SimDuration::from_nanos(base_ns),
                attempts,
                SimDuration::from_nanos(cap_ns),
            );
            prop_assert!(got.as_nanos() <= cap_ns);
        }

        /// Monotone in the attempt count until the cap flattens it.
        #[test]
        fn exponential_is_monotone(
            base_ns in 1u64..1_000_000_000_000u64,
            attempts in 0u32..10_000u32,
            cap_ns in 1u64..u64::MAX,
        ) {
            let base = SimDuration::from_nanos(base_ns);
            let cap = SimDuration::from_nanos(cap_ns);
            let lo = exponential(base, attempts, cap);
            let hi = exponential(base, attempts.saturating_add(1), cap);
            prop_assert!(lo.as_nanos() <= hi.as_nanos());
        }

        /// Huge attempt counts never panic the jittered variant either,
        /// and the cap always holds.
        #[test]
        fn jittered_respects_cap(
            base_ms in 0.0f64..1e6,
            cap_ms in 0.0f64..1e6,
            attempt in 0u32..u32::MAX,
            node in 0u32..1000u32,
        ) {
            let got = jittered_ms(base_ms, cap_ms, &[NodeId(node)], attempt);
            prop_assert!(got <= cap_ms);
            prop_assert!(got.is_finite());
        }
    }
}
