//! Incremental all-pairs scanning with caching (§4.6's workflow).
//!
//! "Taking measurements with Ting infrequently and caching them is
//! sufficient, and thus permits obtaining a large dataset of RTTs
//! between Tor nodes." A realistic deployment does not re-measure 1225
//! pairs every hour: it keeps a cache, spends a bounded measurement
//! budget per round, and prioritizes pairs that were never measured or
//! whose estimates have gone stale. [`Scanner`] implements that loop on
//! top of [`crate::matrix::RttMatrix`].

use crate::estimator::TingMeasurement;
use crate::health::{HealthConfig, HealthEvent, RelayHealth};
use crate::matrix::RttMatrix;
use crate::orchestrator::{Ting, TingError};
use crate::parallel::measure_interleaved_with;
use crate::queue::WorkQueue;
use crate::validate::{validate, ValidationConfig, ValidationContext, ValidationError, Verdict};
use geo::GeoPoint;
use netsim::{NodeId, SimDuration, SimTime};
use obs::{Obs, Value};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use tor_sim::TorNetwork;

/// Scanner policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannerConfig {
    /// Estimates older than this are stale and get re-measured.
    pub staleness: netsim::SimDuration,
    /// Maximum pairs measured per round (rate limiting; the paper is
    /// explicit that Ting "imposes little communication or
    /// computational overhead on the Tor network" — a deployment keeps
    /// it that way).
    pub pairs_per_round: usize,
    /// Base pause before a failed pair is eligible again; failure `k`
    /// waits `base · 2^(k-1)`, capped below.
    pub retry_backoff: netsim::SimDuration,
    /// Ceiling on the per-pair retry pause.
    pub retry_backoff_cap: netsim::SimDuration,
    /// Relay health scoring + quarantine (see [`crate::health`]).
    /// `None` disables the model entirely — dead relays keep burning
    /// per-pair backoffs, exactly the pre-health behaviour.
    pub health: Option<HealthConfig>,
    /// Estimate validation before caching (see [`crate::validate`]).
    /// `None` keeps only the original implausibly-low gate.
    pub validation: Option<ValidationConfig>,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            // §4.6 measured stability over a week; a day is comfortably
            // inside the window where estimates stay representative.
            staleness: netsim::SimDuration::from_hours(24),
            pairs_per_round: 50,
            retry_backoff: netsim::SimDuration::from_secs(300),
            retry_backoff_cap: netsim::SimDuration::from_hours(2),
            health: None,
            validation: None,
        }
    }
}

/// Outcome of one scan round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    pub measured: usize,
    pub failed: usize,
    pub still_pending: usize,
}

/// Retry bookkeeping for a pair whose measurement failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FailState {
    /// Consecutive failures so far.
    attempts: u32,
    /// The pair is not eligible again before this instant.
    next_attempt_at: SimTime,
}

/// A caching, prioritizing all-pairs scanner.
pub struct Scanner {
    config: ScannerConfig,
    matrix: RttMatrix,
    measured_at: HashMap<(NodeId, NodeId), SimTime>,
    /// Scan rounds completed-or-started over this scanner's lifetime
    /// (checkpointed, so round numbers stay stable across restarts).
    /// 1-based: the first round is round 1; 0 means "no round yet".
    rounds_run: u64,
    /// The round (value of `rounds_run`) in which each cached estimate
    /// was accepted — the scanner half of a measurement's lineage.
    /// Estimates loaded from pre-lineage (v1/v2) checkpoints carry
    /// round 0, meaning "unknown".
    measured_round: HashMap<(NodeId, NodeId), u64>,
    /// Pairs under failure backoff.
    pending_retry: HashMap<(NodeId, NodeId), FailState>,
    /// Incremental priority structure mirroring `measured_at` +
    /// `pending_retry`; replaces the per-round O(n²) sweeps.
    queue: WorkQueue,
    /// Per-relay health model, present iff `config.health` is.
    health: Option<RelayHealth>,
    /// Node geolocations for the lightspeed validation bound (see
    /// [`Scanner::load_locations`]); pairs without locations skip it.
    locations: HashMap<NodeId, GeoPoint>,
    /// When set, only these pairs are scheduled — the rest are retired
    /// from the queue (see [`Scanner::restrict_to`]). `None` means the
    /// scanner owns the whole matrix, the pre-shard behaviour.
    scope: Option<HashSet<(NodeId, NodeId)>>,
}

impl Scanner {
    /// Creates a scanner over a fixed relay set.
    pub fn new(nodes: Vec<NodeId>, config: ScannerConfig) -> Scanner {
        Scanner {
            config,
            matrix: RttMatrix::new(nodes.clone()),
            measured_at: HashMap::new(),
            rounds_run: 0,
            measured_round: HashMap::new(),
            pending_retry: HashMap::new(),
            queue: WorkQueue::new(nodes, config.staleness),
            health: config.health.map(RelayHealth::new),
            locations: HashMap::new(),
            scope: None,
        }
    }

    /// Restricts the scanner to `owned` pairs, permanently retiring
    /// every other pair from its work queue. This is the shard-scoping
    /// primitive behind [`crate::shard::Supervisor`]: each shard runs a
    /// full scanner over the whole node list (so checkpoints and
    /// matrices stay globally indexed) but schedules only the pairs the
    /// partitioner assigned to it. Restricting to every pair is a
    /// no-op, which keeps a one-shard supervised scan bit-identical to
    /// an unsharded one.
    ///
    /// Scope is derived state, not checkpointed — re-apply it after
    /// [`Scanner::from_checkpoint`], as [`crate::shard::Supervisor`]
    /// does on every shard restart.
    pub fn restrict_to(&mut self, owned: &[(NodeId, NodeId)]) {
        let owned: HashSet<(NodeId, NodeId)> = owned.iter().map(|&(a, b)| key(a, b)).collect();
        let nodes = self.matrix.nodes().to_vec();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !owned.contains(&key(a, b)) {
                    self.queue.retire(a, b);
                }
            }
        }
        self.scope = Some(owned);
    }

    /// The restricted pair scope, if any.
    pub fn scope(&self) -> Option<&HashSet<(NodeId, NodeId)>> {
        self.scope.as_ref()
    }

    /// The current cached dataset.
    pub fn matrix(&self) -> &RttMatrix {
        &self.matrix
    }

    /// The scanner's policy knobs.
    pub fn config(&self) -> &ScannerConfig {
        &self.config
    }

    /// The relay health model, if enabled.
    pub fn health(&self) -> Option<&RelayHealth> {
        self.health.as_ref()
    }

    /// Registers a node location for the lightspeed validation bound.
    pub fn set_node_location(&mut self, node: NodeId, location: GeoPoint) {
        self.locations.insert(node, location);
    }

    /// Pulls every scanned node's location from the network's underlay.
    /// Locations are derived state, not checkpointed — call this again
    /// after [`Scanner::from_checkpoint`].
    pub fn load_locations(&mut self, net: &TorNetwork) {
        for &n in self.matrix.nodes() {
            let loc = net.sim.underlay().node(n.index()).location;
            self.locations.insert(n, loc);
        }
    }

    /// When `pair` was last measured, if ever.
    pub fn measured_at(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.measured_at.get(&key(a, b)).copied()
    }

    /// The scan round in which `pair`'s cached estimate was accepted,
    /// if the pair has one. Round 0 means the estimate predates
    /// lineage tracking (loaded from a v1/v2 checkpoint).
    pub fn measured_round(&self, a: NodeId, b: NodeId) -> Option<u64> {
        self.measured_round.get(&key(a, b)).copied()
    }

    /// Scan rounds run over this scanner's lifetime (checkpointed).
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Failure-backoff state for a pair: `(consecutive failures,
    /// eligible-again instant)`, if the pair is being backed off.
    pub fn retry_state(&self, a: NodeId, b: NodeId) -> Option<(u32, SimTime)> {
        self.pending_retry
            .get(&key(a, b))
            .map(|f| (f.attempts, f.next_attempt_at))
    }

    /// Pairs the scanner would measure next, most urgent first:
    /// never-measured pairs, then stale ones, oldest first. Pairs whose
    /// failure backoff has not expired are withheld.
    ///
    /// This is the original O(n²) full sweep, kept as the executable
    /// specification of the priority order. The scan loop itself plans
    /// through the incremental [`WorkQueue`] instead; a property test
    /// replays randomized histories against both to keep them
    /// bit-equal.
    pub fn plan_round(&self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let nodes = self.matrix.nodes().to_vec();
        let mut unmeasured = Vec::new();
        let mut stale: Vec<((NodeId, NodeId), SimTime)> = Vec::new();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let k = key(a, b);
                if self.scope.as_ref().is_some_and(|s| !s.contains(&k)) {
                    continue; // owned by another shard
                }
                if let Some(f) = self.pending_retry.get(&k) {
                    if now < f.next_attempt_at {
                        continue; // backing off
                    }
                }
                match self.measured_at.get(&k) {
                    None => unmeasured.push((a, b)),
                    Some(&t) => {
                        if now.since(t) >= self.config.staleness {
                            stale.push(((a, b), t));
                        }
                    }
                }
            }
        }
        stale.sort_by_key(|&(_, t)| t);
        unmeasured
            .into_iter()
            .chain(stale.into_iter().map(|(p, _)| p))
            .take(self.config.pairs_per_round)
            .collect()
    }

    /// The backoff pause after the `attempts`-th consecutive failure.
    fn backoff(&self, attempts: u32) -> SimDuration {
        crate::backoff::exponential(
            self.config.retry_backoff,
            attempts,
            self.config.retry_backoff_cap,
        )
    }

    /// Records a successful measurement, subject to the same sanity
    /// gate [`crate::report::CampaignReport`] applies when auditing a
    /// finished campaign: Eq. (4) subtracts two half-legs from the full
    /// circuit and can come out negative or implausibly close to zero
    /// under pathological sampling. Such an estimate never reaches the
    /// cache — the pair is re-queued under the failure backoff instead.
    /// Returns `true` when the estimate was accepted.
    fn record_success(
        &mut self,
        a: NodeId,
        b: NodeId,
        m: &TingMeasurement,
        now: SimTime,
        ting: &Ting,
    ) -> bool {
        let est = m.estimate_ms();
        if crate::report::implausibly_low(est) {
            ting.metrics.trace(format!(
                "implausible_estimate a={} b={} est_ms={est:.3}",
                a.0, b.0
            ));
            ting.obs().inc("ting.estimate.implausible");
            if ting.obs().is_tracing() {
                ting.obs().event(
                    obs::names::VALIDATE_IMPLAUSIBLE,
                    now.as_nanos(),
                    vec![
                        ("a", Value::U64(a.0 as u64)),
                        ("b", Value::U64(b.0 as u64)),
                        ("est_ms", Value::F64(est)),
                    ],
                );
            }
            self.record_failure(a, b, now, ting);
            return false;
        }
        if let Some(vcfg) = &self.config.validation {
            match validate(est, vcfg, &self.validation_context(a, b, now)) {
                Verdict::Accept => {}
                Verdict::Flag(e) => {
                    ting.metrics.on_estimate_flagged();
                    ting.metrics.trace(format!(
                        "estimate_flagged a={} b={} code={} est_ms={est:.3}",
                        a.0,
                        b.0,
                        e.code()
                    ));
                    self.observe_verdict(
                        obs::names::VALIDATE_FLAG,
                        "ting.validate.flag",
                        a,
                        b,
                        &e,
                        now,
                        ting,
                    );
                }
                Verdict::Reject(e) => {
                    ting.metrics.on_estimate_rejected();
                    ting.metrics.trace(format!(
                        "estimate_rejected a={} b={} code={} est_ms={est:.3}",
                        a.0,
                        b.0,
                        e.code()
                    ));
                    self.observe_verdict(
                        obs::names::VALIDATE_REJECT,
                        "ting.validate.reject",
                        a,
                        b,
                        &e,
                        now,
                        ting,
                    );
                    self.record_failure(a, b, now, ting);
                    return false;
                }
            }
        }
        self.matrix.set(a, b, est);
        self.measured_at.insert(key(a, b), now);
        self.measured_round.insert(key(a, b), self.rounds_run);
        self.pending_retry.remove(&key(a, b));
        self.queue.on_measured(a, b, now);
        true
    }

    /// Records one validation verdict into the obs registry: a
    /// per-reason counter (`<counter_base>.<code>`) and, when tracing,
    /// a typed event naming the pair and reason code.
    #[allow(clippy::too_many_arguments)]
    fn observe_verdict(
        &self,
        event_name: &'static str,
        counter_base: &str,
        a: NodeId,
        b: NodeId,
        e: &ValidationError,
        now: SimTime,
        ting: &Ting,
    ) {
        let obs = ting.obs();
        if !obs.is_enabled() {
            return;
        }
        obs.inc(&format!("{counter_base}.{}", e.code()));
        if obs.is_tracing() {
            obs.event(
                event_name,
                now.as_nanos(),
                vec![
                    ("a", Value::U64(a.0 as u64)),
                    ("b", Value::U64(b.0 as u64)),
                    ("code", Value::Str(e.code().to_owned())),
                ],
            );
        }
    }

    /// Assembles what [`crate::validate::validate`] needs to know about
    /// a pair: geodesic distance (if geolocated), the cached estimate
    /// when still fresh, whether this measurement is already a retry,
    /// and the best cached two-hop detour.
    fn validation_context(&self, a: NodeId, b: NodeId, now: SimTime) -> ValidationContext {
        let distance_km = match (self.locations.get(&a), self.locations.get(&b)) {
            (Some(&pa), Some(&pb)) => Some(geo::great_circle_km(pa, pb)),
            _ => None,
        };
        let fresh_cached_ms = self
            .measured_at
            .get(&key(a, b))
            .filter(|&&t| now.since(t) < self.config.staleness)
            .and_then(|_| self.matrix.get(a, b));
        let best_detour_ms = self
            .matrix
            .nodes()
            .iter()
            .filter(|&&z| z != a && z != b)
            .filter_map(|&z| Some(self.matrix.get(a, z)? + self.matrix.get(z, b)?))
            .min_by(f64::total_cmp);
        ValidationContext {
            distance_km,
            fresh_cached_ms,
            confirming_retry: self.pending_retry.contains_key(&key(a, b)),
            best_detour_ms,
        }
    }

    /// Feeds one relay observation into the health model and applies
    /// any quarantine transition to the work queue.
    fn note_health(&mut self, node: NodeId, success: bool, now: SimTime, ting: &Ting) {
        let Some(h) = self.health.as_mut() else {
            return;
        };
        match h.record(node, success, now) {
            Some(HealthEvent::Quarantined(n)) => {
                self.queue.quarantine(n);
                ting.metrics.on_relay_quarantined();
                ting.metrics
                    .trace(format!("relay_quarantined node={}", n.0));
                ting.obs().inc("ting.health.quarantined");
                if ting.obs().is_tracing() {
                    ting.obs().event(
                        obs::names::HEALTH_QUARANTINE,
                        now.as_nanos(),
                        vec![("node", Value::U64(n.0 as u64))],
                    );
                }
            }
            Some(HealthEvent::Released(n)) => {
                self.queue.release(n);
                ting.metrics.on_relay_released();
                ting.metrics
                    .trace(format!("relay_released node={} reason=probation", n.0));
                ting.obs().inc("ting.health.released.probation");
                if ting.obs().is_tracing() {
                    ting.obs().event(
                        obs::names::HEALTH_RELEASE,
                        now.as_nanos(),
                        vec![
                            ("node", Value::U64(n.0 as u64)),
                            ("reason", Value::Str("probation".to_owned())),
                        ],
                    );
                }
            }
            None => {}
        }
    }

    /// Attributes a pair failure to its endpoints: leg-circuit build
    /// failures name the culpable relay in their path; everything else
    /// (full circuit, stream, probes) blames both.
    fn blame(err: &TingError, x: NodeId, y: NodeId) -> (bool, bool) {
        match err {
            TingError::CircuitBuildFailed { path, .. } => (path.contains(&x), path.contains(&y)),
            TingError::StreamFailed | TingError::ProbeLost => (true, true),
        }
    }

    /// Health bookkeeping for one pair outcome.
    fn note_pair_outcome(
        &mut self,
        x: NodeId,
        y: NodeId,
        result: Result<(), &TingError>,
        now: SimTime,
        ting: &Ting,
    ) {
        if self.health.is_none() {
            return;
        }
        match result {
            Ok(()) => {
                self.note_health(x, true, now, ting);
                self.note_health(y, true, now, ting);
            }
            Err(e) => {
                // Only blamed endpoints take the hit; an unblamed
                // endpoint gets no observation at all (its circuits
                // were never proven either way).
                let (blame_x, blame_y) = Self::blame(e, x, y);
                if blame_x {
                    self.note_health(x, false, now, ting);
                }
                if blame_y {
                    self.note_health(y, false, now, ting);
                }
            }
        }
    }

    /// Plans one round through the health model: decay releases first,
    /// then due probation probes (within the round budget), then the
    /// ordinary queue plan.
    fn plan_round_healthy(&mut self, now: SimTime, ting: &Ting) -> Vec<(NodeId, NodeId)> {
        let cap = self.config.pairs_per_round;
        let mut plan = Vec::new();
        if let Some(h) = self.health.as_mut() {
            for n in h.release_by_decay(now) {
                self.queue.release(n);
                ting.metrics.on_relay_released();
                ting.metrics
                    .trace(format!("relay_released node={} reason=decay", n.0));
                ting.obs().inc("ting.health.released.decay");
                if ting.obs().is_tracing() {
                    ting.obs().event(
                        obs::names::HEALTH_RELEASE,
                        now.as_nanos(),
                        vec![
                            ("node", Value::U64(n.0 as u64)),
                            ("reason", Value::Str("decay".to_owned())),
                        ],
                    );
                }
            }
            for n in h.due_probes(now) {
                if plan.len() >= cap {
                    break;
                }
                // Even with no probe partner available, the attempt
                // counts: the next probe waits a full interval.
                h.probe_scheduled(n, now);
                if let Some((a, b)) = self.queue.probe_pair(n) {
                    ting.metrics.on_probation_probe();
                    ting.metrics
                        .trace(format!("probation_probe node={} a={} b={}", n.0, a.0, b.0));
                    ting.obs().inc("ting.health.probation_probe");
                    if ting.obs().is_tracing() {
                        ting.obs().event(
                            obs::names::HEALTH_PROBE,
                            now.as_nanos(),
                            vec![
                                ("node", Value::U64(n.0 as u64)),
                                ("a", Value::U64(a.0 as u64)),
                                ("b", Value::U64(b.0 as u64)),
                            ],
                        );
                    }
                    plan.push((a, b));
                }
            }
        }
        let remaining = cap.saturating_sub(plan.len());
        plan.extend(self.queue.plan(now, remaining));
        plan
    }

    /// Closes the per-pair measurement span with the scanner's verdict.
    /// `Ok(accepted)` is a completed measurement (accepted or rejected
    /// by validation); `Err` carries the pipeline error's stable reason
    /// code.
    fn observe_pair_end(
        &self,
        span: obs::SpanId,
        outcome: Result<bool, &TingError>,
        now: SimTime,
        ting: &Ting,
    ) {
        let outcome = match outcome {
            Ok(true) => "accepted",
            Ok(false) => "rejected",
            Err(e) => e.code(),
        };
        ting.observe_pair_end(span, outcome, now);
    }

    /// Closes the scan-round span with the round's tallies.
    fn observe_round_end(&self, span: obs::SpanId, report: RoundReport, now: SimTime, ting: &Ting) {
        if !ting.obs().is_tracing() {
            return;
        }
        ting.obs().span_end(
            obs::names::SCAN_ROUND_END,
            span,
            now.as_nanos(),
            vec![
                ("measured", Value::U64(report.measured as u64)),
                ("failed", Value::U64(report.failed as u64)),
                ("still_pending", Value::U64(report.still_pending as u64)),
            ],
        );
    }

    /// Re-queues a failed pair under exponential backoff.
    fn record_failure(&mut self, a: NodeId, b: NodeId, now: SimTime, ting: &Ting) {
        let attempts = self.pending_retry.get(&key(a, b)).map_or(0, |f| f.attempts) + 1;
        let next_attempt_at = now + self.backoff(attempts);
        self.pending_retry.insert(
            key(a, b),
            FailState {
                attempts,
                next_attempt_at,
            },
        );
        self.queue.on_failed(a, b, next_attempt_at);
        ting.metrics.on_pair_requeued();
        ting.metrics.trace(format!(
            "pair_requeued a={} b={} attempts={attempts}",
            a.0, b.0
        ));
        ting.obs().inc("ting.pair_requeued");
    }

    /// Executes one round against the network. Failed measurements
    /// (circuit build failures on churned relays, lost probes) are
    /// re-queued under exponential backoff rather than poisoning the
    /// cache or hot-looping on a dead relay.
    ///
    /// Planning and reporting both come from the incremental work
    /// queue — one O(round · log n) plan per round instead of the two
    /// O(n²) sweeps the scanner used to pay — and
    /// [`RoundReport::still_pending`] is the *true* backlog, not capped
    /// at [`ScannerConfig::pairs_per_round`].
    pub fn run_round(&mut self, net: &mut TorNetwork, ting: &Ting) -> RoundReport {
        self.rounds_run += 1;
        let plan = self.plan_round_healthy(net.sim.now(), ting);
        let round = ting.obs().span_begin(
            obs::names::SCAN_ROUND_BEGIN,
            net.sim.now().as_nanos(),
            vec![("planned", Value::U64(plan.len() as u64))],
        );
        let mut measured = 0;
        let mut failed = 0;
        for (a, b) in plan {
            let pair_span = ting.observe_pair_begin(a, b, 0, net.sim.now());
            match ting.measure_pair(net, a, b) {
                Ok(m) => {
                    self.note_pair_outcome(a, b, Ok(()), net.sim.now(), ting);
                    let accepted = self.record_success(a, b, &m, net.sim.now(), ting);
                    if accepted {
                        measured += 1;
                    } else {
                        failed += 1;
                    }
                    self.observe_pair_end(pair_span, Ok(accepted), net.sim.now(), ting);
                }
                Err(
                    ref e @ (TingError::CircuitBuildFailed { .. }
                    | TingError::StreamFailed
                    | TingError::ProbeLost),
                ) => {
                    failed += 1;
                    self.note_pair_outcome(a, b, Err(e), net.sim.now(), ting);
                    self.record_failure(a, b, net.sim.now(), ting);
                    self.observe_pair_end(pair_span, Err(e), net.sim.now(), ting);
                }
            }
        }
        let report = RoundReport {
            measured,
            failed,
            still_pending: self.queue.backlog(net.sim.now()),
        };
        self.observe_round_end(round, report, net.sim.now(), ting);
        report
    }

    /// Executes one round with the round's pairs sharded round-robin
    /// over every provisioned vantage (see
    /// [`tor_sim::TorNetworkBuilder::vantages`]) and measured
    /// concurrently in virtual time via
    /// [`crate::parallel::measure_interleaved_with`]. Outcomes are
    /// recorded *at each measurement's own completion instant* — the
    /// engine hands them over before the simulation moves on, so cache,
    /// health, and trace bookkeeping all land time-ordered.
    ///
    /// With a single vantage this *is* [`Scanner::run_round`] — the
    /// sequential path is invoked directly, so `K = 1` output stays
    /// bit-identical to the sequential scanner's.
    pub fn run_round_parallel(&mut self, net: &mut TorNetwork, ting: &Ting) -> RoundReport {
        let k = net.vantage_count();
        if k <= 1 {
            return self.run_round(net, ting);
        }
        self.rounds_run += 1;
        let plan = self.plan_round_healthy(net.sim.now(), ting);
        let round = ting.obs().span_begin(
            obs::names::SCAN_ROUND_BEGIN,
            net.sim.now().as_nanos(),
            vec![
                ("planned", Value::U64(plan.len() as u64)),
                ("vantages", Value::U64(k as u64)),
            ],
        );
        let assignments: Vec<(usize, NodeId, NodeId)> = plan
            .iter()
            .enumerate()
            .map(|(j, &(a, b))| (j % k, a, b))
            .collect();
        let mut measured = 0;
        let mut failed = 0;
        let this = &mut *self;
        measure_interleaved_with(net, ting, &assignments, |outcome| {
            let at = outcome.completed_at;
            match outcome.result {
                Ok(m) => {
                    this.note_pair_outcome(outcome.x, outcome.y, Ok(()), at, ting);
                    let accepted = this.record_success(outcome.x, outcome.y, &m, at, ting);
                    if accepted {
                        measured += 1;
                    } else {
                        failed += 1;
                    }
                    this.observe_pair_end(outcome.span, Ok(accepted), at, ting);
                }
                Err(ref e) => {
                    failed += 1;
                    this.note_pair_outcome(outcome.x, outcome.y, Err(e), at, ting);
                    this.record_failure(outcome.x, outcome.y, at, ting);
                    this.observe_pair_end(outcome.span, Err(e), at, ting);
                }
            }
        });
        let report = RoundReport {
            measured,
            failed,
            still_pending: self.queue.backlog(net.sim.now()),
        };
        self.observe_round_end(round, report, net.sim.now(), ting);
        report
    }

    /// Fraction of pairs currently covered by a (possibly stale) cache
    /// entry.
    pub fn coverage(&self) -> f64 {
        let n = self.matrix.len();
        let total = n * n.saturating_sub(1) / 2;
        if total == 0 {
            return 1.0;
        }
        self.matrix.measured_pairs() as f64 / total as f64
    }

    /// Serializes the scanner's full state — config, cache, measurement
    /// timestamps and lineage rounds, per-pair retry backoff, and (when
    /// enabled) relay health — to a plain-text v3 checkpoint sealed
    /// with a CRC-32 trailer ([`crate::checkpoint::seal`]). A scan
    /// killed mid-run and resumed via [`Scanner::from_checkpoint`]
    /// continues exactly where it stopped: completed pairs stay done,
    /// failed pairs stay under backoff, quarantined relays stay
    /// quarantined, and round numbers keep counting from where they
    /// were, so lineage stays stable across restarts.
    pub fn to_checkpoint(&self) -> String {
        let mut out = String::new();
        out.push_str("# ting scan checkpoint v3\n");
        out.push_str("# nodes:");
        for n in self.matrix.nodes() {
            let _ = write!(out, " {}", n.0);
        }
        out.push('\n');
        let _ = write!(
            out,
            "# config: staleness_ns={} pairs_per_round={} retry_backoff_ns={} retry_backoff_cap_ns={}",
            self.config.staleness.as_nanos(),
            self.config.pairs_per_round,
            self.config.retry_backoff.as_nanos(),
            self.config.retry_backoff_cap.as_nanos(),
        );
        // `{}` on f64 prints the shortest exactly-roundtripping form,
        // so config floats survive the text format bit-identically.
        match &self.config.health {
            None => out.push_str(" health=0"),
            Some(h) => {
                let _ = write!(
                    out,
                    " health=1 health_alpha={} health_qbelow={} health_rabove={} \
                     health_probation_ns={} health_halflife_ns={}",
                    h.ewma_alpha,
                    h.quarantine_below,
                    h.release_above,
                    h.probation_interval.as_nanos(),
                    h.decay_half_life.as_nanos(),
                );
            }
        }
        match &self.config.validation {
            None => out.push_str(" val=0"),
            Some(v) => {
                let _ = write!(
                    out,
                    " val=1 val_divfactor={} val_divslack_ms={} val_lightspeed={} \
                     val_tivfactor={} val_tivmin_ms={}",
                    v.divergence_factor,
                    v.divergence_slack_ms,
                    u8::from(v.lightspeed),
                    v.tiv_factor,
                    v.tiv_min_detour_ms,
                );
            }
        }
        out.push('\n');
        let _ = writeln!(out, "# rounds: {}", self.rounds_run);
        for (a, b, rtt) in self.matrix.pairs() {
            let t = self.measured_at[&key(a, b)];
            let round = self.measured_round.get(&key(a, b)).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "m\t{}\t{}\t{}\t{}\t{}",
                a.0,
                b.0,
                rtt,
                t.as_nanos(),
                round
            );
        }
        let nodes = self.matrix.nodes();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if let Some(f) = self.pending_retry.get(&key(a, b)) {
                    let _ = writeln!(
                        out,
                        "f\t{}\t{}\t{}\t{}",
                        a.0,
                        b.0,
                        f.attempts,
                        f.next_attempt_at.as_nanos()
                    );
                }
            }
        }
        if let Some(h) = &self.health {
            out.push_str(&h.checkpoint_lines());
        }
        crate::checkpoint::seal(out)
    }

    /// Parses a checkpoint document. v3 documents (the current format)
    /// and v2 documents must carry a valid CRC-32 trailer — any flipped
    /// or truncated byte is refused rather than resumed from. v1
    /// documents (pre-CRC, pre-health) still load for compatibility
    /// with old scan state; v1/v2 estimates carry lineage round 0
    /// ("unknown").
    pub fn from_checkpoint(text: &str) -> Result<Scanner, String> {
        let magic = text.lines().next().ok_or("empty checkpoint")?;
        match magic {
            "# ting scan checkpoint v1" => Self::parse_checkpoint(text, 1),
            "# ting scan checkpoint v2" => {
                let body = crate::checkpoint::verify_sealed(text)?;
                Self::parse_checkpoint(body, 2)
            }
            "# ting scan checkpoint v3" => {
                let body = crate::checkpoint::verify_sealed(text)?;
                Self::parse_checkpoint(body, 3)
            }
            other => Err(format!("bad magic line: {other:?}")),
        }
    }

    /// The shared checkpoint body parser. `version >= 2` admits the
    /// health config keys and `h`/`q` state lines; `version >= 3` adds
    /// the `# rounds:` header and the per-estimate round column. A
    /// document carrying state its version doesn't admit is corrupt.
    fn parse_checkpoint(body: &str, version: u32) -> Result<Scanner, String> {
        let v2 = version >= 2;
        let v3 = version >= 3;
        let mut lines = body.lines();
        lines.next(); // magic, already matched by the caller
        let nodes_line = lines.next().ok_or("missing node list")?;
        let nodes: Vec<NodeId> = nodes_line
            .trim_start_matches("# nodes:")
            .split_whitespace()
            .map(|t| t.parse::<u32>().map(NodeId).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let config_line = lines.next().ok_or("missing config line")?;
        let mut config = ScannerConfig::default();
        for tok in config_line
            .trim_start_matches("# config:")
            .split_whitespace()
        {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok:?}"))?;
            let u = |v: &str| v.parse::<u64>().map_err(|e| format!("{k}: {e}"));
            let fl = |v: &str| v.parse::<f64>().map_err(|e| format!("{k}: {e}"));
            match k {
                "staleness_ns" => config.staleness = SimDuration::from_nanos(u(v)?),
                "pairs_per_round" => config.pairs_per_round = u(v)? as usize,
                "retry_backoff_ns" => config.retry_backoff = SimDuration::from_nanos(u(v)?),
                "retry_backoff_cap_ns" => config.retry_backoff_cap = SimDuration::from_nanos(u(v)?),
                "health" if v2 => {
                    config.health = (u(v)? == 1).then(HealthConfig::default);
                }
                "health_alpha" if v2 => health_cfg(&mut config, k)?.ewma_alpha = fl(v)?,
                "health_qbelow" if v2 => health_cfg(&mut config, k)?.quarantine_below = fl(v)?,
                "health_rabove" if v2 => health_cfg(&mut config, k)?.release_above = fl(v)?,
                "health_probation_ns" if v2 => {
                    health_cfg(&mut config, k)?.probation_interval = SimDuration::from_nanos(u(v)?)
                }
                "health_halflife_ns" if v2 => {
                    health_cfg(&mut config, k)?.decay_half_life = SimDuration::from_nanos(u(v)?)
                }
                "val" if v2 => {
                    config.validation = (u(v)? == 1).then(ValidationConfig::default);
                }
                "val_divfactor" if v2 => val_cfg(&mut config, k)?.divergence_factor = fl(v)?,
                "val_divslack_ms" if v2 => val_cfg(&mut config, k)?.divergence_slack_ms = fl(v)?,
                "val_lightspeed" if v2 => val_cfg(&mut config, k)?.lightspeed = u(v)? == 1,
                "val_tivfactor" if v2 => val_cfg(&mut config, k)?.tiv_factor = fl(v)?,
                "val_tivmin_ms" if v2 => val_cfg(&mut config, k)?.tiv_min_detour_ms = fl(v)?,
                other => return Err(format!("unknown config key {other:?}")),
            }
        }
        let mut scanner = Scanner::new(nodes, config);
        for (lineno, line) in lines.enumerate() {
            if v3 {
                if let Some(r) = line.strip_prefix("# rounds:") {
                    scanner.rounds_run = r
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad rounds header: {e}"))?;
                    continue;
                }
            }
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}", lineno + 4);
            let mut f = line.split('\t');
            let tag = f.next().ok_or_else(|| err("empty"))?;
            let a = NodeId(
                f.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad node a"))?,
            );
            match tag {
                "m" => {
                    let b = NodeId(
                        f.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("bad node b"))?,
                    );
                    let rtt: f64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad rtt"))?;
                    let t_ns: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad timestamp"))?;
                    let round: u64 = if v3 {
                        f.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("bad round"))?
                    } else {
                        0
                    };
                    scanner.matrix.set(a, b, rtt);
                    scanner
                        .measured_at
                        .insert(key(a, b), SimTime::ZERO + SimDuration::from_nanos(t_ns));
                    scanner.measured_round.insert(key(a, b), round);
                }
                "f" => {
                    let b = NodeId(
                        f.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("bad node b"))?,
                    );
                    let attempts: u32 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad attempts"))?;
                    let next_ns: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad next-attempt time"))?;
                    scanner.pending_retry.insert(
                        key(a, b),
                        FailState {
                            attempts,
                            next_attempt_at: SimTime::ZERO + SimDuration::from_nanos(next_ns),
                        },
                    );
                }
                "h" if v2 => {
                    let score: f64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad health score"))?;
                    let at_ns: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad health timestamp"))?;
                    scanner
                        .health
                        .as_mut()
                        .ok_or_else(|| err("health line but health=0"))?
                        .restore_score(a, score, SimTime::ZERO + SimDuration::from_nanos(at_ns));
                }
                "q" if v2 => {
                    let since_ns: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad quarantine since"))?;
                    let next_ns: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad next-probe time"))?;
                    scanner
                        .health
                        .as_mut()
                        .ok_or_else(|| err("quarantine line but health=0"))?
                        .restore_quarantine(
                            a,
                            SimTime::ZERO + SimDuration::from_nanos(since_ns),
                            SimTime::ZERO + SimDuration::from_nanos(next_ns),
                        );
                }
                other => return Err(err(&format!("unknown tag {other:?}"))),
            }
        }
        // Rebuild the incremental queue from the parsed maps. Successes
        // first so a subsequent failure keeps the pair's measurement
        // history through its backoff; quarantines last so they park
        // pairs whose state is already current.
        let measured: Vec<_> = scanner
            .measured_at
            .iter()
            .map(|(&(a, b), &t)| (a, b, t))
            .collect();
        for (a, b, t) in measured {
            scanner.queue.on_measured(a, b, t);
        }
        let failed: Vec<_> = scanner
            .pending_retry
            .iter()
            .map(|(&(a, b), f)| (a, b, f.next_attempt_at))
            .collect();
        for (a, b, until) in failed {
            scanner.queue.on_failed(a, b, until);
        }
        let quarantined = scanner
            .health
            .as_ref()
            .map(|h| h.quarantined_nodes())
            .unwrap_or_default();
        for n in quarantined {
            scanner.queue.quarantine(n);
        }
        Ok(scanner)
    }

    /// Writes the checkpoint to a file atomically: the document goes to
    /// `<path>.tmp` first and is renamed into place, so a crash mid-write
    /// can never leave a torn checkpoint where
    /// [`Scanner::from_checkpoint`] would misparse it. When a previous
    /// checkpoint exists and still verifies, it is promoted to
    /// `<path>.bak` first, so [`Scanner::recover`] always has a last
    /// good generation to fall back to.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Ok(old) = std::fs::read_to_string(path) {
            // Never promote a corrupt primary over a good backup.
            if Scanner::from_checkpoint(&old).is_ok() {
                std::fs::rename(path, crate::checkpoint::bak_path(path))?;
            }
        }
        crate::checkpoint::write_atomic(path, &self.to_checkpoint())
    }

    /// Loads a scanner from a checkpoint file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Scanner> {
        let text = std::fs::read_to_string(path)?;
        Scanner::from_checkpoint(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Loads the checkpoint at `path`, falling back to the `.bak`
    /// generation [`Scanner::save`] maintains when the primary is
    /// missing, truncated, or corrupt. The primary's error is preserved
    /// when both fail.
    pub fn recover(path: impl AsRef<std::path::Path>) -> std::io::Result<Scanner> {
        Scanner::recover_observed(path, &Obs::off(), SimTime::ZERO)
    }

    /// [`Scanner::recover`] with the fallback made visible: when the
    /// primary is refused and the `.bak` generation loads instead, the
    /// `ting.checkpoint.recovered_bak` counter is incremented and (at
    /// trace level) a [`obs::names::SCAN_RECOVER_BAK`] event records
    /// the path and the primary's error — silent recovery from a
    /// corrupt checkpoint is itself a signal worth alerting on.
    pub fn recover_observed(
        path: impl AsRef<std::path::Path>,
        obs: &Obs,
        now: SimTime,
    ) -> std::io::Result<Scanner> {
        let path = path.as_ref();
        match Scanner::load(path) {
            Ok(s) => Ok(s),
            Err(primary_err) => {
                let s = Scanner::load(crate::checkpoint::bak_path(path)).map_err(|_| {
                    std::io::Error::new(primary_err.kind(), primary_err.to_string())
                })?;
                obs.inc("ting.checkpoint.recovered_bak");
                if obs.is_tracing() {
                    obs.event(
                        obs::names::SCAN_RECOVER_BAK,
                        now.as_nanos(),
                        vec![
                            ("path", Value::Str(path.display().to_string())),
                            ("primary_error", Value::Str(primary_err.to_string())),
                        ],
                    );
                }
                Ok(s)
            }
        }
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The health sub-config a `health_*` checkpoint key writes into;
/// `health=1` must precede it in the config line.
fn health_cfg<'a>(c: &'a mut ScannerConfig, k: &str) -> Result<&'a mut HealthConfig, String> {
    c.health
        .as_mut()
        .ok_or_else(|| format!("{k} before health=1"))
}

/// The validation sub-config a `val_*` checkpoint key writes into;
/// `val=1` must precede it in the config line.
fn val_cfg<'a>(c: &'a mut ScannerConfig, k: &str) -> Result<&'a mut ValidationConfig, String> {
    c.validation
        .as_mut()
        .ok_or_else(|| format!("{k} before val=1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::TingConfig;
    use tor_sim::TorNetworkBuilder;

    fn setup(pairs_per_round: usize) -> (tor_sim::TorNetwork, Scanner, Ting) {
        let net = TorNetworkBuilder::testbed(61).build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(8).collect();
        let scanner = Scanner::new(
            nodes,
            ScannerConfig {
                staleness: netsim::SimDuration::from_hours(24),
                pairs_per_round,
                ..ScannerConfig::default()
            },
        );
        (net, scanner, Ting::new(TingConfig::fast()))
    }

    #[test]
    fn rounds_converge_to_full_coverage() {
        let (mut net, mut scanner, ting) = setup(10);
        // 8 nodes → 28 pairs → 3 rounds of 10.
        let r1 = scanner.run_round(&mut net, &ting);
        assert_eq!(r1.measured, 10);
        assert!(scanner.coverage() < 1.0);
        scanner.run_round(&mut net, &ting);
        let r3 = scanner.run_round(&mut net, &ting);
        assert_eq!(r3.measured, 8);
        assert_eq!(scanner.coverage(), 1.0);
        assert!(scanner.matrix().is_complete());
        assert_eq!(r3.still_pending, 0);
    }

    #[test]
    fn fresh_estimates_are_not_remeasured() {
        let (mut net, mut scanner, ting) = setup(30);
        scanner.run_round(&mut net, &ting);
        assert!(scanner.matrix().is_complete());
        // Immediately afterwards nothing is stale.
        assert!(scanner.plan_round(net.sim.now()).is_empty());
    }

    #[test]
    fn stale_estimates_get_refreshed_oldest_first() {
        let (mut net, mut scanner, ting) = setup(30);
        scanner.run_round(&mut net, &ting);
        let first_pair = {
            let nodes = scanner.matrix().nodes();
            (nodes[0], nodes[1])
        };
        let t0 = scanner.measured_at(first_pair.0, first_pair.1).unwrap();
        // Two days later everything is stale; the plan is non-empty and
        // ordered oldest-first.
        let later = netsim::SimTime::ZERO + netsim::SimDuration::from_hours(48);
        net.sim.advance_to(later);
        let plan = scanner.plan_round(net.sim.now());
        assert!(!plan.is_empty());
        scanner.run_round(&mut net, &ting);
        let t1 = scanner.measured_at(first_pair.0, first_pair.1).unwrap();
        assert!(t1 > t0, "stale pair not refreshed");
    }

    #[test]
    fn unmeasured_pairs_outrank_stale_ones() {
        let (mut net, mut scanner, ting) = setup(27);
        // Measure 27 of 28 pairs; age them; the unmeasured pair must
        // come first in the next plan.
        scanner.run_round(&mut net, &ting);
        let plan_before = scanner.plan_round(net.sim.now());
        assert_eq!(plan_before.len(), 1, "one pair left unmeasured");
        let missing = plan_before[0];
        net.sim
            .advance_to(netsim::SimTime::ZERO + netsim::SimDuration::from_hours(48));
        let plan = scanner.plan_round(net.sim.now());
        assert_eq!(plan[0], missing);
    }

    #[test]
    fn still_pending_reports_true_backlog_beyond_round_cap() {
        let (mut net, mut scanner, ting) = setup(5);
        // 8 nodes → 28 pairs, 5 measured per round. The old report
        // derived `still_pending` from a second `plan_round` sweep,
        // which capped it at `pairs_per_round`; it must be the true
        // backlog.
        let r = scanner.run_round(&mut net, &ting);
        assert_eq!(r.measured, 5);
        assert_eq!(r.still_pending, 23);
    }

    #[test]
    fn implausible_estimates_never_reach_the_cache() {
        use crate::estimator::CircuitSamples;

        let mut scanner = Scanner::new(vec![NodeId(1), NodeId(2)], ScannerConfig::default());
        let ting = Ting::new(TingConfig::fast());
        let now = SimTime::ZERO + SimDuration::from_secs(10);
        let sampled = |full: f64, leg: f64| TingMeasurement {
            full: CircuitSamples::new(vec![full; 5]),
            x_leg: CircuitSamples::new(vec![leg; 5]),
            y_leg: CircuitSamples::new(vec![leg; 5]),
            elapsed_s: 1.0,
        };
        // Eq. (4): 10 − 6 − 6 = −2 ms, a measurement artifact.
        let bad = sampled(10.0, 12.0);
        assert!(bad.estimate_ms() < 0.0);
        assert!(!scanner.record_success(NodeId(1), NodeId(2), &bad, now, &ting));
        assert_eq!(
            scanner.matrix().measured_pairs(),
            0,
            "negative estimate must never be cached"
        );
        assert_eq!(scanner.measured_at(NodeId(1), NodeId(2)), None);
        // The pair re-queued under the ordinary failure backoff.
        let (attempts, next_at) = scanner.retry_state(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(attempts, 1);
        assert!(next_at > now);
        assert!(scanner.plan_round(now).is_empty());
        assert_eq!(scanner.plan_round(next_at), vec![(NodeId(1), NodeId(2))]);
        // A plausible re-measurement is accepted and clears the backoff.
        assert!(scanner.record_success(NodeId(1), NodeId(2), &sampled(50.0, 20.0), next_at, &ting));
        assert_eq!(scanner.matrix().get(NodeId(1), NodeId(2)), Some(30.0));
        assert_eq!(scanner.retry_state(NodeId(1), NodeId(2)), None);
    }

    #[test]
    fn coverage_of_empty_scanner() {
        let scanner = Scanner::new(vec![NodeId(1), NodeId(2)], ScannerConfig::default());
        assert_eq!(scanner.coverage(), 0.0);
        assert_eq!(scanner.measured_at(NodeId(1), NodeId(2)), None);
    }
}
