//! Incremental all-pairs scanning with caching (§4.6's workflow).
//!
//! "Taking measurements with Ting infrequently and caching them is
//! sufficient, and thus permits obtaining a large dataset of RTTs
//! between Tor nodes." A realistic deployment does not re-measure 1225
//! pairs every hour: it keeps a cache, spends a bounded measurement
//! budget per round, and prioritizes pairs that were never measured or
//! whose estimates have gone stale. [`Scanner`] implements that loop on
//! top of [`crate::matrix::RttMatrix`].

use crate::matrix::RttMatrix;
use crate::orchestrator::{Ting, TingError};
use netsim::{NodeId, SimTime};
use std::collections::HashMap;
use tor_sim::TorNetwork;

/// Scanner policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannerConfig {
    /// Estimates older than this are stale and get re-measured.
    pub staleness: netsim::SimDuration,
    /// Maximum pairs measured per round (rate limiting; the paper is
    /// explicit that Ting "imposes little communication or
    /// computational overhead on the Tor network" — a deployment keeps
    /// it that way).
    pub pairs_per_round: usize,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            // §4.6 measured stability over a week; a day is comfortably
            // inside the window where estimates stay representative.
            staleness: netsim::SimDuration::from_hours(24),
            pairs_per_round: 50,
        }
    }
}

/// Outcome of one scan round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    pub measured: usize,
    pub failed: usize,
    pub still_pending: usize,
}

/// A caching, prioritizing all-pairs scanner.
pub struct Scanner {
    config: ScannerConfig,
    matrix: RttMatrix,
    measured_at: HashMap<(NodeId, NodeId), SimTime>,
}

impl Scanner {
    /// Creates a scanner over a fixed relay set.
    pub fn new(nodes: Vec<NodeId>, config: ScannerConfig) -> Scanner {
        Scanner {
            config,
            matrix: RttMatrix::new(nodes),
            measured_at: HashMap::new(),
        }
    }

    /// The current cached dataset.
    pub fn matrix(&self) -> &RttMatrix {
        &self.matrix
    }

    /// When `pair` was last measured, if ever.
    pub fn measured_at(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.measured_at.get(&key(a, b)).copied()
    }

    /// Pairs the scanner would measure next, most urgent first:
    /// never-measured pairs, then stale ones, oldest first.
    pub fn plan_round(&self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let nodes = self.matrix.nodes().to_vec();
        let mut unmeasured = Vec::new();
        let mut stale: Vec<((NodeId, NodeId), SimTime)> = Vec::new();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                match self.measured_at.get(&key(a, b)) {
                    None => unmeasured.push((a, b)),
                    Some(&t) => {
                        if now.since(t) >= self.config.staleness {
                            stale.push(((a, b), t));
                        }
                    }
                }
            }
        }
        stale.sort_by_key(|&(_, t)| t);
        unmeasured
            .into_iter()
            .chain(stale.into_iter().map(|(p, _)| p))
            .take(self.config.pairs_per_round)
            .collect()
    }

    /// Executes one round against the network. Failed measurements
    /// (circuit build failures on churned relays) stay pending for the
    /// next round rather than poisoning the cache.
    pub fn run_round(&mut self, net: &mut TorNetwork, ting: &Ting) -> RoundReport {
        let plan = self.plan_round(net.sim.now());
        let mut measured = 0;
        let mut failed = 0;
        for (a, b) in plan {
            match ting.measure_pair(net, a, b) {
                Ok(m) => {
                    self.matrix.set(a, b, m.estimate_ms());
                    self.measured_at.insert(key(a, b), net.sim.now());
                    measured += 1;
                }
                Err(TingError::CircuitBuildFailed { .. })
                | Err(TingError::StreamFailed)
                | Err(TingError::ProbeLost) => {
                    failed += 1;
                }
            }
        }
        RoundReport {
            measured,
            failed,
            still_pending: self.plan_round(net.sim.now()).len(),
        }
    }

    /// Fraction of pairs currently covered by a (possibly stale) cache
    /// entry.
    pub fn coverage(&self) -> f64 {
        let n = self.matrix.len();
        let total = n * (n - 1) / 2;
        if total == 0 {
            return 1.0;
        }
        self.matrix.measured_pairs() as f64 / total as f64
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::TingConfig;
    use tor_sim::TorNetworkBuilder;

    fn setup(pairs_per_round: usize) -> (tor_sim::TorNetwork, Scanner, Ting) {
        let net = TorNetworkBuilder::testbed(61).build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(8).collect();
        let scanner = Scanner::new(
            nodes,
            ScannerConfig {
                staleness: netsim::SimDuration::from_hours(24),
                pairs_per_round,
            },
        );
        (net, scanner, Ting::new(TingConfig::fast()))
    }

    #[test]
    fn rounds_converge_to_full_coverage() {
        let (mut net, mut scanner, ting) = setup(10);
        // 8 nodes → 28 pairs → 3 rounds of 10.
        let r1 = scanner.run_round(&mut net, &ting);
        assert_eq!(r1.measured, 10);
        assert!(scanner.coverage() < 1.0);
        scanner.run_round(&mut net, &ting);
        let r3 = scanner.run_round(&mut net, &ting);
        assert_eq!(r3.measured, 8);
        assert_eq!(scanner.coverage(), 1.0);
        assert!(scanner.matrix().is_complete());
        assert_eq!(r3.still_pending, 0);
    }

    #[test]
    fn fresh_estimates_are_not_remeasured() {
        let (mut net, mut scanner, ting) = setup(30);
        scanner.run_round(&mut net, &ting);
        assert!(scanner.matrix().is_complete());
        // Immediately afterwards nothing is stale.
        assert!(scanner.plan_round(net.sim.now()).is_empty());
    }

    #[test]
    fn stale_estimates_get_refreshed_oldest_first() {
        let (mut net, mut scanner, ting) = setup(30);
        scanner.run_round(&mut net, &ting);
        let first_pair = {
            let nodes = scanner.matrix().nodes();
            (nodes[0], nodes[1])
        };
        let t0 = scanner.measured_at(first_pair.0, first_pair.1).unwrap();
        // Two days later everything is stale; the plan is non-empty and
        // ordered oldest-first.
        let later = netsim::SimTime::ZERO + netsim::SimDuration::from_hours(48);
        net.sim.advance_to(later);
        let plan = scanner.plan_round(net.sim.now());
        assert!(!plan.is_empty());
        scanner.run_round(&mut net, &ting);
        let t1 = scanner.measured_at(first_pair.0, first_pair.1).unwrap();
        assert!(t1 > t0, "stale pair not refreshed");
    }

    #[test]
    fn unmeasured_pairs_outrank_stale_ones() {
        let (mut net, mut scanner, ting) = setup(27);
        // Measure 27 of 28 pairs; age them; the unmeasured pair must
        // come first in the next plan.
        scanner.run_round(&mut net, &ting);
        let plan_before = scanner.plan_round(net.sim.now());
        assert_eq!(plan_before.len(), 1, "one pair left unmeasured");
        let missing = plan_before[0];
        net.sim
            .advance_to(netsim::SimTime::ZERO + netsim::SimDuration::from_hours(48));
        let plan = scanner.plan_round(net.sim.now());
        assert_eq!(plan[0], missing);
    }

    #[test]
    fn coverage_of_empty_scanner() {
        let scanner = Scanner::new(vec![NodeId(1), NodeId(2)], ScannerConfig::default());
        assert_eq!(scanner.coverage(), 0.0);
        assert_eq!(scanner.measured_at(NodeId(1), NodeId(2)), None);
    }
}
