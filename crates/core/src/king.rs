//! A King-style estimator — the technique Ting supersedes (§2, §5.3).
//!
//! King (Gummadi et al., IMW 2002) estimated the latency between two
//! arbitrary hosts by measuring between *recursive DNS servers near
//! them*. Its two famous limitations, both reproduced here:
//!
//! 1. **Proxy error.** "Ting has an advantage in accuracy in that the
//!    Tor node representing a prefix is a member of that prefix, rather
//!    than an authoritative name server that may be much better
//!    connected" (§5.3) — King's Fig. 5 shows a distribution "skewed to
//!    the left of x = 1" (§4.2). We model a target's name server as a
//!    well-connected box at the target AS's hub: the last mile (large
//!    for residential relays) vanishes from the estimate, producing
//!    exactly that underestimate skew.
//! 2. **Vanishing applicability.** King needs the name server to accept
//!    recursive queries from strangers; the paper re-measured support
//!    at ~3%, down from 72–79% in 2002. [`KingConfig::ns_availability`]
//!    models this: most measurement attempts simply fail today.

use netsim::{NodeId, TrafficClass, Underlay};
use rand::Rng;

/// King deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KingConfig {
    /// Probability that a target's name server still answers recursive
    /// queries (2002: ~0.75; 2015 per the paper: ~0.03).
    pub ns_availability: f64,
    /// One-way last-mile delay of a name server (ms) — datacenter-ish,
    /// regardless of what the measured host's own access looks like.
    pub ns_access_ms: f64,
    /// Probe samples (King also min-filters).
    pub samples: usize,
}

impl KingConfig {
    /// King as deployable in 2002.
    pub fn year_2002() -> KingConfig {
        KingConfig {
            ns_availability: 0.75,
            ns_access_ms: 0.3,
            samples: 20,
        }
    }

    /// King as (barely) deployable at the paper's writing.
    pub fn year_2015() -> KingConfig {
        KingConfig {
            ns_availability: 0.03,
            ..KingConfig::year_2002()
        }
    }
}

/// One King measurement attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KingOutcome {
    /// Estimated RTT between the name servers near x and y (ms).
    Estimate(f64),
    /// A required name server refuses recursive queries.
    NsUnavailable,
}

/// Attempts a King measurement of the pair `(x, y)`.
///
/// The estimate is the minimum of `samples` probe RTTs between the two
/// hub-located name servers, using ICMP-class treatment (DNS/UDP shares
/// the non-TCP policy path in this model).
pub fn king_measure<R: Rng + ?Sized>(
    underlay: &mut Underlay,
    x: NodeId,
    y: NodeId,
    config: &KingConfig,
    now: netsim::SimTime,
    rng: &mut R,
) -> KingOutcome {
    // King needs at least one cooperative recursive NS; require it on
    // the x side (as the original technique did) and availability on y
    // for the authoritative step.
    if !rng.gen_bool(config.ns_availability) {
        return KingOutcome::NsUnavailable;
    }
    let ax = underlay.node(x.index()).as_id;
    let ay = underlay.node(y.index()).as_id;
    let mut min = f64::INFINITY;
    for _ in 0..config.samples.max(1) {
        min = min.min(ns_rtt_sample_ms(underlay, ax, ay, config, now, rng));
    }
    KingOutcome::Estimate(min)
}

/// One probe RTT between the name servers at two AS hubs.
fn ns_rtt_sample_ms<R: Rng + ?Sized>(
    underlay: &mut Underlay,
    ax: netsim::AsId,
    ay: netsim::AsId,
    config: &KingConfig,
    now: netsim::SimTime,
    rng: &mut R,
) -> f64 {
    let cfg = *underlay.config();
    if ax == ay {
        // Same provider: both name servers in one rack.
        return cfg.loopback_ms * 2.0 + 2.0 * config.ns_access_ms;
    }
    let hub_a = underlay.as_profile(ax).hub;
    let hub_b = underlay.as_profile(ay).hub;
    let (inflation, peering) = underlay.route_properties(ax, ay);
    let policy = underlay.as_profile(ax).policy.extra_ms(TrafficClass::Icmp) / 2.0
        + underlay.as_profile(ay).policy.extra_ms(TrafficClass::Icmp) / 2.0;
    let base_owd = cfg.path_floor_ms
        + 2.0 * config.ns_access_ms
        + geo::great_circle_km(hub_a, hub_b) * inflation / geo::FIBER_KM_PER_MS
        + peering
        + policy;
    // Jitter, same shape as host paths.
    let jitter = |rng: &mut R, underlay: &Underlay| {
        let a = underlay.as_profile(ax);
        let b = underlay.as_profile(ay);
        let mean = (a.jitter_mean_ms + b.jitter_mean_ms) / 2.0
            * (a.load_factor(now) + b.load_factor(now))
            / 2.0;
        -rng.gen_range(1e-12..1.0f64).ln() * mean
    };
    2.0 * base_owd + jitter(rng, underlay) + jitter(rng, underlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tor_sim::TorNetworkBuilder;

    #[test]
    fn king_underestimates_residential_pairs() {
        // The §4.2/§5.3 skew: for hosts with real last-mile delay, the
        // NS-to-NS estimate misses the access legs → estimate < truth.
        let mut net = TorNetworkBuilder::live(3001, 60).build();
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = KingConfig {
            ns_availability: 1.0,
            ..KingConfig::year_2002()
        };
        let mut ratios = Vec::new();
        for k in 0..20 {
            let (x, y) = (net.relays[k], net.relays[k + 25]);
            let truth = net.true_rtt_ms(x, y);
            let now = net.sim.now();
            match king_measure(net.sim.underlay_mut(), x, y, &cfg, now, &mut rng) {
                KingOutcome::Estimate(e) => ratios.push(e / truth),
                KingOutcome::NsUnavailable => unreachable!(),
            }
        }
        let median = stats::median(&ratios).unwrap();
        assert!(median < 1.0, "King not skewed left: median ratio {median}");
        assert!(median > 0.5, "King too wrong: median ratio {median}");
    }

    #[test]
    fn king_2015_mostly_fails() {
        let mut net = TorNetworkBuilder::live(3002, 30).build();
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = KingConfig::year_2015();
        let now = net.sim.now();
        let failures = (0..200)
            .filter(|&i| {
                let (x, y) = (net.relays[i % 30], net.relays[(i + 7) % 30]);
                matches!(
                    king_measure(net.sim.underlay_mut(), x, y, &cfg, now, &mut rng),
                    KingOutcome::NsUnavailable
                )
            })
            .count();
        // ~97% of attempts should fail.
        assert!(failures > 180, "only {failures}/200 failed");
    }

    #[test]
    fn same_as_pairs_estimate_near_zero() {
        let mut net = TorNetworkBuilder::live(3003, 40).build();
        // Find two relays in one AS.
        let mut by_as = std::collections::HashMap::new();
        for &r in &net.relays.clone() {
            let a = net.sim.underlay().node(r.index()).as_id;
            by_as.entry(a).or_insert_with(Vec::new).push(r);
        }
        let Some(pair) = by_as.values().find(|v| v.len() >= 2) else {
            return; // extremely unlikely with 40 relays
        };
        let (x, y) = (pair[0], pair[1]);
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = KingConfig {
            ns_availability: 1.0,
            ..KingConfig::year_2002()
        };
        let now = net.sim.now();
        match king_measure(net.sim.underlay_mut(), x, y, &cfg, now, &mut rng) {
            KingOutcome::Estimate(e) => assert!(e < 2.0, "same-AS estimate {e}"),
            KingOutcome::NsUnavailable => unreachable!(),
        }
    }
}
