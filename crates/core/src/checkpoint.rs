//! Crash-safe checkpoint plumbing.
//!
//! A long scan campaign survives being killed only if its checkpoint
//! file survives too. Three failure modes matter in practice and each
//! has a counter-measure here:
//!
//! * **Torn writes** — the process dies mid-`write(2)`. Checkpoints are
//!   written to a `<path>.tmp` sibling, **fsynced**, and renamed into
//!   place ([`write_atomic`]): the rename is atomic on POSIX
//!   filesystems and the fsync orders the data before it, so the
//!   destination either holds the old document or the complete new one,
//!   never a prefix — even across a power loss right after the rename.
//! * **Corruption at rest** — bit rot, filesystem bugs, a stray editor.
//!   The v2 checkpoint format ends with a CRC-32 trailer line covering
//!   every preceding byte ([`crc32`], [`seal`], [`verify_sealed`]); any
//!   flipped or truncated byte fails verification and the loader
//!   refuses the file instead of resuming from silently wrong state.
//! * **A corrupt primary with a good history** — every successful save
//!   first promotes the previous (verified) checkpoint to `<path>.bak`
//!   ([`bak_path`]), so [`crate::scanner::Scanner::recover`] can fall
//!   back to the last good generation.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The CRC-32 (IEEE 802.3, reflected, `0xEDB88320`) of `bytes` — the
/// same polynomial as zip/gzip/PNG, so sealed checkpoints can be
/// cross-checked with standard tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The trailer prefix that marks the integrity line.
pub const CRC_PREFIX: &str = "# crc32: ";

/// Appends the CRC-32 trailer line to a checkpoint document. The CRC
/// covers every byte before the trailer, including the final newline of
/// the body.
pub fn seal(mut body: String) -> String {
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("{CRC_PREFIX}{crc:08x}\n"));
    body
}

/// Splits a sealed document into its body and verifies the trailer.
/// Returns the body on success; an error describing the corruption
/// (missing trailer, malformed hex, mismatched CRC) otherwise.
pub fn verify_sealed(text: &str) -> Result<&str, String> {
    let trimmed = text.trim_end_matches('\n');
    let trailer_start = trimmed
        .rfind('\n')
        .map(|i| i + 1)
        .ok_or("checkpoint has no CRC trailer (truncated?)")?;
    let trailer = &trimmed[trailer_start..];
    let hex = trailer
        .strip_prefix(CRC_PREFIX)
        .ok_or_else(|| format!("last line is not a CRC trailer: {trailer:?}"))?;
    let expected = u32::from_str_radix(hex.trim(), 16)
        .map_err(|e| format!("malformed CRC trailer {hex:?}: {e}"))?;
    let body = &text[..trailer_start];
    let actual = crc32(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "checkpoint CRC mismatch: trailer says {expected:08x}, content hashes to {actual:08x} \
             (corrupt or truncated file)"
        ));
    }
    Ok(body)
}

/// Writes `contents` to `path` atomically and durably: the bytes go to
/// the [`tmp_path`] sibling, which is **fsynced before** the rename —
/// POSIX rename atomicity only orders the directory entry, not the file
/// data, so without the fsync a power loss right after the rename could
/// leave the new name pointing at zero-length or partially-written
/// data. After the rename the parent directory is fsynced too (best
/// effort — not every filesystem supports directory handles) so the
/// rename itself survives the crash.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temp-file sibling used for atomic writes.
pub fn tmp_path(path: &Path) -> PathBuf {
    sibling(path, "tmp")
}

/// The last-good-generation backup sibling.
pub fn bak_path(path: &Path) -> PathBuf {
    sibling(path, "bak")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".");
    name.push(suffix);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let body = "# ting scan checkpoint v2\nm\t1\t2\t10\t0\n";
        let sealed = seal(body.to_string());
        assert_eq!(verify_sealed(&sealed).unwrap(), body);
    }

    #[test]
    fn any_flipped_body_byte_fails_verification() {
        let body = "# ting scan checkpoint v2\nm\t1\t2\t10\t0\n";
        let sealed = seal(body.to_string());
        // Every byte of the body is covered by the CRC; a flip anywhere
        // in it must be caught. (Flips inside the trailer itself either
        // fail hex parsing / mismatch the CRC, or — e.g. a hex-case
        // flip — leave the verified body byte-identical, which is
        // harmless by construction.)
        for i in 0..body.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(corrupt) = String::from_utf8(bytes) {
                assert!(
                    verify_sealed(&corrupt).is_err(),
                    "body flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_fails_verification() {
        let sealed = seal("# ting scan checkpoint v2\nm\t1\t2\t10\t0\n".to_string());
        // Any truncation that loses more than the final newline must be
        // rejected (losing only the trailing '\n' leaves the document
        // complete: body and trailer both intact).
        for cut in 0..sealed.len() - 1 {
            assert!(
                verify_sealed(&sealed[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn sibling_paths_append_suffixes() {
        assert_eq!(
            tmp_path(Path::new("/a/b/scan.ckpt")),
            Path::new("/a/b/scan.ckpt.tmp")
        );
        assert_eq!(
            bak_path(Path::new("/a/b/scan.ckpt")),
            Path::new("/a/b/scan.ckpt.bak")
        );
    }
}
