//! Per-relay health scoring and quarantine.
//!
//! §6's all-pairs campaign only converges on the live network because
//! sick relays don't get to stall it: the paper discards circuits that
//! fail to build and moves on. The scanner's per-pair backoff achieves
//! that locally, but a *dead* relay touches `n − 1` pairs, and each of
//! them independently burns build timeouts round after round. This
//! module adds the cross-pair view: every circuit/stream/probe outcome
//! feeds an EWMA success score for the relays involved, and a relay
//! whose score collapses enters **quarantine** — its pairs are parked
//! in the [`crate::queue::WorkQueue`] instead of scheduled, and the
//! relay re-earns its place via cheap probation probes (or pure decay,
//! for the case where the scanner simply stops hearing about it).
//!
//! State machine per relay:
//!
//! ```text
//!            score < quarantine_below
//!   Healthy ──────────────────────────▶ Quarantined
//!      ▲                                    │
//!      │   probation probes succeed         │ every probation_interval:
//!      │   (score ≥ release_above), or      │ one parked pair is
//!      │   the score decays back above      │ scheduled as a probe
//!      └────────────────────────────────────┘
//! ```
//!
//! Scores decay toward healthy with a configurable half-life, so a
//! quarantine is never a life sentence — matching how a relay that
//! rebooted looks fine again once the consensus catches up. All state
//! is plain `(f64, SimTime)` pairs serialized into the v2 checkpoint,
//! so kill/resume keeps bit-identical health decisions.

use netsim::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Health-model knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA weight of the newest observation.
    pub ewma_alpha: f64,
    /// Scores below this enter quarantine.
    pub quarantine_below: f64,
    /// Quarantined relays scoring at or above this are released.
    pub release_above: f64,
    /// Pause between probation probes of a quarantined relay.
    pub probation_interval: SimDuration,
    /// Half-life of the decay pulling scores back toward 1.0.
    pub decay_half_life: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            // From 1.0, four consecutive failures cross 0.25:
            // 0.70 → 0.49 → 0.34 → 0.24.
            ewma_alpha: 0.3,
            quarantine_below: 0.25,
            release_above: 0.6,
            probation_interval: SimDuration::from_secs(1800),
            decay_half_life: SimDuration::from_hours(6),
        }
    }
}

/// A quarantine/release transition produced by an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    Quarantined(NodeId),
    Released(NodeId),
}

/// Per-relay quarantine record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Quarantine {
    since: SimTime,
    next_probe_at: SimTime,
}

/// The relay health model: EWMA scores plus the quarantine roster.
#[derive(Debug, Clone)]
pub struct RelayHealth {
    config: HealthConfig,
    /// `(score, last update)` per relay; absent means never observed
    /// (implicitly healthy at 1.0).
    scores: HashMap<NodeId, (f64, SimTime)>,
    /// Quarantined relays, ordered for deterministic iteration.
    quarantined: BTreeMap<NodeId, Quarantine>,
}

impl RelayHealth {
    pub fn new(config: HealthConfig) -> RelayHealth {
        RelayHealth {
            config,
            scores: HashMap::new(),
            quarantined: BTreeMap::new(),
        }
    }

    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// The relay's current score with decay applied up to `now`
    /// (without mutating state). Unobserved relays score 1.0.
    pub fn score(&self, node: NodeId, now: SimTime) -> f64 {
        match self.scores.get(&node) {
            None => 1.0,
            Some(&(s, at)) => self.decayed(s, at, now),
        }
    }

    pub fn is_quarantined(&self, node: NodeId) -> bool {
        self.quarantined.contains_key(&node)
    }

    /// Currently quarantined relays, ascending by id.
    pub fn quarantined_nodes(&self) -> Vec<NodeId> {
        self.quarantined.keys().copied().collect()
    }

    /// `s` decayed from `at` to `now`: the deficit below 1.0 halves
    /// every `decay_half_life`.
    fn decayed(&self, s: f64, at: SimTime, now: SimTime) -> f64 {
        let half_ns = self.config.decay_half_life.as_nanos();
        if half_ns == 0 {
            return s;
        }
        let dt = now.since(at).as_nanos() as f64 / half_ns as f64;
        1.0 - (1.0 - s) * 0.5f64.powf(dt)
    }

    /// Feeds one success/failure observation for `node` and returns the
    /// quarantine transition it caused, if any.
    pub fn record(&mut self, node: NodeId, success: bool, now: SimTime) -> Option<HealthEvent> {
        let prior = self.score(node, now);
        let obs = if success { 1.0 } else { 0.0 };
        let score = self.config.ewma_alpha * obs + (1.0 - self.config.ewma_alpha) * prior;
        self.scores.insert(node, (score, now));
        if self.quarantined.contains_key(&node) {
            if score >= self.config.release_above {
                self.quarantined.remove(&node);
                return Some(HealthEvent::Released(node));
            }
            None
        } else if score < self.config.quarantine_below {
            self.quarantined.insert(
                node,
                Quarantine {
                    since: now,
                    next_probe_at: now + self.config.probation_interval,
                },
            );
            Some(HealthEvent::Quarantined(node))
        } else {
            None
        }
    }

    /// Quarantined relays whose probation probe is due, ascending by id.
    pub fn due_probes(&self, now: SimTime) -> Vec<NodeId> {
        self.quarantined
            .iter()
            .filter(|(_, q)| q.next_probe_at <= now)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Marks a probation probe as scheduled: the next one is not due
    /// before `now + probation_interval`.
    pub fn probe_scheduled(&mut self, node: NodeId, now: SimTime) {
        if let Some(q) = self.quarantined.get_mut(&node) {
            q.next_probe_at = now + self.config.probation_interval;
        }
    }

    /// Releases every quarantined relay whose decayed score has drifted
    /// back above the release threshold — the path out for a relay the
    /// scanner has stopped hearing about entirely. Returns the released
    /// relays, ascending by id.
    pub fn release_by_decay(&mut self, now: SimTime) -> Vec<NodeId> {
        let release: Vec<NodeId> = self
            .quarantined
            .keys()
            .copied()
            .filter(|&n| self.score(n, now) >= self.config.release_above)
            .collect();
        for &n in &release {
            let s = self.score(n, now);
            self.scores.insert(n, (s, now));
            self.quarantined.remove(&n);
        }
        release
    }

    /// Serializes scores (`h` lines) and the quarantine roster (`q`
    /// lines) for the v2 checkpoint. Deterministic order; f64s printed
    /// in their shortest exactly-roundtripping form.
    pub fn checkpoint_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut ids: Vec<NodeId> = self.scores.keys().copied().collect();
        ids.sort();
        for n in ids {
            let (s, at) = self.scores[&n];
            let _ = writeln!(out, "h\t{}\t{}\t{}", n.0, s, at.as_nanos());
        }
        for (n, q) in &self.quarantined {
            let _ = writeln!(
                out,
                "q\t{}\t{}\t{}",
                n.0,
                q.since.as_nanos(),
                q.next_probe_at.as_nanos()
            );
        }
        out
    }

    /// Restores one `h` score line (parsed fields).
    pub fn restore_score(&mut self, node: NodeId, score: f64, at: SimTime) {
        self.scores.insert(node, (score, at));
    }

    /// Restores one `q` quarantine line (parsed fields).
    pub fn restore_quarantine(&mut self, node: NodeId, since: SimTime, next_probe_at: SimTime) {
        self.quarantined.insert(
            node,
            Quarantine {
                since,
                next_probe_at,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn health() -> RelayHealth {
        RelayHealth::new(HealthConfig::default())
    }

    #[test]
    fn repeated_failures_quarantine() {
        let mut h = health();
        let n = NodeId(7);
        let mut event = None;
        for i in 0..10 {
            event = h.record(n, false, t(i));
            if event.is_some() {
                break;
            }
        }
        assert_eq!(event, Some(HealthEvent::Quarantined(n)));
        assert!(h.is_quarantined(n));
        // Further failures while quarantined emit no duplicate event.
        assert_eq!(h.record(n, false, t(20)), None);
    }

    #[test]
    fn occasional_failures_do_not_quarantine() {
        let mut h = health();
        let n = NodeId(3);
        for i in 0..50 {
            let ev = h.record(n, i % 5 != 0, t(i)); // 20% failure rate
            assert_eq!(ev, None, "at observation {i}");
        }
        assert!(!h.is_quarantined(n));
    }

    #[test]
    fn probation_successes_release() {
        let mut h = health();
        let n = NodeId(9);
        for i in 0..6 {
            h.record(n, false, t(i));
        }
        assert!(h.is_quarantined(n));
        let mut released = false;
        for i in 0..20 {
            if let Some(HealthEvent::Released(m)) = h.record(n, true, t(100 + i)) {
                assert_eq!(m, n);
                released = true;
                break;
            }
        }
        assert!(released, "successes never released the relay");
        assert!(!h.is_quarantined(n));
    }

    #[test]
    fn decay_releases_without_traffic() {
        let mut h = health();
        let n = NodeId(1);
        for i in 0..6 {
            h.record(n, false, t(i));
        }
        assert!(h.is_quarantined(n));
        assert!(h.release_by_decay(t(3600)).is_empty(), "released too soon");
        // Many half-lives later the deficit has decayed away.
        let released = h.release_by_decay(t(3600 * 24 * 7));
        assert_eq!(released, vec![n]);
        assert!(!h.is_quarantined(n));
        assert!(h.score(n, t(3600 * 24 * 7)) >= 0.6);
    }

    #[test]
    fn probation_probes_respect_the_interval() {
        let mut h = health();
        let n = NodeId(2);
        for i in 0..6 {
            h.record(n, false, t(i));
        }
        assert!(h.due_probes(t(10)).is_empty());
        let due_at = t(5 + 1800);
        assert_eq!(h.due_probes(due_at), vec![n]);
        h.probe_scheduled(n, due_at);
        assert!(h.due_probes(due_at).is_empty());
        assert_eq!(h.due_probes(due_at + SimDuration::from_secs(1800)), vec![n]);
    }

    #[test]
    fn checkpoint_lines_roundtrip() {
        let mut h = health();
        for i in 0..6 {
            h.record(NodeId(4), false, t(i));
        }
        h.record(NodeId(5), true, t(9));
        let lines = h.checkpoint_lines();
        let mut restored = health();
        for line in lines.lines() {
            let f: Vec<&str> = line.split('\t').collect();
            let n = NodeId(f[1].parse().unwrap());
            match f[0] {
                "h" => restored.restore_score(
                    n,
                    f[2].parse().unwrap(),
                    SimTime::ZERO + SimDuration::from_nanos(f[3].parse().unwrap()),
                ),
                "q" => restored.restore_quarantine(
                    n,
                    SimTime::ZERO + SimDuration::from_nanos(f[2].parse().unwrap()),
                    SimTime::ZERO + SimDuration::from_nanos(f[3].parse().unwrap()),
                ),
                other => panic!("unexpected tag {other}"),
            }
        }
        assert_eq!(restored.checkpoint_lines(), lines);
        assert_eq!(restored.quarantined_nodes(), h.quarantined_nodes());
    }
}
