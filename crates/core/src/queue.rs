//! The scanner's incrementally maintained work queue.
//!
//! [`crate::scanner::Scanner`] used to re-derive its priorities with a
//! full O(n²) sweep over every pair on every round (twice, in fact:
//! once to plan and once to report). [`WorkQueue`] keeps the same
//! priority order — never-measured pairs first in index order, then
//! stale pairs oldest first, with failure-backoff pairs withheld until
//! eligible — in a set of ordered structures that are updated in
//! O(log n) per measurement outcome, so planning a round costs
//! O(round size · log n) instead of O(n²).
//!
//! The ordering contract is exactly `Scanner::plan_round`'s, and a
//! property test (`tests/parallel_scan.rs`) replays randomized
//! measure/fail/staleness histories against both implementations to
//! hold the two to bit-equality.

use netsim::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Where one pair currently lives inside the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairState {
    /// Never successfully measured; eligible immediately.
    Unmeasured,
    /// Measured at the given instant and not yet stale.
    Fresh(SimTime),
    /// Measured at the given instant, past the staleness horizon.
    Stale(SimTime),
    /// Under failure backoff until `until`; `measured` remembers the
    /// last successful measurement (if any) so the pair re-enters the
    /// right tier when the backoff expires.
    Backoff {
        until: SimTime,
        measured: Option<SimTime>,
    },
}

/// An incrementally maintained priority structure over all node pairs.
///
/// Pairs are keyed by their `(i, j)` indices (`i < j`) into the node
/// list, which makes the `BTreeSet` orderings reproduce the old O(n²)
/// sweep exactly: the sweep pushed unmeasured pairs in `(i, j)`
/// iteration order and stably sorted stale pairs by measurement time
/// (ties keeping iteration order).
#[derive(Debug, Clone)]
pub struct WorkQueue {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    staleness: SimDuration,
    state: HashMap<(u32, u32), PairState>,
    /// Never-measured pairs, in `(i, j)` index order.
    unmeasured: BTreeSet<(u32, u32)>,
    /// Measured, not yet stale; ordered by measurement time so the
    /// stale horizon advances over a prefix.
    fresh: BTreeSet<(SimTime, u32, u32)>,
    /// Measured and stale; oldest measurement first.
    stale: BTreeSet<(SimTime, u32, u32)>,
    /// Under failure backoff; ordered by eligibility instant.
    backoff: BTreeSet<(SimTime, u32, u32)>,
    /// Relays under health quarantine (see [`crate::health`]).
    quarantined: BTreeSet<u32>,
    /// Pairs parked because an endpoint is quarantined. Parked pairs
    /// keep their `state` entry current but live in no tier set, so
    /// `plan`/`backlog` skip them entirely until the relay is released.
    parked: BTreeSet<(u32, u32)>,
    /// Pairs permanently out of scope (owned by another shard — see
    /// [`crate::shard`]). Like parked pairs they keep their `state`
    /// entry but live in no tier set; unlike parked pairs they are
    /// never released and never picked as probation probes.
    retired: BTreeSet<(u32, u32)>,
}

impl WorkQueue {
    /// Creates a queue over `nodes` with every pair unmeasured.
    ///
    /// # Panics
    /// Panics on duplicate nodes.
    pub fn new(nodes: Vec<NodeId>, staleness: SimDuration) -> WorkQueue {
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            assert!(index.insert(*n, i).is_none(), "duplicate node {n:?}");
        }
        let n = nodes.len();
        let mut unmeasured = BTreeSet::new();
        let mut state = HashMap::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                unmeasured.insert((i, j));
                state.insert((i, j), PairState::Unmeasured);
            }
        }
        WorkQueue {
            nodes,
            index,
            staleness,
            state,
            unmeasured,
            fresh: BTreeSet::new(),
            stale: BTreeSet::new(),
            backoff: BTreeSet::new(),
            quarantined: BTreeSet::new(),
            parked: BTreeSet::new(),
            retired: BTreeSet::new(),
        }
    }

    fn pair_key(&self, a: NodeId, b: NodeId) -> (u32, u32) {
        let (ia, ib) = (self.index[&a] as u32, self.index[&b] as u32);
        if ia <= ib {
            (ia, ib)
        } else {
            (ib, ia)
        }
    }

    /// Removes `key` from whichever active structure holds it.
    fn detach(&mut self, key: (u32, u32)) -> PairState {
        let state = self.state[&key];
        match state {
            PairState::Unmeasured => {
                self.unmeasured.remove(&key);
            }
            PairState::Fresh(t) => {
                self.fresh.remove(&(t, key.0, key.1));
            }
            PairState::Stale(t) => {
                self.stale.remove(&(t, key.0, key.1));
            }
            PairState::Backoff { until, .. } => {
                self.backoff.remove(&(until, key.0, key.1));
            }
        }
        state
    }

    fn attach(&mut self, key: (u32, u32), state: PairState) {
        match state {
            PairState::Unmeasured => {
                self.unmeasured.insert(key);
            }
            PairState::Fresh(t) => {
                self.fresh.insert((t, key.0, key.1));
            }
            PairState::Stale(t) => {
                self.stale.insert((t, key.0, key.1));
            }
            PairState::Backoff { until, .. } => {
                self.backoff.insert((until, key.0, key.1));
            }
        }
        self.state.insert(key, state);
    }

    /// Records a successful measurement at `at`. Clears any backoff.
    pub fn on_measured(&mut self, a: NodeId, b: NodeId, at: SimTime) {
        let key = self.pair_key(a, b);
        // A parked pair (probation probe outcome) or a retired pair
        // keeps its state current without re-entering any tier.
        if self.parked.contains(&key) || self.retired.contains(&key) {
            self.state.insert(key, PairState::Fresh(at));
            return;
        }
        self.detach(key);
        // A success always re-enters as fresh; staleness migration
        // happens lazily against the clock in `normalize`.
        self.attach(key, PairState::Fresh(at));
    }

    /// Records a failed measurement: the pair is withheld until
    /// `until`, then re-enters the tier its measurement history puts
    /// it in (unmeasured, or stale/fresh by its last success).
    pub fn on_failed(&mut self, a: NodeId, b: NodeId, until: SimTime) {
        let key = self.pair_key(a, b);
        if self.parked.contains(&key) || self.retired.contains(&key) {
            let measured = match self.state[&key] {
                PairState::Unmeasured => None,
                PairState::Fresh(t) | PairState::Stale(t) => Some(t),
                PairState::Backoff { measured, .. } => measured,
            };
            self.state
                .insert(key, PairState::Backoff { until, measured });
            return;
        }
        let measured = match self.detach(key) {
            PairState::Unmeasured => None,
            PairState::Fresh(t) | PairState::Stale(t) => Some(t),
            PairState::Backoff { measured, .. } => measured,
        };
        self.attach(key, PairState::Backoff { until, measured });
    }

    /// Parks every pair touching `node`: quarantined relays' pairs are
    /// deprioritized out of planning entirely instead of burning
    /// timeouts on schedule. No-op for unknown nodes.
    pub fn quarantine(&mut self, node: NodeId) {
        let Some(&i) = self.index.get(&node) else {
            return;
        };
        let i = i as u32;
        if !self.quarantined.insert(i) {
            return;
        }
        let mut keys: Vec<(u32, u32)> = self
            .state
            .keys()
            .copied()
            .filter(|&(a, b)| a == i || b == i)
            .collect();
        keys.sort_unstable();
        for key in keys {
            // Retired pairs are already out of every tier and must not
            // leak back in through a later release.
            if self.retired.contains(&key) {
                continue;
            }
            if self.parked.insert(key) {
                self.detach(key);
            }
        }
    }

    /// Permanently removes a pair from scheduling: it leaves whatever
    /// tier holds it and never re-enters one, though measurement
    /// outcomes still keep its `state` entry current. This is how a
    /// shard-scoped scanner disowns the pairs other shards measure (see
    /// [`crate::shard::partition_pairs`]). Irreversible; no-op on
    /// unknown or already-retired pairs.
    pub fn retire(&mut self, a: NodeId, b: NodeId) {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return;
        };
        let (ia, ib) = (ia as u32, ib as u32);
        let key = if ia <= ib { (ia, ib) } else { (ib, ia) };
        if !self.state.contains_key(&key) || !self.retired.insert(key) {
            return;
        }
        if !self.parked.remove(&key) {
            self.detach(key);
        }
    }

    /// Pairs permanently retired from scheduling.
    pub fn retired_pairs(&self) -> usize {
        self.retired.len()
    }

    /// Releases `node` from quarantine: its parked pairs re-enter their
    /// tiers, except those whose other endpoint is still quarantined.
    pub fn release(&mut self, node: NodeId) {
        let Some(&i) = self.index.get(&node) else {
            return;
        };
        let i = i as u32;
        if !self.quarantined.remove(&i) {
            return;
        }
        let keys: Vec<(u32, u32)> = self
            .parked
            .iter()
            .copied()
            .filter(|&(a, b)| a == i || b == i)
            .collect();
        for key in keys {
            let other = if key.0 == i { key.1 } else { key.0 };
            if self.quarantined.contains(&other) {
                continue;
            }
            self.parked.remove(&key);
            let state = self.state[&key];
            self.attach(key, state);
        }
    }

    /// Whether `node` is currently quarantined.
    pub fn is_quarantined(&self, node: NodeId) -> bool {
        self.index
            .get(&node)
            .is_some_and(|&i| self.quarantined.contains(&(i as u32)))
    }

    /// Picks a probation-probe pair for a quarantined `node`: the first
    /// parked pair (in index order) joining it to a non-quarantined
    /// peer. The pair stays parked — its outcome feeds the health model
    /// without re-entering the schedule.
    pub fn probe_pair(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        let &i = self.index.get(&node)?;
        let i = i as u32;
        self.parked
            .iter()
            .copied()
            .filter(|&(a, b)| a == i || b == i)
            .find(|&(a, b)| {
                let other = if a == i { b } else { a };
                !self.quarantined.contains(&other)
            })
            .map(|(a, b)| (self.nodes[a as usize], self.nodes[b as usize]))
    }

    /// Pairs currently parked under quarantine.
    pub fn parked_pairs(&self) -> usize {
        self.parked.len()
    }

    /// Advances the time-dependent tiers to `now`: expired backoffs
    /// re-enter their measurement tier, and fresh entries past the
    /// staleness horizon move to the stale tier. Amortized O(log n)
    /// per transition — each pair moves at most twice per cycle.
    fn normalize(&mut self, now: SimTime) {
        // Expired backoffs first: a released pair may be stale already.
        while let Some(&(until, i, j)) = self.backoff.iter().next() {
            if until > now {
                break;
            }
            self.backoff.remove(&(until, i, j));
            let measured = match self.state[&(i, j)] {
                PairState::Backoff { measured, .. } => measured,
                _ => unreachable!("backoff set out of sync"),
            };
            let state = match measured {
                None => PairState::Unmeasured,
                Some(t) if now.since(t) >= self.staleness => PairState::Stale(t),
                Some(t) => PairState::Fresh(t),
            };
            self.attach((i, j), state);
        }
        // Fresh → stale over the ordered prefix.
        while let Some(&(t, i, j)) = self.fresh.iter().next() {
            if now.since(t) < self.staleness {
                break;
            }
            self.fresh.remove(&(t, i, j));
            self.attach((i, j), PairState::Stale(t));
        }
    }

    /// The pairs the scanner should measure next, most urgent first —
    /// the incremental equivalent of the old O(n²) `plan_round` sweep.
    pub fn plan(&mut self, now: SimTime, limit: usize) -> Vec<(NodeId, NodeId)> {
        self.normalize(now);
        self.unmeasured
            .iter()
            .map(|&(i, j)| (i, j))
            .chain(self.stale.iter().map(|&(_, i, j)| (i, j)))
            .take(limit)
            .map(|(i, j)| (self.nodes[i as usize], self.nodes[j as usize]))
            .collect()
    }

    /// The true backlog: every pair eligible for measurement at `now`,
    /// with no round-size cap.
    pub fn backlog(&mut self, now: SimTime) -> usize {
        self.normalize(now);
        self.unmeasured.len() + self.stale.len()
    }

    /// Total pairs tracked.
    pub fn total_pairs(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn queue(n: u32) -> WorkQueue {
        WorkQueue::new((0..n).map(NodeId).collect(), SimDuration::from_secs(100))
    }

    #[test]
    fn starts_with_all_pairs_unmeasured_in_index_order() {
        let mut q = queue(3);
        assert_eq!(q.total_pairs(), 3);
        assert_eq!(
            q.plan(t(0), 10),
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
            ]
        );
        assert_eq!(q.backlog(t(0)), 3);
    }

    #[test]
    fn measured_pairs_leave_until_stale() {
        let mut q = queue(3);
        q.on_measured(NodeId(0), NodeId(1), t(0));
        q.on_measured(NodeId(0), NodeId(2), t(10));
        assert_eq!(q.plan(t(10), 10), vec![(NodeId(1), NodeId(2))]);
        // At t=100 the first measurement crosses the 100 s horizon.
        assert_eq!(
            q.plan(t(100), 10),
            vec![(NodeId(1), NodeId(2)), (NodeId(0), NodeId(1))]
        );
        // At t=110 both are stale, oldest first, after the unmeasured.
        assert_eq!(
            q.plan(t(110), 10),
            vec![
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
            ]
        );
    }

    #[test]
    fn failed_pairs_withheld_until_backoff_expires() {
        let mut q = queue(2);
        q.on_failed(NodeId(0), NodeId(1), t(50));
        assert!(q.plan(t(0), 10).is_empty());
        assert_eq!(q.backlog(t(49)), 0);
        // Eligible again exactly at the deadline, still unmeasured.
        assert_eq!(q.plan(t(50), 10), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn failed_measured_pair_reenters_by_its_history() {
        let mut q = queue(2);
        q.on_measured(NodeId(0), NodeId(1), t(0));
        q.on_failed(NodeId(0), NodeId(1), t(20));
        // Backoff expired but the old estimate is still fresh.
        assert!(q.plan(t(20), 10).is_empty());
        // Once the old estimate crosses the horizon it queues as stale.
        assert_eq!(q.plan(t(100), 10), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn symmetric_keys() {
        let mut q = queue(2);
        q.on_measured(NodeId(1), NodeId(0), t(0));
        assert!(q.plan(t(0), 10).is_empty());
    }

    #[test]
    fn quarantine_parks_and_release_restores() {
        let mut q = queue(4); // 6 pairs
        q.quarantine(NodeId(0));
        assert!(q.is_quarantined(NodeId(0)));
        assert_eq!(q.parked_pairs(), 3);
        // Planning skips every pair touching node 0.
        assert_eq!(
            q.plan(t(0), 10),
            vec![
                (NodeId(1), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(2), NodeId(3)),
            ]
        );
        assert_eq!(q.backlog(t(0)), 3);
        q.release(NodeId(0));
        assert_eq!(q.parked_pairs(), 0);
        assert_eq!(q.backlog(t(0)), 6);
        assert_eq!(q.plan(t(0), 10)[0], (NodeId(0), NodeId(1)));
    }

    #[test]
    fn parked_outcomes_keep_state_without_scheduling() {
        let mut q = queue(3);
        q.quarantine(NodeId(0));
        // A probation measurement of a parked pair succeeds …
        q.on_measured(NodeId(0), NodeId(1), t(5));
        // … but the pair stays out of the plan until release.
        assert_eq!(q.plan(t(5), 10), vec![(NodeId(1), NodeId(2))]);
        q.release(NodeId(0));
        // After release the fresh measurement is honored: only the
        // never-measured pairs queue up.
        assert_eq!(
            q.plan(t(5), 10),
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn retired_pairs_never_schedule_again() {
        let mut q = queue(3);
        q.retire(NodeId(0), NodeId(2));
        q.retire(NodeId(2), NodeId(0)); // symmetric + repeated: no-op
        assert_eq!(q.retired_pairs(), 1);
        assert_eq!(
            q.plan(t(0), 10),
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]
        );
        assert_eq!(q.backlog(t(0)), 2);
        // Outcomes keep state current without re-entering a tier.
        q.on_measured(NodeId(0), NodeId(2), t(1));
        q.on_failed(NodeId(0), NodeId(2), t(2));
        assert_eq!(q.backlog(t(500)), 2);
        // Quarantine + release of an endpoint must not resurrect it.
        q.quarantine(NodeId(0));
        q.release(NodeId(0));
        assert_eq!(q.backlog(t(500)), 2);
        assert_eq!(
            q.plan(t(500), 10),
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn retiring_a_parked_pair_unparks_it_for_good() {
        let mut q = queue(3);
        q.quarantine(NodeId(0));
        assert_eq!(q.parked_pairs(), 2);
        q.retire(NodeId(0), NodeId(1));
        assert_eq!(q.parked_pairs(), 1);
        q.release(NodeId(0));
        // (0,1) is retired, (0,2) returns.
        assert_eq!(
            q.plan(t(0), 10),
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn probe_pair_skips_doubly_quarantined() {
        let mut q = queue(3);
        q.quarantine(NodeId(0));
        q.quarantine(NodeId(1));
        // (0,1) joins two quarantined relays; the probe for node 0 must
        // pick (0,2) instead.
        assert_eq!(q.probe_pair(NodeId(0)), Some((NodeId(0), NodeId(2))));
        assert_eq!(q.probe_pair(NodeId(1)), Some((NodeId(1), NodeId(2))));
        // Releasing node 1 keeps (0,1) parked — node 0 is still out.
        q.release(NodeId(1));
        assert_eq!(q.plan(t(0), 10), vec![(NodeId(1), NodeId(2))]);
        q.release(NodeId(0));
        assert_eq!(q.backlog(t(0)), 3);
    }
}
