//! Driving Ting measurements over a simulated Tor network.
//!
//! [`Ting::measure_pair`] is the top-level operation: build `C_xy`,
//! `C_x`, `C_y`, attach an echo stream to each, sample RTTs under the
//! configured [`SamplePolicy`], tear everything down, and return the
//! [`TingMeasurement`]. Circuits are measured sequentially, exactly as
//! the published tool does.

use crate::estimator::{CircuitSamples, TingMeasurement};
use crate::sampling::SamplePolicy;
use netsim::NodeId;
use tor_sim::TorNetwork;

/// Ting configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TingConfig {
    /// Sampling policy per circuit.
    pub policy: SamplePolicy,
    /// Echo payload size in bytes (one cell each way regardless; the
    /// paper's probes are tiny).
    pub payload_len: usize,
    /// Pause between consecutive probes on a circuit, ms (gives relay
    /// queues a chance to drain, as a polite real deployment would).
    pub probe_spacing_ms: f64,
}

impl Default for TingConfig {
    fn default() -> Self {
        TingConfig {
            policy: SamplePolicy::paper_accurate(),
            payload_len: 8,
            probe_spacing_ms: 5.0,
        }
    }
}

impl TingConfig {
    /// The §4.4 fast preset (~5% error, seconds per pair).
    pub fn fast() -> TingConfig {
        TingConfig {
            policy: SamplePolicy::paper_fast(),
            ..Default::default()
        }
    }

    /// Fixed-count sampling.
    pub fn with_samples(n: usize) -> TingConfig {
        TingConfig {
            policy: SamplePolicy::FixedCount(n),
            ..Default::default()
        }
    }
}

/// Why a measurement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TingError {
    /// A circuit could not be built through the given relays.
    CircuitBuildFailed { path: Vec<NodeId> },
    /// The echo stream never connected.
    StreamFailed,
    /// A probe got no echo back (circuit died mid-measurement).
    ProbeLost,
}

/// The Ting measurement driver.
#[derive(Debug, Clone, Default)]
pub struct Ting {
    pub config: TingConfig,
}

impl Ting {
    pub fn new(config: TingConfig) -> Ting {
        Ting { config }
    }

    /// Measures `R(x, y)` per §3.3: the three circuits, minima, Eq. (4).
    pub fn measure_pair(
        &self,
        net: &mut TorNetwork,
        x: NodeId,
        y: NodeId,
    ) -> Result<TingMeasurement, TingError> {
        let started = net.sim.now();
        let (w, z) = (net.local_w, net.local_z);
        let full = self.sample_circuit(net, vec![w, x, y, z])?;
        let x_leg = self.sample_circuit(net, vec![w, x])?;
        let y_leg = self.sample_circuit(net, vec![w, y])?;
        let elapsed_s = (net.sim.now() - started).as_secs_f64();
        Ok(TingMeasurement {
            full,
            x_leg,
            y_leg,
            elapsed_s,
        })
    }

    /// Builds one circuit, attaches an echo stream, samples RTTs under
    /// the policy, and tears the circuit down.
    pub fn sample_circuit(
        &self,
        net: &mut TorNetwork,
        path: Vec<NodeId>,
    ) -> Result<CircuitSamples, TingError> {
        let circuit = net
            .controller
            .build_and_wait(&mut net.sim, path.clone())
            .ok_or(TingError::CircuitBuildFailed { path })?;
        let echo = net.echo_server;
        let stream = net
            .controller
            .open_stream_and_wait(&mut net.sim, circuit, echo)
            .ok_or(TingError::StreamFailed)?;

        let mut samples: Vec<f64> = Vec::new();
        while self.config.policy.wants_more(&samples) {
            if self.config.probe_spacing_ms > 0.0 && !samples.is_empty() {
                let t = net.sim.now()
                    + netsim::SimDuration::from_millis_f64(self.config.probe_spacing_ms);
                net.sim.advance_to(t);
            }
            let rtt = net
                .controller
                .echo_roundtrip_ms(&mut net.sim, stream, vec![0xA5; self.config.payload_len])
                .ok_or(TingError::ProbeLost)?;
            samples.push(rtt);
        }

        net.controller.close_stream(&mut net.sim, stream);
        net.controller.close_circuit(&mut net.sim, circuit);
        net.sim.run_until_idle();
        Ok(CircuitSamples::new(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::TorNetworkBuilder;

    fn quick_ting() -> Ting {
        Ting::new(TingConfig::with_samples(30))
    }

    #[test]
    fn estimate_close_to_ground_truth() {
        let mut net = TorNetworkBuilder::testbed(11).build();
        let (x, y) = (net.relays[2], net.relays[25]);
        let truth = net.true_rtt_ms(x, y);
        let m = quick_ting().measure_pair(&mut net, x, y).expect("measured");
        let est = m.estimate_ms();
        // Estimate = truth + F_x + F_y (0–3 ms floors) + residual noise.
        let err = (est - truth).abs();
        assert!(
            err < truth * 0.25 + 8.0,
            "estimate {est} vs truth {truth} (err {err})"
        );
        assert!(est > 0.0);
    }

    #[test]
    fn estimates_preserve_rank_order() {
        // Even a quick measurement should rank a nearby pair below a
        // far-apart pair (the Spearman-ρ headline depends on this).
        let mut net = TorNetworkBuilder::testbed(12).build();
        let pairs = [
            (net.relays[0], net.relays[1]),
            (net.relays[3], net.relays[9]),
            (net.relays[14], net.relays[30]),
        ];
        let ting = quick_ting();
        let mut truth: Vec<f64> = Vec::new();
        let mut est: Vec<f64> = Vec::new();
        for &(x, y) in &pairs {
            truth.push(net.true_rtt_ms(x, y));
            est.push(ting.measure_pair(&mut net, x, y).unwrap().estimate_ms());
        }
        let rho = stats::spearman(&truth, &est).unwrap();
        assert!(rho > 0.9, "rank correlation {rho}");
    }

    #[test]
    fn measurement_reports_elapsed_time() {
        let mut net = TorNetworkBuilder::testbed(13).build();
        let (x, y) = (net.relays[4], net.relays[5]);
        let m = quick_ting().measure_pair(&mut net, x, y).unwrap();
        assert!(m.elapsed_s > 0.0);
        assert_eq!(m.total_samples(), 90);
    }

    #[test]
    fn early_stop_uses_fewer_samples() {
        let mut net = TorNetworkBuilder::testbed(14).build();
        let (x, y) = (net.relays[7], net.relays[8]);
        let accurate = Ting::new(TingConfig::with_samples(100))
            .measure_pair(&mut net, x, y)
            .unwrap();
        let fast = Ting::new(TingConfig::fast())
            .measure_pair(&mut net, x, y)
            .unwrap();
        assert!(fast.total_samples() < accurate.total_samples() / 2);
        // And still lands near the accurate estimate (§4.4: ~5% error).
        let rel =
            (fast.estimate_ms() - accurate.estimate_ms()).abs() / accurate.estimate_ms().max(1.0);
        assert!(rel < 0.25, "fast estimate off by {rel}");
    }

    #[test]
    fn unbuildable_circuit_is_an_error() {
        let mut net = TorNetworkBuilder::testbed(15).build();
        let bogus = netsim::NodeId(9999);
        let first = net.relays[0];
        let err = quick_ting().measure_pair(&mut net, bogus, first);
        assert!(matches!(err, Err(TingError::CircuitBuildFailed { .. })));
    }
}
