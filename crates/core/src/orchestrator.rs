//! Driving Ting measurements over a simulated Tor network.
//!
//! [`Ting::measure_pair`] is the top-level operation: build `C_xy`,
//! `C_x`, `C_y`, attach an echo stream to each, sample RTTs under the
//! configured [`SamplePolicy`], tear everything down, and return the
//! [`TingMeasurement`]. Circuits are measured sequentially, exactly as
//! the published tool does.

use crate::estimator::{CircuitSamples, TingMeasurement};
use crate::sampling::SamplePolicy;
use crate::timeout::{AdaptiveTimeoutConfig, TimeoutEstimators, TimeoutPhase};
use netsim::{NodeId, SimDuration, SimTime};
use obs::{Counter, Hist, Obs, Value};
use tor_sim::{CircuitStatus, MeasurementMetrics, TorNetwork};

/// Ting configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TingConfig {
    /// Sampling policy per circuit.
    pub policy: SamplePolicy,
    /// Echo payload size in bytes (one cell each way regardless; the
    /// paper's probes are tiny).
    pub payload_len: usize,
    /// Pause between consecutive probes on a circuit, ms (gives relay
    /// queues a chance to drain, as a polite real deployment would).
    pub probe_spacing_ms: f64,
    /// Give up on a circuit build after this long (virtual ms). `None`
    /// waits forever — only sensible in a fault-free simulation.
    pub circuit_build_timeout_ms: Option<f64>,
    /// Give up on the echo stream attach after this long (ms).
    pub stream_timeout_ms: Option<f64>,
    /// Give up on an individual probe after this long (ms); the probe
    /// is discarded, never entering the sample set.
    pub probe_timeout_ms: Option<f64>,
    /// Probes allowed to time out within one circuit measurement before
    /// the attempt is abandoned as [`TingError::ProbeLost`].
    pub max_lost_probes: u32,
    /// Attempts per circuit (build + sample), including the first.
    /// Failed attempts rebuild the circuit through the same relays
    /// after a backoff.
    pub max_attempts: u32,
    /// Base retry backoff (ms); attempt `k` waits `base · 2^(k-1)`,
    /// scaled by a deterministic jitter in `[0.5, 1.5)`.
    pub retry_backoff_ms: f64,
    /// Ceiling on a single backoff pause (ms).
    pub retry_backoff_cap_ms: f64,
    /// CBT-style adaptive per-phase deadlines (see [`crate::timeout`]).
    /// `None` keeps the fixed deadlines above — and keeps the pipeline
    /// bit-identical to the pre-adaptive behaviour.
    pub adaptive_timeouts: Option<AdaptiveTimeoutConfig>,
}

impl Default for TingConfig {
    fn default() -> Self {
        TingConfig {
            policy: SamplePolicy::paper_accurate(),
            payload_len: 8,
            probe_spacing_ms: 5.0,
            // Generous enough that a fault-free run never hits them
            // (keeping estimates bit-identical to an untimed run), tight
            // enough that a dead relay costs seconds, not a hung scan.
            circuit_build_timeout_ms: Some(30_000.0),
            stream_timeout_ms: Some(15_000.0),
            probe_timeout_ms: Some(5_000.0),
            max_lost_probes: 16,
            max_attempts: 3,
            retry_backoff_ms: 500.0,
            retry_backoff_cap_ms: 8_000.0,
            adaptive_timeouts: None,
        }
    }
}

impl TingConfig {
    /// The §4.4 fast preset (~5% error, seconds per pair).
    pub fn fast() -> TingConfig {
        TingConfig {
            policy: SamplePolicy::paper_fast(),
            ..Default::default()
        }
    }

    /// Fixed-count sampling.
    pub fn with_samples(n: usize) -> TingConfig {
        TingConfig {
            policy: SamplePolicy::FixedCount(n),
            ..Default::default()
        }
    }
}

/// Why a measurement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TingError {
    /// A circuit could not be built through the given relays.
    /// `permanent` marks client-side policy rejections (one-hop path,
    /// repeated relay, unknown identity) that no retry can fix.
    CircuitBuildFailed { path: Vec<NodeId>, permanent: bool },
    /// The echo stream never connected.
    StreamFailed,
    /// Too many probes got no echo back (circuit died or the path is
    /// shedding cells).
    ProbeLost,
}

impl TingError {
    /// Whether retrying the same operation can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            TingError::CircuitBuildFailed {
                permanent: true,
                ..
            }
        )
    }

    /// A stable machine-readable code naming the variant — the suffix
    /// of the `ting.error.<code>` observability counter each failure
    /// increments.
    pub fn code(&self) -> &'static str {
        match self {
            TingError::CircuitBuildFailed { .. } => "circuit_build_failed",
            TingError::StreamFailed => "stream_failed",
            TingError::ProbeLost => "probe_lost",
        }
    }
}

impl std::fmt::Display for TingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TingError::CircuitBuildFailed { path, permanent } => {
                write!(f, "circuit build failed through [")?;
                for (i, n) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", n.0)?;
                }
                write!(
                    f,
                    "] ({})",
                    if *permanent {
                        "policy rejection"
                    } else {
                        "timeout or relay failure"
                    }
                )
            }
            TingError::StreamFailed => write!(f, "echo stream never connected"),
            TingError::ProbeLost => write!(f, "too many probes lost without an echo"),
        }
    }
}

impl std::error::Error for TingError {}

/// Pre-resolved observability handles for the measurement hot path:
/// per-phase latency histograms and failure counters. Each is a null
/// check when observability is off.
#[derive(Debug, Clone, Default)]
struct TingObsHandles {
    build_hist: Hist,
    stream_hist: Hist,
    probe_hist: Hist,
    err_circuit: Counter,
    err_stream: Counter,
    err_probe: Counter,
    retries: Counter,
    probe_timeouts: Counter,
}

impl TingObsHandles {
    fn new(obs: &Obs) -> TingObsHandles {
        TingObsHandles {
            build_hist: obs.hist_handle("ting.phase.build_us"),
            stream_hist: obs.hist_handle("ting.phase.stream_us"),
            probe_hist: obs.hist_handle("ting.phase.probe_us"),
            err_circuit: obs.counter_handle("ting.error.circuit_build_failed"),
            err_stream: obs.counter_handle("ting.error.stream_failed"),
            err_probe: obs.counter_handle("ting.error.probe_lost"),
            retries: obs.counter_handle("ting.retry"),
            probe_timeouts: obs.counter_handle("ting.probe.timeout"),
        }
    }
}

/// The Ting measurement driver.
#[derive(Debug, Clone, Default)]
pub struct Ting {
    pub config: TingConfig,
    /// Failure/retry counters and the retry trace, shared with callers
    /// that keep a clone.
    pub metrics: MeasurementMetrics,
    /// Rolling per-phase duration estimators feeding the adaptive
    /// deadlines (inert unless `config.adaptive_timeouts` is set).
    pub timeouts: TimeoutEstimators,
    /// Observability: per-phase histograms, failure counters, and (at
    /// trace level) typed events. Off by default.
    obs: Obs,
    handles: TingObsHandles,
}

impl Ting {
    pub fn new(config: TingConfig) -> Ting {
        Ting::with_obs(config, Obs::off())
    }

    /// A driver recording into `obs`. The scanner reaches the same
    /// handle through [`Ting::obs`], so attaching it here instruments
    /// the whole measurement path.
    pub fn with_obs(config: TingConfig, obs: Obs) -> Ting {
        Ting {
            config,
            metrics: MeasurementMetrics::new(),
            timeouts: TimeoutEstimators::new(),
            handles: TingObsHandles::new(&obs),
            obs,
        }
    }

    /// Replaces the observability handle (e.g. after loading a driver
    /// from persisted state).
    pub fn set_obs(&mut self, obs: Obs) {
        self.handles = TingObsHandles::new(&obs);
        self.obs = obs;
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The effective deadline for `phase` in ms: the learned estimate
    /// once adaptive timeouts are enabled and warmed up, otherwise the
    /// fixed config value (`None` = wait forever).
    pub(crate) fn phase_timeout_ms(&self, phase: TimeoutPhase) -> Option<f64> {
        let fixed = match phase {
            TimeoutPhase::Build => self.config.circuit_build_timeout_ms,
            TimeoutPhase::Stream => self.config.stream_timeout_ms,
            TimeoutPhase::Probe => self.config.probe_timeout_ms,
        };
        match (&self.config.adaptive_timeouts, fixed) {
            (Some(cfg), Some(fallback)) => Some(self.timeouts.timeout_ms(phase, cfg, fallback)),
            (_, fixed) => fixed,
        }
    }

    /// Records a completed phase at virtual instant `at`: the duration
    /// enters the per-phase latency histogram (and, at trace level, a
    /// `ting.phase` event tagged with the enclosing circuit's span id),
    /// and feeds the adaptive-deadline estimators when those are
    /// enabled.
    pub(crate) fn observe_phase_ms(
        &self,
        phase: TimeoutPhase,
        ms: f64,
        at: SimTime,
        circuit: obs::SpanId,
    ) {
        let hist = match phase {
            TimeoutPhase::Build => &self.handles.build_hist,
            TimeoutPhase::Stream => &self.handles.stream_hist,
            TimeoutPhase::Probe => &self.handles.probe_hist,
        };
        hist.record_ms(ms);
        if self.obs.is_tracing() {
            self.obs.event(
                obs::names::TING_PHASE,
                at.as_nanos(),
                vec![
                    ("phase", Value::Str(Self::phase_name(phase).to_owned())),
                    ("dur_us", Value::U64(obs::ms_to_us(ms))),
                    ("circuit", Value::U64(circuit.0)),
                ],
            );
        }
        if let Some(cfg) = &self.config.adaptive_timeouts {
            self.timeouts.observe(phase, ms, cfg);
        }
    }

    fn phase_name(phase: TimeoutPhase) -> &'static str {
        match phase {
            TimeoutPhase::Build => "build",
            TimeoutPhase::Stream => "stream",
            TimeoutPhase::Probe => "probe",
        }
    }

    /// Bumps the `ting.error.<code>` counter and, at trace level,
    /// records a `ting.error` event naming the failed circuit's span.
    /// Called at every failure creation site (sequential and
    /// interleaved), so retried failures count each time they occur.
    pub(crate) fn observe_error(&self, err: &TingError, at: SimTime, circuit: obs::SpanId) {
        match err {
            TingError::CircuitBuildFailed { .. } => self.handles.err_circuit.inc(),
            TingError::StreamFailed => self.handles.err_stream.inc(),
            TingError::ProbeLost => self.handles.err_probe.inc(),
        }
        if self.obs.is_tracing() {
            self.obs.event(
                obs::names::TING_ERROR,
                at.as_nanos(),
                vec![
                    ("code", Value::Str(err.code().to_owned())),
                    ("circuit", Value::U64(circuit.0)),
                ],
            );
        }
    }

    /// Bumps the retry counter and, at trace level, records a
    /// `ting.retry` event.
    pub(crate) fn observe_retry(&self, attempt: u32, at: SimTime) {
        self.handles.retries.inc();
        if self.obs.is_tracing() {
            self.obs.event(
                obs::names::TING_RETRY,
                at.as_nanos(),
                vec![("attempt", Value::U64(u64::from(attempt)))],
            );
        }
    }

    /// Opens a `ting.circuit` span: one build-attach-sample attempt
    /// through `path`. `kind` names the circuit's role in the Eq. (4)
    /// estimator (`full` = C_xy, `x` = C_x, `y` = C_y; `leg` when a
    /// bare two-hop circuit is sampled outside [`Ting::measure_pair`]
    /// and the target leg is unknown). The span id tags every
    /// `ting.phase`/`ting.error` event recorded inside the attempt, so
    /// an analyzer can attribute each probe to its circuit.
    pub(crate) fn observe_circuit_begin(
        &self,
        path: &[NodeId],
        kind: &'static str,
        attempt: u32,
        vantage: usize,
        at: SimTime,
    ) -> obs::SpanId {
        if !self.obs.is_tracing() {
            return obs::SpanId(0);
        }
        let mut rendered = String::new();
        for (i, n) in path.iter().enumerate() {
            if i > 0 {
                rendered.push('-');
            }
            rendered.push_str(&n.0.to_string());
        }
        self.obs.span_begin(
            obs::names::TING_CIRCUIT_BEGIN,
            at.as_nanos(),
            vec![
                ("kind", Value::Str(kind.to_owned())),
                ("path", Value::Str(rendered)),
                ("attempt", Value::U64(u64::from(attempt))),
                ("vantage", Value::U64(vantage as u64)),
            ],
        )
    }

    /// Closes a `ting.circuit` span. `outcome` is `"ok"` or the
    /// [`TingError::code`] that ended the attempt; every exit from a
    /// circuit attempt — success, build failure, stream failure, probe
    /// loss — must pass through here exactly once (the trace linter
    /// rejects traces with unmatched begins).
    pub(crate) fn observe_circuit_end(&self, span: obs::SpanId, outcome: &str, at: SimTime) {
        if !self.obs.is_tracing() {
            return;
        }
        self.obs.span_end(
            obs::names::TING_CIRCUIT_END,
            span,
            at.as_nanos(),
            vec![("outcome", Value::Str(outcome.to_owned()))],
        );
    }

    /// Bumps the probe-timeout counter (kept next to
    /// `MeasurementMetrics::on_probe_timed_out` at both call sites).
    pub(crate) fn observe_probe_timeout(&self) {
        self.handles.probe_timeouts.inc();
    }

    /// Measures `R(x, y)` per §3.3: the three circuits, minima, Eq. (4).
    /// Each circuit is retried under backoff through the same relays
    /// before the pair is abandoned.
    pub fn measure_pair(
        &self,
        net: &mut TorNetwork,
        x: NodeId,
        y: NodeId,
    ) -> Result<TingMeasurement, TingError> {
        let started = net.sim.now();
        let (w, z) = (net.local_w, net.local_z);
        let full = self.sample_circuit_resilient_traced(net, vec![w, x, y, z], "full")?;
        let x_leg = self.sample_circuit_resilient_traced(net, vec![w, x], "x")?;
        let y_leg = self.sample_circuit_resilient_traced(net, vec![w, y], "y")?;
        let elapsed_s = (net.sim.now() - started).as_secs_f64();
        Ok(TingMeasurement {
            full,
            x_leg,
            y_leg,
            elapsed_s,
        })
    }

    /// An absolute deadline `timeout_ms` from now, if configured.
    fn deadline(net: &TorNetwork, timeout_ms: Option<f64>) -> Option<SimTime> {
        timeout_ms.map(|ms| net.sim.now() + SimDuration::from_millis_f64(ms))
    }

    /// The backoff pause before retry `attempt` (1-based) of a circuit:
    /// exponential in the attempt, jittered by a keyed hash of the path
    /// so concurrent deployments desynchronize — but never drawn from
    /// the simulation RNG, keeping retries replayable.
    pub(crate) fn backoff_ms(&self, path: &[NodeId], attempt: u32) -> f64 {
        crate::backoff::jittered_ms(
            self.config.retry_backoff_ms,
            self.config.retry_backoff_cap_ms,
            path,
            attempt,
        )
    }

    /// [`Ting::sample_circuit`] under the retry policy: rebuilds the
    /// circuit through the same relays after transient failures, with
    /// exponential backoff, and returns the last error once attempts
    /// are exhausted. Permanent (policy) failures return immediately.
    pub fn sample_circuit_resilient(
        &self,
        net: &mut TorNetwork,
        path: Vec<NodeId>,
    ) -> Result<CircuitSamples, TingError> {
        let kind = circuit_kind_of(&path);
        self.sample_circuit_resilient_traced(net, path, kind)
    }

    /// [`Ting::sample_circuit_resilient`] with the circuit's estimator
    /// role (`full`/`x`/`y`) known, so every attempt's trace span says
    /// which Eq. (4) term it sampled.
    pub(crate) fn sample_circuit_resilient_traced(
        &self,
        net: &mut TorNetwork,
        path: Vec<NodeId>,
        kind: &'static str,
    ) -> Result<CircuitSamples, TingError> {
        let attempts = self.config.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                let pause_ms = self.backoff_ms(&path, attempt - 1);
                self.metrics.on_retry();
                self.observe_retry(attempt, net.sim.now());
                self.metrics.trace(format!(
                    "retry attempt={attempt} path={:?} backoff_ms={pause_ms:.1}",
                    path.iter().map(|n| n.0).collect::<Vec<_>>()
                ));
                let t = net.sim.now() + SimDuration::from_millis_f64(pause_ms);
                net.sim.advance_to(t);
            }
            match self.sample_circuit_traced(net, path.clone(), kind, attempt) {
                Ok(samples) => return Ok(samples),
                Err(e) => {
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Builds one circuit, attaches an echo stream, samples RTTs under
    /// the policy, and tears the circuit down. Each phase runs under its
    /// configured timeout; probes that miss their deadline are dropped
    /// from the sample set (a late echo can only inflate a minimum-based
    /// estimator if it is mistaken for a fresh reply, so probes are
    /// content-tagged and matched).
    pub fn sample_circuit(
        &self,
        net: &mut TorNetwork,
        path: Vec<NodeId>,
    ) -> Result<CircuitSamples, TingError> {
        let kind = circuit_kind_of(&path);
        self.sample_circuit_traced(net, path, kind, 1)
    }

    /// [`Ting::sample_circuit`] with its trace identity (estimator role
    /// and 1-based attempt number) known. The attempt is wrapped in a
    /// `ting.circuit` span closed on *every* exit path — success and
    /// each early error return alike.
    pub(crate) fn sample_circuit_traced(
        &self,
        net: &mut TorNetwork,
        path: Vec<NodeId>,
        kind: &'static str,
        attempt: u32,
    ) -> Result<CircuitSamples, TingError> {
        let span = self.observe_circuit_begin(&path, kind, attempt, 0, net.sim.now());
        let build_started = net.sim.now();
        let build_deadline = Self::deadline(net, self.phase_timeout_ms(TimeoutPhase::Build));
        let circuit = net.controller.build_circuit(&mut net.sim, path.clone());
        match build_deadline {
            Some(d) => net.sim.run_until_idle_or(d),
            None => net.sim.run_until_idle(),
        };
        if net.controller.circuit_status(circuit) != CircuitStatus::Ready {
            // A local policy rejection (one-hop path, repeated or
            // unknown relay) can never succeed on retry; anything else
            // — timeout, refused extend, crashed relay — can.
            let permanent = net.controller.circuit_error(circuit).is_some();
            self.metrics.on_circuit_failed();
            self.metrics.trace(format!(
                "circuit_failed path={:?} permanent={permanent}",
                path.iter().map(|n| n.0).collect::<Vec<_>>()
            ));
            net.controller.close_circuit(&mut net.sim, circuit);
            let err = TingError::CircuitBuildFailed { path, permanent };
            self.observe_error(&err, net.sim.now(), span);
            self.observe_circuit_end(span, err.code(), net.sim.now());
            return Err(err);
        }
        self.observe_phase_ms(
            TimeoutPhase::Build,
            net.sim.now().since(build_started).as_millis_f64(),
            net.sim.now(),
            span,
        );
        let echo = net.echo_server;
        let open_started = net.sim.now();
        let stream_deadline = Self::deadline(net, self.phase_timeout_ms(TimeoutPhase::Stream));
        let Some(stream) =
            net.controller
                .open_stream_and_wait_until(&mut net.sim, circuit, echo, stream_deadline)
        else {
            self.metrics
                .trace(format!("stream_failed circuit={}", circuit.0));
            net.controller.close_circuit(&mut net.sim, circuit);
            self.observe_error(&TingError::StreamFailed, net.sim.now(), span);
            self.observe_circuit_end(span, TingError::StreamFailed.code(), net.sim.now());
            return Err(TingError::StreamFailed);
        };
        self.observe_phase_ms(
            TimeoutPhase::Stream,
            net.sim.now().since(open_started).as_millis_f64(),
            net.sim.now(),
            span,
        );

        let mut samples: Vec<f64> = Vec::new();
        let mut lost: u32 = 0;
        let mut probe_idx: u64 = 0;
        while self.config.policy.wants_more(&samples) {
            if self.config.probe_spacing_ms > 0.0 && probe_idx > 0 {
                let t = net.sim.now() + SimDuration::from_millis_f64(self.config.probe_spacing_ms);
                net.sim.advance_to(t);
            }
            let payload = self.probe_payload(probe_idx);
            probe_idx += 1;
            let probe_deadline = Self::deadline(net, self.phase_timeout_ms(TimeoutPhase::Probe));
            match net.controller.echo_roundtrip_ms_until(
                &mut net.sim,
                stream,
                payload,
                probe_deadline,
            ) {
                Some(rtt) => {
                    self.observe_phase_ms(TimeoutPhase::Probe, rtt, net.sim.now(), span);
                    samples.push(rtt);
                }
                None => {
                    lost += 1;
                    self.metrics.on_probe_timed_out();
                    self.observe_probe_timeout();
                    if lost > self.config.max_lost_probes {
                        self.metrics
                            .trace(format!("probes_lost circuit={} lost={lost}", circuit.0));
                        net.controller.close_stream(&mut net.sim, stream);
                        net.controller.close_circuit(&mut net.sim, circuit);
                        self.observe_error(&TingError::ProbeLost, net.sim.now(), span);
                        self.observe_circuit_end(span, TingError::ProbeLost.code(), net.sim.now());
                        return Err(TingError::ProbeLost);
                    }
                }
            }
        }

        net.controller.close_stream(&mut net.sim, stream);
        net.controller.close_circuit(&mut net.sim, circuit);
        net.sim.run_until_idle();
        self.observe_circuit_end(span, "ok", net.sim.now());
        Ok(CircuitSamples::new(samples))
    }

    /// Opens a `scan.pair` span for a measurement of `(a, b)` from
    /// `vantage`. Used by both scan drivers so sequential and parallel
    /// traces carry identically-shaped pair spans.
    pub(crate) fn observe_pair_begin(
        &self,
        a: NodeId,
        b: NodeId,
        vantage: usize,
        at: SimTime,
    ) -> obs::SpanId {
        if !self.obs.is_tracing() {
            return obs::SpanId(0);
        }
        self.obs.span_begin(
            obs::names::SCAN_PAIR_BEGIN,
            at.as_nanos(),
            vec![
                ("a", Value::U64(u64::from(a.0))),
                ("b", Value::U64(u64::from(b.0))),
                ("vantage", Value::U64(vantage as u64)),
            ],
        )
    }

    /// Closes a `scan.pair` span with an outcome string (`accepted`,
    /// `rejected`, an error code, or `ok` for raw engine runs with no
    /// validating scanner above them).
    pub(crate) fn observe_pair_end(&self, span: obs::SpanId, outcome: &str, at: SimTime) {
        if !self.obs.is_tracing() {
            return;
        }
        self.obs.span_end(
            obs::names::SCAN_PAIR_END,
            span,
            at.as_nanos(),
            vec![("outcome", Value::Str(outcome.to_owned()))],
        );
    }

    /// The probe payload: `payload_len` bytes carrying the probe index
    /// (little-endian, truncated) so echoes are matchable to their
    /// probe. Same length for every probe — identical timing.
    pub(crate) fn probe_payload(&self, probe_idx: u64) -> Vec<u8> {
        let mut payload = vec![0xA5u8; self.config.payload_len];
        for (slot, byte) in payload.iter_mut().zip(probe_idx.to_le_bytes()) {
            *slot = byte;
        }
        payload
    }
}

/// The estimator role of a circuit judging only by its path shape:
/// four hops is the full `C_xy` circuit; a two-hop leg sampled outside
/// [`Ting::measure_pair`] cannot be told apart as `C_x` vs `C_y`.
pub(crate) fn circuit_kind_of(path: &[NodeId]) -> &'static str {
    if path.len() == 4 {
        "full"
    } else {
        "leg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::TorNetworkBuilder;

    fn quick_ting() -> Ting {
        Ting::new(TingConfig::with_samples(30))
    }

    #[test]
    fn estimate_close_to_ground_truth() {
        let mut net = TorNetworkBuilder::testbed(11).build();
        let (x, y) = (net.relays[2], net.relays[25]);
        let truth = net.true_rtt_ms(x, y);
        let m = quick_ting().measure_pair(&mut net, x, y).expect("measured");
        let est = m.estimate_ms();
        // Estimate = truth + F_x + F_y (0–3 ms floors) + residual noise.
        let err = (est - truth).abs();
        assert!(
            err < truth * 0.25 + 8.0,
            "estimate {est} vs truth {truth} (err {err})"
        );
        assert!(est > 0.0);
    }

    #[test]
    fn estimates_preserve_rank_order() {
        // Even a quick measurement should rank a nearby pair below a
        // far-apart pair (the Spearman-ρ headline depends on this).
        let mut net = TorNetworkBuilder::testbed(12).build();
        let pairs = [
            (net.relays[0], net.relays[1]),
            (net.relays[3], net.relays[9]),
            (net.relays[14], net.relays[30]),
        ];
        let ting = quick_ting();
        let mut truth: Vec<f64> = Vec::new();
        let mut est: Vec<f64> = Vec::new();
        for &(x, y) in &pairs {
            truth.push(net.true_rtt_ms(x, y));
            est.push(ting.measure_pair(&mut net, x, y).unwrap().estimate_ms());
        }
        let rho = stats::spearman(&truth, &est).unwrap();
        assert!(rho > 0.9, "rank correlation {rho}");
    }

    #[test]
    fn measurement_reports_elapsed_time() {
        let mut net = TorNetworkBuilder::testbed(13).build();
        let (x, y) = (net.relays[4], net.relays[5]);
        let m = quick_ting().measure_pair(&mut net, x, y).unwrap();
        assert!(m.elapsed_s > 0.0);
        assert_eq!(m.total_samples(), 90);
    }

    #[test]
    fn early_stop_uses_fewer_samples() {
        let mut net = TorNetworkBuilder::testbed(14).build();
        let (x, y) = (net.relays[7], net.relays[8]);
        let accurate = Ting::new(TingConfig::with_samples(100))
            .measure_pair(&mut net, x, y)
            .unwrap();
        let fast = Ting::new(TingConfig::fast())
            .measure_pair(&mut net, x, y)
            .unwrap();
        assert!(fast.total_samples() < accurate.total_samples() / 2);
        // And still lands near the accurate estimate (§4.4: ~5% error).
        let rel =
            (fast.estimate_ms() - accurate.estimate_ms()).abs() / accurate.estimate_ms().max(1.0);
        assert!(rel < 0.25, "fast estimate off by {rel}");
    }

    #[test]
    fn unbuildable_circuit_is_an_error() {
        let mut net = TorNetworkBuilder::testbed(15).build();
        let bogus = netsim::NodeId(9999);
        let first = net.relays[0];
        let err = quick_ting().measure_pair(&mut net, bogus, first);
        assert!(matches!(err, Err(TingError::CircuitBuildFailed { .. })));
    }
}
