//! Sharded scan supervision: crash-isolated shards under a restart
//! budget, with a deterministic merge.
//!
//! A consensus-scale campaign (~6,600 relays, ~22M pairs) cannot afford
//! a monolithic scanner: one poisoned vantage or one corrupt checkpoint
//! stalls or restarts the whole scan. [`partition_pairs`] splits the
//! pair matrix into disjoint shards; each shard runs a full
//! [`Scanner`] restricted to its pairs ([`Scanner::restrict_to`]), so
//! it owns a shard-local work queue, relay-health state, adaptive
//! timeout estimators, and its own CRC-sealed checkpoint. The
//! [`Supervisor`] drives the shards round-robin and supervises them the
//! way an init system supervises processes:
//!
//! * **Heartbeats** — a shard that stops making progress for longer
//!   than [`SupervisorConfig::heartbeat_timeout`] (virtual time) is
//!   declared stuck, killed, and restarted from its last checkpoint.
//! * **Restart budget** — each restart waits a
//!   [`crate::backoff::exponential`] pause; a shard that exhausts
//!   [`SupervisorConfig::restart_budget`] restarts is quarantined and
//!   the scan continues **degraded**: the remaining shards keep making
//!   progress, and the merged matrix reports the dead shard's pairs as
//!   uncovered with staleness metadata instead of blocking.
//! * **Checkpoint fallback** — a shard whose checkpoint is refused on
//!   restart falls back to the supervisor's in-memory copy, then to a
//!   fresh scanner (re-measuring its pairs), rather than wedging.
//!
//! The merge ([`merge_checkpoints`]) is a fixed shard-ordering
//! reduction over shard checkpoints. Shard ownership is disjoint, so
//! the result is invariant to shard completion order, and at shard
//! count 1 the supervised scan is bit-identical to the unsharded
//! [`Scanner`] — both properties are tested in
//! `crates/core/tests/shard_scan.rs`.

use crate::orchestrator::{Ting, TingConfig};
use crate::scanner::{RoundReport, Scanner, ScannerConfig};
use netsim::{NodeId, SimDuration, SimTime};
use obs::{names, Lineage, Obs, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tor_sim::TorNetwork;

/// Assigns every unordered pair of `nodes` to one of `shards` shards,
/// round-robin by the pair's position in `(i, j)` index order. The
/// assignment is deterministic, covers every pair exactly once, and
/// balances shard sizes within one pair; when `shards` exceeds the
/// pair count the surplus shards own nothing (legal — they complete
/// immediately).
///
/// # Panics
/// Panics when `shards` is zero.
pub fn partition_pairs(nodes: &[NodeId], shards: usize) -> Vec<Vec<(NodeId, NodeId)>> {
    assert!(shards > 0, "shard count must be positive");
    let mut owned = vec![Vec::new(); shards];
    let mut p = 0usize;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            owned[p % shards].push((a, b));
            p += 1;
        }
    }
    owned
}

/// Supervision policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Number of shards the pair matrix is partitioned into.
    pub shards: usize,
    /// Per-shard scanner policy (staleness, round budget, health,
    /// validation). `pairs_per_round` applies per shard.
    pub scanner: ScannerConfig,
    /// A shard that has made no progress for this long (virtual time)
    /// is declared stuck and restarted. Progress means a round that
    /// measured or failed at least one pair, or had no eligible work.
    pub heartbeat_timeout: SimDuration,
    /// Restarts allowed per shard before it is quarantined.
    pub restart_budget: u32,
    /// Base pause before restart `k`; escalates as
    /// `min(base · 2^(k−1), cap)` via [`crate::backoff::exponential`].
    pub restart_backoff: SimDuration,
    /// Ceiling on a single restart pause.
    pub restart_backoff_cap: SimDuration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shards: 4,
            scanner: ScannerConfig::default(),
            heartbeat_timeout: SimDuration::from_hours(2),
            restart_budget: 3,
            restart_backoff: SimDuration::from_secs(300),
            restart_backoff_cap: SimDuration::from_hours(1),
        }
    }
}

/// A shard's supervision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Scanning normally.
    Running,
    /// Crashed or stalled; resumes from its checkpoint at `at`.
    Restarting { at: SimTime },
    /// Restart budget exhausted; permanently excluded. Its pairs stay
    /// at whatever coverage its last checkpoint reached.
    Quarantined,
}

impl ShardStatus {
    /// The status tag used in merged-document coverage rows.
    pub fn tag(&self) -> &'static str {
        match self {
            ShardStatus::Running => "live",
            ShardStatus::Restarting { .. } => "restarting",
            ShardStatus::Quarantined => "dead",
        }
    }
}

/// One supervised shard: its live scanner + driver (absent while
/// crashed), last-known-good checkpoint, and supervision bookkeeping.
struct ShardSlot {
    id: u32,
    owned: Vec<(NodeId, NodeId)>,
    scanner: Option<Scanner>,
    ting: Option<Ting>,
    /// Last sealed checkpoint, refreshed after every completed round.
    /// Always parseable: initialized from the empty scanner.
    checkpoint: String,
    /// Adaptive-timeout estimator export taken with the checkpoint.
    timeouts: String,
    status: ShardStatus,
    restarts: u32,
    last_progress: SimTime,
    started: bool,
    /// Chaos hook: the shard is wedged (alive but doing nothing) until
    /// this instant; only the supervisor's heartbeat can free it.
    wedged_until: Option<SimTime>,
    /// Incremental-publish watermark: measurements at or after this
    /// instant have not yet been drained by [`Supervisor::take_delta`].
    /// `None` means nothing was ever drained (everything is new).
    delta_mark: Option<SimTime>,
    /// Whether the slot's last-known-good checkpoint was already
    /// emitted as a delta while the shard is down — a downed shard's
    /// checkpoint is frozen, so one emission per outage suffices.
    down_emitted: bool,
}

/// Aggregate outcome of one supervised round across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorReport {
    pub measured: usize,
    pub failed: usize,
    /// Total eligible backlog across shards that ran this round.
    pub still_pending: usize,
    /// Shards that executed a scan round.
    pub shards_run: usize,
    /// Shards waiting out a restart pause (or wedged).
    pub shards_waiting: usize,
    /// Shards permanently quarantined.
    pub shards_quarantined: usize,
}

/// Per-shard coverage and staleness in a merged matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCoverage {
    pub shard: u32,
    /// `"live"`, `"restarting"`, or `"dead"`.
    pub status: &'static str,
    /// Pairs the partitioner assigned to this shard.
    pub owned: usize,
    /// Owned pairs with a cached estimate.
    pub covered: usize,
    /// Covered pairs older than the staleness horizon at merge time.
    pub stale: usize,
    /// Owned pairs with no estimate at all.
    pub uncovered: usize,
    /// Oldest / newest measurement timestamp among covered pairs.
    pub oldest_ns: Option<u64>,
    pub newest_ns: Option<u64>,
}

/// The deterministic reduction over shard checkpoints.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    pub matrix: crate::matrix::RttMatrix,
    pub measured_at: HashMap<(NodeId, NodeId), SimTime>,
    /// Per-pair provenance: the shard and scan round that produced
    /// each covered cell. Pairs without an entry (data merged from
    /// pre-lineage state) render as unknown.
    pub lineage: HashMap<(NodeId, NodeId), Lineage>,
    /// One row per shard, in shard-id order.
    pub shards: Vec<ShardCoverage>,
    /// The merge instant staleness was judged against.
    pub now: SimTime,
}

impl MergeOutcome {
    /// Renders the merged matrix as a deterministic, CRC-sealed text
    /// document: coverage rows in shard order, then matrix rows in
    /// `(i, j)` index order with their measurement timestamps. Two
    /// merges of equal shard state render bit-identically regardless
    /// of shard completion order — this document is what the soak
    /// harness compares across kill/resume boundaries.
    pub fn to_document(&self) -> String {
        let mut out = String::new();
        out.push_str("# ting merged matrix v2\n");
        out.push_str("# nodes:");
        for n in self.matrix.nodes() {
            let _ = write!(out, " {}", n.0);
        }
        out.push('\n');
        let _ = writeln!(out, "# now_ns: {}", self.now.as_nanos());
        for c in &self.shards {
            let _ = writeln!(
                out,
                "s\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                c.shard,
                c.status,
                c.owned,
                c.covered,
                c.stale,
                c.uncovered,
                c.oldest_ns.map_or("-".into(), |t| t.to_string()),
                c.newest_ns.map_or("-".into(), |t| t.to_string()),
            );
        }
        let nodes = self.matrix.nodes().to_vec();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if let Some(rtt) = self.matrix.get(a, b) {
                    let t = self.measured_at[&ordered(a, b)];
                    match self.lineage.get(&ordered(a, b)) {
                        Some(l) => {
                            let _ = writeln!(
                                out,
                                "m\t{}\t{}\t{}\t{}\t{}\t{}",
                                a.0,
                                b.0,
                                rtt,
                                t.as_nanos(),
                                l.shard,
                                l.round
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "m\t{}\t{}\t{}\t{}\t-\t-",
                                a.0,
                                b.0,
                                rtt,
                                t.as_nanos()
                            );
                        }
                    }
                }
            }
        }
        crate::checkpoint::seal(out)
    }

    /// Owned-pair coverage across every shard, `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let owned: usize = self.shards.iter().map(|c| c.owned).sum();
        if owned == 0 {
            return 1.0;
        }
        let covered: usize = self.shards.iter().map(|c| c.covered).sum();
        covered as f64 / owned as f64
    }
}

/// The first line of the [`MergeOutcome::to_document`] format.
pub const MERGED_MAGIC: &str = "# ting merged matrix v2";

/// The first line of the pre-lineage (v1) document format, still
/// accepted by [`parse_merged_document`] for compatibility.
pub const MERGED_MAGIC_V1: &str = "# ting merged matrix v1";

/// One incremental publish unit drained from a running [`Supervisor`]
/// by [`Supervisor::take_delta`]: every owned pair measured (or
/// re-measured) since the previous drain, plus the current per-shard
/// statuses. Applying a delta is idempotent assignment — re-applying a
/// pair sets the same value — so consumers may see a boundary pair
/// twice across drains (the watermark is inclusive) without harm.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeDelta {
    /// Strictly increasing per supervisor, starting at 1.
    pub seq: u64,
    /// Measured pairs in shard, then partition order — deterministic
    /// for a given supervisor state.
    pub pairs: Vec<DeltaPair>,
    /// Status tag per shard ([`ShardStatus::tag`]), indexed by shard id.
    pub statuses: Vec<&'static str>,
    /// The instant the delta was drained.
    pub now: SimTime,
}

/// One measured pair inside a [`MergeDelta`], carrying its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaPair {
    pub a: NodeId,
    pub b: NodeId,
    pub rtt_ms: f64,
    /// The measurement instant (the scanner's acceptance time).
    pub measured_at: SimTime,
    /// Which shard measured the pair, in which scan round.
    pub lineage: Lineage,
}

impl MergeDelta {
    /// True when the delta carries neither new pairs nor any live
    /// shard — nothing a publisher would act on beyond status rows.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A merged-matrix document parsed back into data — the read-side
/// inverse of [`MergeOutcome::to_document`], and the load path the
/// latency oracle uses to serve a supervised scan's output. Timestamps
/// come back as raw nanoseconds (the document's own unit) rather than
/// [`SimTime`], since readers live outside the simulation.
#[derive(Debug, Clone)]
pub struct MergedDocument {
    pub matrix: crate::matrix::RttMatrix,
    /// Measurement instants, keyed by the pair in ascending-id order.
    pub measured_at_ns: HashMap<(NodeId, NodeId), u64>,
    /// Per-pair provenance, keyed like `measured_at_ns`. Pairs whose
    /// row carried `-` markers (or any pair in a v1 document) are
    /// absent.
    pub lineage: HashMap<(NodeId, NodeId), Lineage>,
    /// Coverage rows, in document (= shard id) order.
    pub shards: Vec<ShardCoverage>,
    /// The merge instant staleness was judged against.
    pub now_ns: u64,
}

/// Parses a CRC-sealed merged-matrix document. Refuses corrupt seals,
/// unknown versions, unknown nodes in matrix rows, and malformed
/// coverage rows — loudly, with the offending line in the error.
/// Accepts both the current v2 format (matrix rows carry shard/round
/// lineage columns) and the legacy v1 format (no lineage; every pair
/// loads with unknown provenance).
pub fn parse_merged_document(text: &str) -> Result<MergedDocument, String> {
    let body = crate::checkpoint::verify_sealed(text)?;
    let mut lines = body.lines().enumerate();
    let (_, magic) = lines.next().ok_or("empty merged document")?;
    let v2 = match magic {
        MERGED_MAGIC => true,
        MERGED_MAGIC_V1 => false,
        other => {
            return Err(format!(
                "unsupported merged-matrix header {other:?} (expected {MERGED_MAGIC:?})"
            ))
        }
    };
    let (_, nodes_line) = lines.next().ok_or("missing node list")?;
    let nodes: Vec<NodeId> = nodes_line
        .strip_prefix("# nodes:")
        .ok_or_else(|| format!("line 2 is not a '# nodes:' list: {nodes_line:?}"))?
        .split_whitespace()
        .map(|t| {
            t.parse::<u32>()
                .map(NodeId)
                .map_err(|_| format!("line 2: invalid node id {t:?} (expected a u32)"))
        })
        .collect::<Result<_, _>>()?;
    let (_, now_line) = lines.next().ok_or("missing '# now_ns:' line")?;
    let now_ns: u64 = now_line
        .strip_prefix("# now_ns: ")
        .ok_or_else(|| format!("line 3 is not a '# now_ns:' line: {now_line:?}"))?
        .trim()
        .parse()
        .map_err(|e| format!("line 3: invalid now_ns: {e}"))?;

    let mut matrix = crate::matrix::RttMatrix::try_new(nodes)?;
    let mut measured_at_ns = HashMap::new();
    let mut lineage = HashMap::new();
    let mut shards = Vec::new();
    for (lineno, line) in lines {
        let n = lineno + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "s" => {
                if fields.len() != 9 {
                    return Err(format!(
                        "line {n}: coverage row has {} fields, expected 9",
                        fields.len()
                    ));
                }
                let num = |i: usize, what: &str| -> Result<usize, String> {
                    fields[i]
                        .parse()
                        .map_err(|_| format!("line {n}: invalid {what} {:?}", fields[i]))
                };
                let opt_ns = |i: usize, what: &str| -> Result<Option<u64>, String> {
                    if fields[i] == "-" {
                        return Ok(None);
                    }
                    fields[i]
                        .parse()
                        .map(Some)
                        .map_err(|_| format!("line {n}: invalid {what} {:?}", fields[i]))
                };
                let status = match fields[2] {
                    "live" => "live",
                    "restarting" => "restarting",
                    "dead" => "dead",
                    other => return Err(format!("line {n}: unknown shard status {other:?}")),
                };
                shards.push(ShardCoverage {
                    shard: fields[1]
                        .parse()
                        .map_err(|_| format!("line {n}: invalid shard id {:?}", fields[1]))?,
                    status,
                    owned: num(3, "owned count")?,
                    covered: num(4, "covered count")?,
                    stale: num(5, "stale count")?,
                    uncovered: num(6, "uncovered count")?,
                    oldest_ns: opt_ns(7, "oldest_ns")?,
                    newest_ns: opt_ns(8, "newest_ns")?,
                });
            }
            "m" => {
                let want = if v2 { 7 } else { 5 };
                if fields.len() != want {
                    return Err(format!(
                        "line {n}: matrix row has {} fields, expected {want}",
                        fields.len()
                    ));
                }
                let node = |i: usize| -> Result<NodeId, String> {
                    fields[i].parse::<u32>().map(NodeId).map_err(|_| {
                        format!("line {n}: invalid node id {:?} (expected a u32)", fields[i])
                    })
                };
                let (a, b) = (node(1)?, node(2)?);
                let rtt: f64 = fields[3]
                    .parse()
                    .map_err(|e| format!("line {n}: invalid rtt: {e}"))?;
                let t_ns: u64 = fields[4]
                    .parse()
                    .map_err(|e| format!("line {n}: invalid timestamp: {e}"))?;
                matrix
                    .try_set(a, b, rtt)
                    .map_err(|e| format!("line {n}: {e}"))?;
                measured_at_ns.insert(ordered(a, b), t_ns);
                if v2 {
                    match (fields[5], fields[6]) {
                        ("-", "-") => {}
                        (shard, round) => {
                            let shard: u32 = shard.parse().map_err(|_| {
                                format!("line {n}: invalid lineage shard {shard:?}")
                            })?;
                            let round: u64 = round.parse().map_err(|_| {
                                format!("line {n}: invalid lineage round {round:?}")
                            })?;
                            lineage.insert(ordered(a, b), Lineage { shard, round });
                        }
                    }
                }
            }
            kind => return Err(format!("line {n}: unknown row kind {kind:?}")),
        }
    }
    Ok(MergedDocument {
        matrix,
        measured_at_ns,
        lineage,
        shards,
        now_ns,
    })
}

/// Merges shard checkpoints into one matrix: a fixed shard-ordering
/// reduction. Entries are `(shard id, status tag from`
/// [`ShardStatus::tag`]`, sealed checkpoint text)`; ids must be exactly
/// `0..entries.len()`, in any order — the reduction sorts them, and
/// because [`partition_pairs`] ownership is disjoint the merged matrix
/// is invariant to the order shards completed (or crashed) in. Each
/// shard contributes only the pairs it owns; anything else in its
/// checkpoint (possible after an ownership change) is ignored.
pub fn merge_checkpoints(
    entries: &[(u32, &'static str, String)],
    now: SimTime,
) -> Result<MergeOutcome, String> {
    if entries.is_empty() {
        return Err("no shard checkpoints to merge".into());
    }
    let mut sorted: Vec<&(u32, &'static str, String)> = entries.iter().collect();
    sorted.sort_by_key(|e| e.0);
    for (want, e) in sorted.iter().enumerate() {
        if e.0 as usize != want {
            return Err(format!(
                "shard ids must be exactly 0..{}, got {}",
                entries.len(),
                e.0
            ));
        }
    }
    let parsed: Vec<Scanner> = sorted
        .iter()
        .map(|e| Scanner::from_checkpoint(&e.2).map_err(|err| format!("shard {}: {err}", e.0)))
        .collect::<Result<_, _>>()?;
    let nodes = parsed[0].matrix().nodes().to_vec();
    for (e, s) in sorted.iter().zip(&parsed) {
        if s.matrix().nodes() != nodes.as_slice() {
            return Err(format!("shard {}: node list differs from shard 0", e.0));
        }
    }
    let staleness = parsed[0].config().staleness;
    let owned = partition_pairs(&nodes, sorted.len());
    let mut matrix = crate::matrix::RttMatrix::new(nodes);
    let mut measured_at = HashMap::new();
    let mut lineage = HashMap::new();
    let mut shards = Vec::with_capacity(sorted.len());
    for ((e, s), owned) in sorted.iter().zip(&parsed).zip(&owned) {
        let mut covered = 0;
        let mut stale = 0;
        let mut oldest: Option<u64> = None;
        let mut newest: Option<u64> = None;
        for &(a, b) in owned {
            let (Some(rtt), Some(t)) = (s.matrix().get(a, b), s.measured_at(a, b)) else {
                continue;
            };
            matrix.set(a, b, rtt);
            measured_at.insert(ordered(a, b), t);
            lineage.insert(
                ordered(a, b),
                Lineage {
                    shard: e.0,
                    round: s.measured_round(a, b).unwrap_or(0),
                },
            );
            covered += 1;
            if now.since(t) >= staleness {
                stale += 1;
            }
            let t_ns = t.as_nanos();
            oldest = Some(oldest.map_or(t_ns, |o| o.min(t_ns)));
            newest = Some(newest.map_or(t_ns, |n| n.max(t_ns)));
        }
        shards.push(ShardCoverage {
            shard: e.0,
            status: e.1,
            owned: owned.len(),
            covered,
            stale,
            uncovered: owned.len() - covered,
            oldest_ns: oldest,
            newest_ns: newest,
        });
    }
    Ok(MergeOutcome {
        matrix,
        measured_at,
        lineage,
        shards,
        now,
    })
}

/// The shard supervisor: drives every shard's scan rounds, detects
/// stalls, restarts crashed shards from their checkpoints under the
/// restart budget, quarantines repeat offenders, and merges shard
/// state into one matrix. See the module docs for the supervision
/// policy.
pub struct Supervisor {
    config: SupervisorConfig,
    ting_config: TingConfig,
    obs: Obs,
    nodes: Vec<NodeId>,
    slots: Vec<ShardSlot>,
    /// Sequence number of the last [`Supervisor::take_delta`] drain.
    delta_seq: u64,
    /// When set, each shard persists `shard-<id>.ckpt` here after every
    /// round and restarts recover through [`Scanner::recover_observed`]
    /// (primary, then `.bak`, then the in-memory copy, then fresh).
    checkpoint_dir: Option<PathBuf>,
}

impl Supervisor {
    /// A supervisor with observability off.
    pub fn new(
        nodes: Vec<NodeId>,
        config: SupervisorConfig,
        ting_config: TingConfig,
    ) -> Supervisor {
        Supervisor::with_obs(nodes, config, ting_config, Obs::off())
    }

    /// A supervisor recording shard lifecycle events (and everything
    /// the shards' scanners emit) into `obs`.
    pub fn with_obs(
        nodes: Vec<NodeId>,
        config: SupervisorConfig,
        ting_config: TingConfig,
        obs: Obs,
    ) -> Supervisor {
        let owned = partition_pairs(&nodes, config.shards);
        let slots = owned
            .into_iter()
            .enumerate()
            .map(|(id, owned)| {
                let mut scanner = Scanner::new(nodes.clone(), config.scanner);
                scanner.restrict_to(&owned);
                let checkpoint = scanner.to_checkpoint();
                ShardSlot {
                    id: id as u32,
                    owned,
                    scanner: Some(scanner),
                    ting: Some(Ting::with_obs(ting_config, obs.clone())),
                    checkpoint,
                    timeouts: String::new(),
                    status: ShardStatus::Running,
                    restarts: 0,
                    last_progress: SimTime::ZERO,
                    started: false,
                    wedged_until: None,
                    delta_mark: None,
                    down_emitted: false,
                }
            })
            .collect();
        Supervisor {
            config,
            ting_config,
            obs,
            nodes,
            slots,
            delta_seq: 0,
            checkpoint_dir: None,
        }
    }

    /// Enables file-backed shard checkpoints under `dir`.
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<PathBuf>) {
        self.checkpoint_dir = Some(dir.into());
    }

    /// Registers every shard's node locations for lightspeed
    /// validation. Call once after construction (and the supervisor
    /// re-applies it on every restart).
    pub fn load_locations(&mut self, net: &TorNetwork) {
        for slot in &mut self.slots {
            if let Some(s) = slot.scanner.as_mut() {
                s.load_locations(net);
            }
        }
    }

    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The supervision state of shard `k`.
    pub fn status(&self, k: usize) -> ShardStatus {
        self.slots[k].status
    }

    /// Restarts consumed by shard `k`.
    pub fn restarts(&self, k: usize) -> u32 {
        self.slots[k].restarts
    }

    /// The pairs the partitioner assigned to shard `k`.
    pub fn owned_pairs(&self, k: usize) -> &[(NodeId, NodeId)] {
        &self.slots[k].owned
    }

    /// Shard `k`'s live scanner, absent while it is down.
    pub fn scanner(&self, k: usize) -> Option<&Scanner> {
        self.slots[k].scanner.as_ref()
    }

    /// Shard `k`'s current checkpoint: the live scanner's state when
    /// it is up, the last known-good copy otherwise.
    pub fn shard_checkpoint(&self, k: usize) -> String {
        match &self.slots[k].scanner {
            Some(s) => s.to_checkpoint(),
            None => self.slots[k].checkpoint.clone(),
        }
    }

    /// Chaos hook: kills shard `k` right now, as a crash would — its
    /// live scanner and driver are dropped and it restarts from its
    /// last checkpoint (budget and backoff apply, exactly like an
    /// organic failure).
    pub fn inject_crash(&mut self, k: usize, now: SimTime) {
        if matches!(self.slots[k].status, ShardStatus::Quarantined) {
            return;
        }
        self.crash(k, now, "injected");
    }

    /// Chaos hook: wedges shard `k` until `until` — it stays alive but
    /// executes no rounds, the failure mode only the heartbeat
    /// deadline can detect.
    pub fn inject_hang(&mut self, k: usize, until: SimTime) {
        self.slots[k].wedged_until = Some(until);
    }

    /// Chaos hook: drops shard `k`'s live scanner and driver *without*
    /// flipping its status — the half-applied-crash state (a panic
    /// unwound between the state drop and the status write). The next
    /// round must route the slot through the ordinary crash path
    /// instead of panicking the supervisor.
    pub fn inject_scanner_loss(&mut self, k: usize) {
        self.slots[k].scanner = None;
        self.slots[k].ting = None;
    }

    /// Chaos hook: corrupts shard `k`'s stored checkpoint (in-memory
    /// copy, and the on-disk primary + backup when file-backed) so the
    /// next restart exercises the corrupt-checkpoint path.
    pub fn corrupt_stored_checkpoint(&mut self, k: usize) {
        fn flip(text: &str) -> String {
            let mut bytes = text.as_bytes().to_vec();
            if let Some(b) = bytes.iter_mut().find(|b| **b == b'm' || **b == b'#') {
                *b ^= 0x55;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        let corrupted = flip(&self.slots[k].checkpoint);
        self.slots[k].checkpoint = corrupted.clone();
        if let Some(dir) = &self.checkpoint_dir {
            let path = shard_path(dir, self.slots[k].id);
            let _ = std::fs::write(&path, &corrupted);
            let _ = std::fs::write(crate::checkpoint::bak_path(&path), &corrupted);
        }
    }

    /// Runs one supervised round: restores shards whose restart pause
    /// has elapsed, kills shards past their heartbeat deadline, runs a
    /// scan round on every healthy shard in fixed shard order, and
    /// refreshes each shard's checkpoint afterwards.
    pub fn run_round(&mut self, net: &mut TorNetwork) -> SupervisorReport {
        let mut report = SupervisorReport::default();
        for k in 0..self.slots.len() {
            let now = net.sim.now();
            match self.slots[k].status {
                ShardStatus::Quarantined => {
                    report.shards_quarantined += 1;
                    continue;
                }
                ShardStatus::Restarting { at } => {
                    if now < at {
                        report.shards_waiting += 1;
                        continue;
                    }
                    self.restore(k, net);
                }
                ShardStatus::Running => {}
            }
            if !self.slots[k].started {
                self.slots[k].started = true;
                self.slots[k].last_progress = now;
            }
            let idle = now.since(self.slots[k].last_progress);
            if idle > self.config.heartbeat_timeout {
                // The heartbeat deadline passed with no progress: the
                // shard is stuck (wedged process, poisoned vantage).
                // Kill it; the restart path takes over.
                self.obs.inc("ting.shard.stalled");
                if self.obs.is_tracing() {
                    self.obs.event(
                        names::SHARD_STALL,
                        now.as_nanos(),
                        vec![
                            ("shard", Value::U64(k as u64)),
                            ("idle_ns", Value::U64(idle.as_nanos())),
                        ],
                    );
                }
                self.crash(k, now, "stall");
                report.shards_waiting += 1;
                continue;
            }
            if self.slots[k].wedged_until.is_some_and(|u| now < u) {
                // Simulated hang: alive, no round, no progress.
                report.shards_waiting += 1;
                continue;
            }
            self.slots[k].wedged_until = None;
            match self.run_shard_round(k, net) {
                Some(r) => {
                    report.measured += r.measured;
                    report.failed += r.failed;
                    report.still_pending += r.still_pending;
                    report.shards_run += 1;
                    if self.slots[k].scanner.is_none() {
                        // The post-round checkpoint write failed; the
                        // shard crashed and is counted as run *and* now
                        // waiting.
                        report.shards_waiting += 1;
                    }
                }
                // A slot whose live state was lost without the status
                // flipping: it crashed instead of running.
                None => report.shards_waiting += 1,
            }
        }
        report
    }

    /// One shard's scan round plus checkpointing, wrapped in a
    /// `shard.round` span. Returns `None` when the slot had no live
    /// scanner or driver — a degraded slot that reached the run path
    /// (a half-applied crash) is sent through the ordinary crash path
    /// rather than panicking the supervisor.
    fn run_shard_round(&mut self, k: usize, net: &mut TorNetwork) -> Option<RoundReport> {
        if self.slots[k].scanner.is_none() || self.slots[k].ting.is_none() {
            self.crash(k, net.sim.now(), "lost-state");
            return None;
        }
        let span = self.obs.span_begin(
            names::SHARD_ROUND_BEGIN,
            net.sim.now().as_nanos(),
            vec![("shard", Value::U64(k as u64))],
        );
        let slot = &mut self.slots[k];
        let r = match (slot.scanner.as_mut(), slot.ting.as_ref()) {
            (Some(scanner), Some(ting)) => scanner.run_round_parallel(net, ting),
            // Unreachable (guarded above), but a missed round is a
            // better failure mode than a poisoned supervisor.
            _ => RoundReport {
                measured: 0,
                failed: 0,
                still_pending: 0,
            },
        };
        let now = net.sim.now();
        if self.obs.is_tracing() {
            self.obs.span_end(
                names::SHARD_ROUND_END,
                span,
                now.as_nanos(),
                vec![
                    ("shard", Value::U64(k as u64)),
                    ("measured", Value::U64(r.measured as u64)),
                    ("failed", Value::U64(r.failed as u64)),
                    ("still_pending", Value::U64(r.still_pending as u64)),
                ],
            );
        }
        // Progress = the round did work, or had none eligible to do.
        if r.measured + r.failed > 0 || r.still_pending == 0 {
            slot.last_progress = now;
        }
        if let Some(scanner) = slot.scanner.as_ref() {
            slot.checkpoint = scanner.to_checkpoint();
        }
        if let Some(ting) = slot.ting.as_ref() {
            slot.timeouts = ting.timeouts.export();
        }
        if let Some(dir) = self.checkpoint_dir.clone() {
            let saved = match self.slots[k].scanner.as_ref() {
                Some(scanner) => scanner.save(shard_path(&dir, self.slots[k].id)).is_ok(),
                None => false,
            };
            if !saved {
                // Treat a failing checkpoint disk (or a vanished
                // scanner) like a crashed shard: scanning on without
                // durable state would silently void the crash-safety
                // contract.
                self.crash(k, now, "io");
            }
        }
        Some(r)
    }

    /// Kills shard `k`: live state is dropped and a restart is
    /// scheduled under the budget, or the shard is quarantined beyond
    /// it.
    fn crash(&mut self, k: usize, now: SimTime, reason: &str) {
        let slot = &mut self.slots[k];
        slot.scanner = None;
        slot.ting = None;
        slot.wedged_until = None;
        // A fresh outage: its last-known-good checkpoint is new to the
        // delta stream again.
        slot.down_emitted = false;
        slot.restarts += 1;
        self.obs.inc("ting.shard.crashed");
        if self.obs.is_tracing() {
            self.obs.event(
                names::SHARD_CRASH,
                now.as_nanos(),
                vec![
                    ("shard", Value::U64(k as u64)),
                    ("reason", Value::Str(reason.to_owned())),
                    ("restarts", Value::U64(self.slots[k].restarts as u64)),
                ],
            );
        }
        let slot = &mut self.slots[k];
        if slot.restarts > self.config.restart_budget {
            slot.status = ShardStatus::Quarantined;
            self.obs.inc("ting.shard.quarantined");
            if self.obs.is_tracing() {
                self.obs.event(
                    names::SHARD_QUARANTINE,
                    now.as_nanos(),
                    vec![
                        ("shard", Value::U64(k as u64)),
                        ("restarts", Value::U64(self.slots[k].restarts as u64)),
                    ],
                );
            }
        } else {
            let pause = crate::backoff::exponential(
                self.config.restart_backoff,
                slot.restarts,
                self.config.restart_backoff_cap,
            );
            slot.status = ShardStatus::Restarting { at: now + pause };
        }
    }

    /// Brings a crashed shard back: checkpoint (disk, then the
    /// in-memory copy), restored timeout estimators, re-derived scope
    /// and locations. A refused checkpoint falls back to a fresh
    /// scanner — losing the shard's cache but never wedging the scan.
    fn restore(&mut self, k: usize, net: &TorNetwork) {
        let now = net.sim.now();
        let from_disk = self.checkpoint_dir.as_ref().and_then(|dir| {
            Scanner::recover_observed(shard_path(dir, self.slots[k].id), &self.obs, now).ok()
        });
        let restored = match from_disk {
            Some(s) => Ok(s),
            None => Scanner::from_checkpoint(&self.slots[k].checkpoint),
        };
        let mut scanner = match restored {
            Ok(s) => s,
            Err(e) => {
                // Both generations refused: start the shard over. Its
                // owned pairs will re-measure; everyone else's state
                // is untouched.
                self.obs.inc("ting.shard.checkpoint_corrupt");
                if self.obs.is_tracing() {
                    self.obs.event(
                        names::SHARD_CHECKPOINT_CORRUPT,
                        now.as_nanos(),
                        vec![("shard", Value::U64(k as u64)), ("error", Value::Str(e))],
                    );
                }
                Scanner::new(self.nodes.clone(), self.config.scanner)
            }
        };
        scanner.restrict_to(&self.slots[k].owned);
        scanner.load_locations(net);
        let ting = Ting::with_obs(self.ting_config, self.obs.clone());
        let _ = ting.timeouts.import(&self.slots[k].timeouts);
        let slot = &mut self.slots[k];
        slot.checkpoint = scanner.to_checkpoint();
        slot.scanner = Some(scanner);
        slot.ting = Some(ting);
        slot.status = ShardStatus::Running;
        slot.last_progress = now;
        self.obs.inc("ting.shard.restarted");
        if self.obs.is_tracing() {
            self.obs.event(
                names::SHARD_RESTART,
                now.as_nanos(),
                vec![
                    ("shard", Value::U64(k as u64)),
                    ("attempt", Value::U64(self.slots[k].restarts as u64)),
                ],
            );
        }
    }

    /// Merges every shard's current state (live scanners and
    /// last-known-good checkpoints of downed shards alike) into one
    /// matrix with per-shard coverage rows.
    pub fn merge(&self, now: SimTime) -> Result<MergeOutcome, String> {
        let entries: Vec<(u32, &'static str, String)> = self
            .slots
            .iter()
            .map(|slot| {
                (
                    slot.id,
                    slot.status.tag(),
                    match &slot.scanner {
                        Some(s) => s.to_checkpoint(),
                        None => slot.checkpoint.clone(),
                    },
                )
            })
            .collect();
        merge_checkpoints(&entries, now)
    }

    /// Drains the incremental merge delta: every owned pair measured at
    /// or after the slot's watermark since the previous drain. Live
    /// shards advance their watermark to `now`; a downed shard emits
    /// its frozen last-known-good checkpoint once per outage and keeps
    /// its watermark, so a later restore re-emits anything the outage
    /// hid. The inclusive `>=` filter may re-emit a boundary
    /// measurement — application is assignment, so duplicates are
    /// idempotent and nothing is ever lost.
    pub fn take_delta(&mut self, now: SimTime) -> MergeDelta {
        self.delta_seq += 1;
        let mut pairs = Vec::new();
        let mut statuses = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            statuses.push(slot.status.tag());
            match &slot.scanner {
                Some(s) => {
                    emit_since(s, slot.id, &slot.owned, slot.delta_mark, &mut pairs);
                    slot.delta_mark = Some(now);
                }
                None => {
                    if slot.down_emitted {
                        continue;
                    }
                    slot.down_emitted = true;
                    // A refused checkpoint contributes nothing here;
                    // restore() handles (and traces) the corruption.
                    if let Ok(s) = Scanner::from_checkpoint(&slot.checkpoint) {
                        emit_since(&s, slot.id, &slot.owned, slot.delta_mark, &mut pairs);
                    }
                }
            }
        }
        if self.obs.is_tracing() {
            // One provenance record per drained pair, stamped at the
            // drain instant (the measurement's own time may predate
            // earlier events; the event log must stay monotone).
            for p in &pairs {
                self.obs.event(
                    names::LINEAGE_PAIR,
                    now.as_nanos(),
                    vec![
                        ("a", Value::U64(p.a.0 as u64)),
                        ("b", Value::U64(p.b.0 as u64)),
                        ("shard", Value::U64(u64::from(p.lineage.shard))),
                        ("round", Value::U64(p.lineage.round)),
                        ("seq", Value::U64(self.delta_seq)),
                        ("t_meas", Value::U64(p.measured_at.as_nanos())),
                    ],
                );
            }
        }
        MergeDelta {
            seq: self.delta_seq,
            pairs,
            statuses,
            now,
        }
    }
}

/// Pushes every owned pair with a measurement at or after `mark` (all
/// of them when `mark` is `None`) onto `out`, in partition order, each
/// stamped with the owning shard and the scanner's round of record.
fn emit_since(
    s: &Scanner,
    shard: u32,
    owned: &[(NodeId, NodeId)],
    mark: Option<SimTime>,
    out: &mut Vec<DeltaPair>,
) {
    for &(a, b) in owned {
        let (Some(rtt), Some(t)) = (s.matrix().get(a, b), s.measured_at(a, b)) else {
            continue;
        };
        if mark.is_none_or(|m| t >= m) {
            out.push(DeltaPair {
                a,
                b,
                rtt_ms: rtt,
                measured_at: t,
                lineage: Lineage {
                    shard,
                    round: s.measured_round(a, b).unwrap_or(0),
                },
            });
        }
    }
}

/// Shard `id`'s checkpoint file under `dir`.
pub fn shard_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("shard-{id}.ckpt"))
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn merged_document_parse_inverts_render() {
        let mut matrix = crate::matrix::RttMatrix::new(nodes(3));
        matrix.set(NodeId(0), NodeId(1), 12.5);
        matrix.set(NodeId(1), NodeId(2), 80.25);
        let mut measured_at = HashMap::new();
        measured_at.insert((NodeId(0), NodeId(1)), SimTime(1_000));
        measured_at.insert((NodeId(1), NodeId(2)), SimTime(2_000));
        // One pair with provenance, one without: both column forms
        // must round-trip.
        let mut lineage = HashMap::new();
        lineage.insert((NodeId(0), NodeId(1)), Lineage { shard: 0, round: 4 });
        let outcome = MergeOutcome {
            matrix,
            measured_at,
            lineage,
            shards: vec![
                ShardCoverage {
                    shard: 0,
                    status: "live",
                    owned: 2,
                    covered: 2,
                    stale: 0,
                    uncovered: 0,
                    oldest_ns: Some(1_000),
                    newest_ns: Some(2_000),
                },
                ShardCoverage {
                    shard: 1,
                    status: "dead",
                    owned: 1,
                    covered: 0,
                    stale: 0,
                    uncovered: 1,
                    oldest_ns: None,
                    newest_ns: None,
                },
            ],
            now: SimTime(5_000),
        };
        let doc = outcome.to_document();
        let parsed = parse_merged_document(&doc).expect("rendered document must parse");
        assert_eq!(parsed.matrix, outcome.matrix);
        assert_eq!(parsed.now_ns, 5_000);
        assert_eq!(parsed.shards, outcome.shards);
        assert_eq!(parsed.measured_at_ns[&(NodeId(0), NodeId(1))], 1_000);
        assert_eq!(parsed.measured_at_ns[&(NodeId(1), NodeId(2))], 2_000);
        assert_eq!(
            parsed.lineage.get(&(NodeId(0), NodeId(1))),
            Some(&Lineage { shard: 0, round: 4 })
        );
        assert_eq!(parsed.lineage.get(&(NodeId(1), NodeId(2))), None);
        // Re-rendering the parsed state is a byte-identical fixed point.
        let again = MergeOutcome {
            matrix: parsed.matrix.clone(),
            measured_at: parsed
                .measured_at_ns
                .iter()
                .map(|(&k, &v)| (k, SimTime(v)))
                .collect(),
            lineage: parsed.lineage.clone(),
            shards: parsed.shards.clone(),
            now: SimTime(parsed.now_ns),
        }
        .to_document();
        assert_eq!(again, doc);
    }

    #[test]
    fn merged_document_parser_refuses_corruption() {
        let doc = {
            let mut matrix = crate::matrix::RttMatrix::new(nodes(2));
            matrix.set(NodeId(0), NodeId(1), 3.5);
            let mut measured_at = HashMap::new();
            measured_at.insert((NodeId(0), NodeId(1)), SimTime(7));
            MergeOutcome {
                matrix,
                measured_at,
                lineage: HashMap::new(),
                shards: vec![],
                now: SimTime(9),
            }
            .to_document()
        };
        // A flipped body byte breaks the CRC seal.
        let mut corrupt = doc.clone().into_bytes();
        corrupt[5] ^= 0x01;
        assert!(parse_merged_document(&String::from_utf8(corrupt).unwrap()).is_err());
        // An unknown version inside a valid seal is still refused.
        let v3 = crate::checkpoint::seal(
            "# ting merged matrix v3\n# nodes: 0 1\n# now_ns: 9\n".to_owned(),
        );
        let err = parse_merged_document(&v3).unwrap_err();
        assert!(err.contains("unsupported merged-matrix header"), "{err}");
        // Matrix rows naming unknown nodes error with the line number
        // (legacy v1 documents still parse, without lineage columns).
        let bad = crate::checkpoint::seal(
            "# ting merged matrix v1\n# nodes: 0 1\n# now_ns: 9\nm\t0\t7\t3.5\t1\n".to_owned(),
        );
        let err = parse_merged_document(&bad).unwrap_err();
        assert!(
            err.contains("line 4") && err.contains("unknown node 7"),
            "{err}"
        );
        // Unknown row kinds and truncated coverage rows are refused.
        let bad = crate::checkpoint::seal(
            "# ting merged matrix v1\n# nodes: 0 1\n# now_ns: 9\nx\t1\n".to_owned(),
        );
        assert!(parse_merged_document(&bad).is_err());
        let bad = crate::checkpoint::seal(
            "# ting merged matrix v1\n# nodes: 0 1\n# now_ns: 9\ns\t0\tlive\t1\n".to_owned(),
        );
        assert!(parse_merged_document(&bad).is_err());
        // A v2 matrix row must carry both lineage columns, well-formed.
        let bad = crate::checkpoint::seal(
            "# ting merged matrix v2\n# nodes: 0 1\n# now_ns: 9\nm\t0\t1\t3.5\t1\n".to_owned(),
        );
        assert!(parse_merged_document(&bad).is_err());
        let bad = crate::checkpoint::seal(
            "# ting merged matrix v2\n# nodes: 0 1\n# now_ns: 9\nm\t0\t1\t3.5\t1\t-\t7\n"
                .to_owned(),
        );
        let err = parse_merged_document(&bad).unwrap_err();
        assert!(err.contains("invalid lineage shard"), "{err}");
    }

    #[test]
    fn partition_round_robins_pairs_in_index_order() {
        let owned = partition_pairs(&nodes(4), 2); // 6 pairs
        assert_eq!(
            owned[0],
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(3)),
                (NodeId(1), NodeId(3)),
            ]
        );
        assert_eq!(
            owned[1],
            vec![
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn more_shards_than_pairs_leaves_surplus_empty() {
        let owned = partition_pairs(&nodes(2), 5);
        assert_eq!(owned[0], vec![(NodeId(0), NodeId(1))]);
        assert!(owned[1..].iter().all(|o| o.is_empty()));
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        partition_pairs(&nodes(3), 0);
    }

    #[test]
    fn merge_rejects_bad_shard_ids() {
        let s = Scanner::new(nodes(3), ScannerConfig::default());
        let ckpt = s.to_checkpoint();
        let err = merge_checkpoints(
            &[(0, "live", ckpt.clone()), (2, "live", ckpt)],
            SimTime::ZERO,
        )
        .unwrap_err();
        assert!(err.contains("shard ids"), "{err}");
    }

    #[test]
    fn merge_of_empty_checkpoints_covers_nothing() {
        let s = Scanner::new(nodes(3), ScannerConfig::default());
        let ckpt = s.to_checkpoint();
        let m = merge_checkpoints(
            &[(0, "live", ckpt.clone()), (1, "dead", ckpt)],
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.shards[0].status, "live");
        assert_eq!(m.shards[1].status, "dead");
        assert_eq!(m.shards[0].owned + m.shards[1].owned, 3);
        assert_eq!(m.shards[1].oldest_ns, None);
    }
}
