//! Adaptive per-phase timeouts, in the spirit of Tor's circuit-build
//! timeout (CBT) estimation.
//!
//! Fixed deadlines are either too loose (a dead relay costs the full
//! 30 s build timeout, every time) or too tight (a healthy-but-distant
//! circuit gets cut off). Tor itself learns a build timeout from the
//! observed completion-time distribution; the circuit-selection
//! literature (Imani et al., arXiv:1706.06457) confirms the learned
//! cutoff beats any global constant. This module does the same for the
//! measurement pipeline's three phases — circuit build, stream attach,
//! probe echo — so both the sequential orchestrator and the parallel
//! driver cut off stragglers at the observed p95 (plus headroom)
//! rather than a hardcoded constant.
//!
//! Only *successful* phase durations feed the estimator: timeouts are
//! censored observations and would drag the quantile toward whatever
//! the previous deadline was. Until `min_samples` successes have been
//! seen, the fixed fallback from [`crate::orchestrator::TingConfig`]
//! applies unchanged — which also means a run with adaptive timeouts
//! disabled (`TingConfig::adaptive_timeouts = None`) is bit-identical
//! to the pre-adaptive pipeline.
//!
//! The estimator state is a plain ring buffer per phase,
//! exportable/importable as text ([`TimeoutEstimators::export`]) so a
//! killed-and-resumed scan replays with bit-identical deadlines.

use std::cell::RefCell;
use std::rc::Rc;

/// Adaptive-timeout knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTimeoutConfig {
    /// Quantile of the observed success durations used as the cutoff
    /// basis (Tor's CBT uses ~0.8; measurement wants a laxer p95).
    pub quantile: f64,
    /// Multiplier on the quantile — headroom for jitter above p95.
    pub headroom: f64,
    /// Ring-buffer window of success durations kept per phase.
    pub window: usize,
    /// Successes required before the estimate replaces the fallback.
    pub min_samples: usize,
    /// Never cut off below this (ms), no matter how fast successes are.
    pub floor_ms: f64,
    /// Never wait longer than this (ms).
    pub ceiling_ms: f64,
}

impl Default for AdaptiveTimeoutConfig {
    fn default() -> Self {
        AdaptiveTimeoutConfig {
            quantile: 0.95,
            headroom: 1.5,
            window: 128,
            min_samples: 16,
            floor_ms: 250.0,
            ceiling_ms: 30_000.0,
        }
    }
}

/// The three deadline-bearing phases of one circuit measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPhase {
    /// Circuit build: `build_circuit` issued → `CircuitStatus::Ready`.
    Build,
    /// Echo stream attach: open issued → `StreamStatus::Open`.
    Stream,
    /// One probe: sent → echo received.
    Probe,
}

/// One phase's rolling window of success durations.
#[derive(Debug, Clone, Default)]
struct Window {
    samples: Vec<f64>,
    /// Next overwrite position once `samples` reaches the window size.
    cursor: usize,
}

impl Window {
    fn observe(&mut self, ms: f64, window: usize) {
        if window == 0 {
            return;
        }
        if self.samples.len() < window {
            self.samples.push(ms);
        } else {
            self.cursor %= self.samples.len();
            self.samples[self.cursor] = ms;
        }
        self.cursor = (self.cursor + 1) % window.max(1);
    }

    /// The q-quantile (nearest-rank) of the window, if non-empty.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[derive(Debug, Default)]
struct Inner {
    build: Window,
    stream: Window,
    probe: Window,
}

impl Inner {
    fn window(&mut self, phase: TimeoutPhase) -> &mut Window {
        match phase {
            TimeoutPhase::Build => &mut self.build,
            TimeoutPhase::Stream => &mut self.stream,
            TimeoutPhase::Probe => &mut self.probe,
        }
    }

    fn window_ref(&self, phase: TimeoutPhase) -> &Window {
        match phase {
            TimeoutPhase::Build => &self.build,
            TimeoutPhase::Stream => &self.stream,
            TimeoutPhase::Probe => &self.probe,
        }
    }
}

/// A cheap, clonable handle to the three per-phase estimators — the
/// same `Rc` sharing pattern as [`tor_sim::MeasurementMetrics`], so the
/// scanner, the orchestrator, and the parallel driver all feed and read
/// one state.
#[derive(Debug, Clone, Default)]
pub struct TimeoutEstimators {
    inner: Rc<RefCell<Inner>>,
}

impl TimeoutEstimators {
    pub fn new() -> TimeoutEstimators {
        TimeoutEstimators::default()
    }

    /// Feeds one successful phase duration.
    pub fn observe(&self, phase: TimeoutPhase, ms: f64, config: &AdaptiveTimeoutConfig) {
        self.inner
            .borrow_mut()
            .window(phase)
            .observe(ms, config.window);
    }

    /// Successes observed so far for `phase`.
    pub fn samples(&self, phase: TimeoutPhase) -> usize {
        self.inner.borrow().window_ref(phase).samples.len()
    }

    /// The deadline for `phase` in ms: `quantile · headroom`, clamped
    /// to `[floor, ceiling]` — or `fallback_ms` until `min_samples`
    /// successes have been seen.
    pub fn timeout_ms(
        &self,
        phase: TimeoutPhase,
        config: &AdaptiveTimeoutConfig,
        fallback_ms: f64,
    ) -> f64 {
        let inner = self.inner.borrow();
        let w = inner.window_ref(phase);
        if w.samples.len() < config.min_samples.max(1) {
            return fallback_ms;
        }
        let q = w.quantile(config.quantile).unwrap_or(fallback_ms);
        (q * config.headroom).clamp(config.floor_ms, config.ceiling_ms)
    }

    /// Serializes the full estimator state as text: one line per phase,
    /// `<tag> <cursor> <samples…>` with f64s in their shortest
    /// exactly-roundtripping form. [`TimeoutEstimators::import`] of the
    /// export is bit-identical — the kill/resume contract.
    pub fn export(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (tag, w) in [
            ("build", &inner.build),
            ("stream", &inner.stream),
            ("probe", &inner.probe),
        ] {
            let _ = write!(out, "{tag} {}", w.cursor);
            for s in &w.samples {
                let _ = write!(out, " {s}");
            }
            out.push('\n');
        }
        out
    }

    /// Restores state written by [`TimeoutEstimators::export`],
    /// replacing the current contents.
    pub fn import(&self, text: &str) -> Result<(), String> {
        let mut inner = self.inner.borrow_mut();
        *inner = Inner::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let tag = toks.next().ok_or("empty estimator line")?;
            let cursor: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad cursor in estimator line {line:?}"))?;
            let samples: Vec<f64> = toks
                .map(|t| {
                    t.parse::<f64>()
                        .map_err(|e| format!("bad sample {t:?}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let w = match tag {
                "build" => &mut inner.build,
                "stream" => &mut inner.stream,
                "probe" => &mut inner.probe,
                other => return Err(format!("unknown estimator phase {other:?}")),
            };
            w.samples = samples;
            w.cursor = cursor;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveTimeoutConfig {
        AdaptiveTimeoutConfig {
            min_samples: 4,
            window: 8,
            floor_ms: 10.0,
            ceiling_ms: 1_000.0,
            quantile: 0.95,
            headroom: 1.5,
        }
    }

    #[test]
    fn fallback_until_min_samples() {
        let est = TimeoutEstimators::new();
        let c = cfg();
        for _ in 0..3 {
            est.observe(TimeoutPhase::Build, 100.0, &c);
        }
        assert_eq!(est.timeout_ms(TimeoutPhase::Build, &c, 30_000.0), 30_000.0);
        est.observe(TimeoutPhase::Build, 100.0, &c);
        // p95 of {100,100,100,100}·1.5 = 150.
        assert_eq!(est.timeout_ms(TimeoutPhase::Build, &c, 30_000.0), 150.0);
    }

    #[test]
    fn quantile_tracks_the_tail_and_clamps() {
        let est = TimeoutEstimators::new();
        let c = cfg();
        for ms in [10.0, 12.0, 11.0, 13.0, 700.0, 10.0, 12.0, 11.0] {
            est.observe(TimeoutPhase::Probe, ms, &c);
        }
        // p95 over 8 samples is the max: 700 · 1.5 > ceiling → clamped.
        assert_eq!(est.timeout_ms(TimeoutPhase::Probe, &c, 5_000.0), 1_000.0);
        // Floor clamps equally: all-fast successes never cut below it.
        let est2 = TimeoutEstimators::new();
        for _ in 0..8 {
            est2.observe(TimeoutPhase::Probe, 1.0, &c);
        }
        assert_eq!(est2.timeout_ms(TimeoutPhase::Probe, &c, 5_000.0), 10.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let est = TimeoutEstimators::new();
        let c = cfg();
        for _ in 0..8 {
            est.observe(TimeoutPhase::Stream, 500.0, &c);
        }
        // 8 more fast successes push every 500 out of the window.
        for _ in 0..8 {
            est.observe(TimeoutPhase::Stream, 20.0, &c);
        }
        assert_eq!(est.timeout_ms(TimeoutPhase::Stream, &c, 9_999.0), 30.0);
        assert_eq!(est.samples(TimeoutPhase::Stream), 8);
    }

    #[test]
    fn export_import_is_bit_identical() {
        let est = TimeoutEstimators::new();
        let c = cfg();
        for (i, ms) in [3.25, 700.125, 0.0625, 41.5, 9.75, 1.0, 2.0, 3.0, 4.0]
            .iter()
            .enumerate()
        {
            let phase = match i % 3 {
                0 => TimeoutPhase::Build,
                1 => TimeoutPhase::Stream,
                _ => TimeoutPhase::Probe,
            };
            est.observe(phase, *ms, &c);
        }
        let text = est.export();
        let restored = TimeoutEstimators::new();
        restored.import(&text).unwrap();
        assert_eq!(restored.export(), text);
        for phase in [
            TimeoutPhase::Build,
            TimeoutPhase::Stream,
            TimeoutPhase::Probe,
        ] {
            assert_eq!(
                restored.timeout_ms(phase, &c, 1.0).to_bits(),
                est.timeout_ms(phase, &c, 1.0).to_bits()
            );
        }
    }

    #[test]
    fn import_rejects_garbage() {
        let est = TimeoutEstimators::new();
        assert!(est.import("build x 1 2\n").is_err());
        assert!(est.import("warp 0 1 2\n").is_err());
        assert!(est.import("probe 0 1 banana\n").is_err());
    }
}
