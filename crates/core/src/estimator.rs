//! The Eq. (4) estimator and measurement records.
//!
//! With `s`, `d`, `w`, `z` co-located on host `h`, the three circuits'
//! end-to-end RTTs decompose as (Eqs. 1–3 of the paper):
//!
//! ```text
//! R_Cxy = R(h,h) + 2F_h + R(h,x) + 2F_x + R(x,y) + 2F_y + R(h,y) + 2F_h + R(h,h)
//! R_Cx  = 2R(h,h) + 4F_h + 2R(h,x) + 2F_x
//! R_Cy  = 2R(h,h) + 4F_h + 2R(h,y) + 2F_y
//! ```
//!
//! so `R_Cxy − ½R_Cx − ½R_Cy = R(x,y) + F_x + F_y` — the estimate is the
//! true RTT plus the two forwarding delays, whose minima are small.

use crate::sampling::min_filter;

/// The RTT samples collected through one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSamples {
    /// Every echo RTT observed, in order (ms).
    pub samples: Vec<f64>,
}

impl CircuitSamples {
    pub fn new(samples: Vec<f64>) -> CircuitSamples {
        assert!(!samples.is_empty(), "a circuit measurement needs samples");
        CircuitSamples { samples }
    }

    /// The circuit's RTT estimate: the minimum sample.
    pub fn min_ms(&self) -> f64 {
        min_filter(&self.samples).expect("non-empty by construction")
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Eq. (4): combines the three circuit minima into the pair estimate.
pub fn ting_estimate_ms(r_cxy_ms: f64, r_cx_ms: f64, r_cy_ms: f64) -> f64 {
    r_cxy_ms - r_cx_ms / 2.0 - r_cy_ms / 2.0
}

/// A complete Ting measurement of one relay pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TingMeasurement {
    /// Samples through `C_xy = (w, x, y, z)`.
    pub full: CircuitSamples,
    /// Samples through `C_x = (w, x)`.
    pub x_leg: CircuitSamples,
    /// Samples through `C_y = (w, y)`.
    pub y_leg: CircuitSamples,
    /// Virtual time the measurement took, in seconds (§4.4 reports
    /// 2.5 min/pair at 200 samples, <15 s at ~5% error).
    pub elapsed_s: f64,
}

impl TingMeasurement {
    /// The pair's RTT estimate (ms), per Eq. (4).
    pub fn estimate_ms(&self) -> f64 {
        ting_estimate_ms(self.full.min_ms(), self.x_leg.min_ms(), self.y_leg.min_ms())
    }

    /// Total samples across the three circuits.
    pub fn total_samples(&self) -> usize {
        self.full.len() + self.x_leg.len() + self.y_leg.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra_recovers_planted_rtt_exactly() {
        // Plant R(h,x)=10, R(h,y)=20, R(x,y)=77, forwarding delays zero.
        let r_cx = 2.0 * 10.0;
        let r_cy = 2.0 * 20.0;
        let r_cxy = 10.0 + 77.0 + 20.0;
        assert_eq!(ting_estimate_ms(r_cxy, r_cx, r_cy), 77.0);
    }

    #[test]
    fn forwarding_delays_remain_in_estimate() {
        // With F_x = 2, F_y = 3 the estimate is R(x,y) + 5 (Eq. 4).
        let (rhx, rhy, rxy, fx, fy) = (10.0, 20.0, 77.0, 2.0, 3.0);
        let r_cx = 2.0 * rhx + 2.0 * fx;
        let r_cy = 2.0 * rhy + 2.0 * fy;
        let r_cxy = rhx + 2.0 * fx + rxy + 2.0 * fy + rhy;
        let est = ting_estimate_ms(r_cxy, r_cx, r_cy);
        assert!((est - (rxy + fx + fy)).abs() < 1e-12);
    }

    #[test]
    fn host_terms_cancel() {
        // Adding host-side latency/forwarding to all three circuits
        // leaves the estimate unchanged.
        let host = 4.2; // R(h,h) + 2F_h per traversal
        let base = ting_estimate_ms(100.0, 30.0, 40.0);
        let with_host = ting_estimate_ms(100.0 + 2.0 * host, 30.0 + 2.0 * host, 40.0 + 2.0 * host);
        assert!((base - with_host).abs() < 1e-12);
    }

    #[test]
    fn measurement_uses_minima() {
        let m = TingMeasurement {
            full: CircuitSamples::new(vec![120.0, 100.0, 115.0]),
            x_leg: CircuitSamples::new(vec![22.0, 20.0]),
            y_leg: CircuitSamples::new(vec![41.0, 40.0, 44.0]),
            elapsed_s: 1.0,
        };
        assert_eq!(m.estimate_ms(), 100.0 - 10.0 - 20.0);
        assert_eq!(m.total_samples(), 8);
    }

    #[test]
    #[should_panic]
    fn empty_samples_rejected() {
        let _ = CircuitSamples::new(vec![]);
    }
}
