//! **Ting**: measuring round-trip times between arbitrary Tor relays
//! from a single vantage point, after Cangialosi, Levin & Spring
//! (IMC 2015).
//!
//! The technique (§3.3 of the paper): run an echo client/server and two
//! local Tor relays `w`, `z` on one host `h`; build three circuits
//! through the pair of interest `(x, y)` —
//!
//! ```text
//! C_xy = (w, x, y, z)      the full circuit
//! C_x  = (w, x)            isolates h ↔ x
//! C_y  = (w, y)            isolates h ↔ y
//! ```
//!
//! sample echo RTTs through each, take per-circuit minima, and compute
//!
//! ```text
//! R(x, y) ≈ min R_Cxy − ½ min R_Cx − ½ min R_Cy
//! ```
//!
//! which cancels every term of Eq. (1)–(3) except `R(x,y) + F_x + F_y`,
//! where the forwarding delays `F` have ~0–3 ms minima (§4.3).
//!
//! Module map:
//!
//! * [`estimator`] — the Eq. (4) algebra and measurement records;
//! * [`sampling`] — sample policies (fixed count, early stopping) and
//!   the min filter;
//! * [`orchestrator`] — drives circuits/streams over a
//!   [`tor_sim::TorNetwork`] and produces [`estimator::TingMeasurement`]s;
//! * [`strawman`] — the §3.2 baseline that mixes Tor and ping traffic
//!   (kept so experiments can show *why* it fails);
//! * [`forwarding`] — the §4.3 forwarding-delay measurement procedure;
//! * [`matrix`] — all-pairs RTT matrices with caching and strict TSV
//!   import/export, the substrate of every §5 application, plus the
//!   dense index-addressed [`matrix::RttView`] (and its shared detour
//!   kernel) that the `oracle` query service reads;
//! * [`queue`] — the scanner's incrementally maintained work queue
//!   (replaces the per-round O(n²) priority sweeps);
//! * [`parallel`] — the §6 scaling step: K vantage pairs measuring
//!   concurrently in virtual time over the shared event loop;
//! * [`health`] — per-relay EWMA success scores and quarantine, so a
//!   dead relay stops taxing its n−1 pairs;
//! * [`timeout`] — CBT-style adaptive per-phase deadlines learned from
//!   successful durations;
//! * [`validate`] — lightspeed/divergence/TIV cross-checks gating
//!   estimates before they reach the cache;
//! * [`checkpoint`] — CRC-sealed, atomically-written (and fsynced)
//!   checkpoint plumbing behind [`scanner::Scanner::save`]/`recover`;
//! * [`shard`] — crash-isolated scan shards under a supervising
//!   restart budget, with a deterministic merge over shard
//!   checkpoints and degraded-mode coverage reporting;
//! * [`backoff`] — the shared exponential/jittered backoff arithmetic;
//! * [`obs`] (re-exported crate) — the unified observability layer:
//!   counters, log-bucketed latency histograms, virtual-time trace
//!   events and the deterministic JSONL exporter. Off by default;
//!   enable via [`orchestrator::Ting::with_obs`] and
//!   `TorNetworkBuilder::observability`.

pub use obs;

pub mod backoff;
pub mod checkpoint;
pub mod estimator;
pub mod forwarding;
pub mod health;
pub mod king;
pub mod matrix;
pub mod orchestrator;
pub mod parallel;
pub mod queue;
pub mod report;
pub mod sampling;
pub mod scanner;
pub mod shard;
pub mod strawman;
pub mod timeout;
pub mod validate;

pub use estimator::{ting_estimate_ms, CircuitSamples, TingMeasurement};
pub use forwarding::{measure_forwarding_delay, ForwardingDelayMeasurement, ProbeProtocol};
pub use health::{HealthConfig, HealthEvent, RelayHealth};
pub use king::{king_measure, KingConfig, KingOutcome};
pub use matrix::{DetourBest, RttMatrix, RttView, TSV_MAGIC};
pub use orchestrator::{Ting, TingConfig, TingError};
pub use parallel::{measure_interleaved, PairOutcome};
pub use queue::WorkQueue;
pub use report::{CampaignReport, QualityFlag};
pub use sampling::SamplePolicy;
pub use scanner::{Scanner, ScannerConfig};
pub use shard::{
    merge_checkpoints, parse_merged_document, partition_pairs, DeltaPair, MergeDelta, MergeOutcome,
    MergedDocument, ShardCoverage, ShardStatus, Supervisor, SupervisorConfig, SupervisorReport,
    MERGED_MAGIC, MERGED_MAGIC_V1,
};
pub use timeout::{AdaptiveTimeoutConfig, TimeoutEstimators, TimeoutPhase};
pub use validate::{ValidationConfig, ValidationError, Verdict};
