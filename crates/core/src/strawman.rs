//! The §3.2 strawman estimator — kept as a baseline *because it fails*.
//!
//! The strawman builds the circuit through `(x, y)`, then subtracts
//! direct `ping` estimates of the client↔x and y↔client legs:
//!
//! ```text
//! R(x, y) ≈ R_C(s, d) − R̃(s, x) − R̃(y, d)
//! ```
//!
//! Two error sources make this untenable (and our underlay reproduces
//! both): ICMP and Tor traffic are treated differently by many networks,
//! and the subtraction ignores per-relay forwarding delays entirely.
//! `fig05_forwarding_delays` and the `headline_scalars` bench compare it
//! against Ting quantitatively.

use crate::orchestrator::{Ting, TingError};
use netsim::NodeId;
use tor_sim::TorNetwork;

/// A strawman measurement of one pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StrawmanMeasurement {
    /// Minimum end-to-end RTT through the (w, x, y, z) circuit (ms).
    pub circuit_min_ms: f64,
    /// Minimum of the ICMP pings host → x (ms).
    pub ping_x_min_ms: f64,
    /// Minimum of the ICMP pings host → y (ms).
    pub ping_y_min_ms: f64,
}

impl StrawmanMeasurement {
    /// The strawman estimate: circuit minus pings.
    pub fn estimate_ms(&self) -> f64 {
        self.circuit_min_ms - self.ping_x_min_ms - self.ping_y_min_ms
    }
}

/// Runs the strawman: one Tor circuit measurement plus `ping_samples`
/// ICMP probes to each relay. Uses the same sampling policy as `ting`
/// for the circuit so the comparison is apples-to-apples.
pub fn strawman_measure(
    ting: &Ting,
    net: &mut TorNetwork,
    x: NodeId,
    y: NodeId,
    ping_samples: usize,
) -> Result<StrawmanMeasurement, TingError> {
    let (w, z) = (net.local_w, net.local_z);
    let circuit = ting.sample_circuit(net, vec![w, x, y, z])?;
    let host = net.proxy;
    let ping_x_min_ms = net.ping_min_rtt_ms(host, x, ping_samples);
    let ping_y_min_ms = net.ping_min_rtt_ms(host, y, ping_samples);
    Ok(StrawmanMeasurement {
        circuit_min_ms: circuit.min_ms(),
        ping_x_min_ms,
        ping_y_min_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::TingConfig;
    use netsim::ProtocolPolicy;
    use tor_sim::TorNetworkBuilder;

    #[test]
    fn strawman_roughly_works_on_neutral_networks() {
        // With every AS protocol-neutral, the strawman's only error is
        // the uncancelled forwarding delays.
        let mut net = TorNetworkBuilder::testbed(21).neutral_fraction(1.0).build();
        let (x, y) = (net.relays[1], net.relays[12]);
        let truth = net.true_rtt_ms(x, y);
        let ting = Ting::new(TingConfig::with_samples(30));
        let m = strawman_measure(&ting, &mut net, x, y, 30).unwrap();
        let err = (m.estimate_ms() - truth).abs();
        assert!(err < truth * 0.35 + 15.0, "err {err} truth {truth}");
    }

    #[test]
    fn strawman_breaks_under_icmp_discrimination() {
        // Give x's AS a large ICMP penalty: the strawman subtracts an
        // inflated ping and lands far below the truth — the §3.2 story.
        let mut net = TorNetworkBuilder::testbed(22).neutral_fraction(1.0).build();
        let (x, y) = (net.relays[3], net.relays[18]);
        let x_as = net.sim.underlay().node(x.index()).as_id;
        net.sim.underlay_mut().as_profile_mut(x_as).policy =
            ProtocolPolicy::icmp_deprioritized(40.0);
        let truth = net.true_rtt_ms(x, y);
        let ting = Ting::new(TingConfig::with_samples(30));

        let strawman = strawman_measure(&ting, &mut net, x, y, 30).unwrap();
        let ting_m = ting.measure_pair(&mut net, x, y).unwrap();

        let strawman_err = (strawman.estimate_ms() - truth).abs();
        let ting_err = (ting_m.estimate_ms() - truth).abs();
        // Ting is unaffected by the ICMP policy; the strawman is off by
        // roughly the 40 ms penalty.
        assert!(
            strawman_err > ting_err + 20.0,
            "strawman {strawman_err} vs ting {ting_err}"
        );
    }
}
