//! GPS coordinates and great-circle distance.

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, normalizing longitude into `[-180, 180]` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat: f64, lon: f64) -> GeoPoint {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        great_circle_km(*self, *other)
    }

    /// Displaces this point by roughly `north_km` north and `east_km`
    /// east. Accurate for the small (tens of km) offsets the geolocation
    /// error model uses; breaks down only at the poles, where latitude is
    /// clamped.
    pub fn offset_km(&self, north_km: f64, east_km: f64) -> GeoPoint {
        let km_per_deg_lat = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        let lat = self.lat + north_km / km_per_deg_lat;
        let km_per_deg_lon = km_per_deg_lat * self.lat.to_radians().cos().max(0.01);
        let lon = self.lon + east_km / km_per_deg_lon;
        GeoPoint::new(lat, lon)
    }
}

/// Haversine great-circle distance between two points, in kilometres.
pub fn great_circle_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    const NYC: GeoPoint = GeoPoint {
        lat: 40.7128,
        lon: -74.0060,
    };
    const LONDON: GeoPoint = GeoPoint {
        lat: 51.5074,
        lon: -0.1278,
    };
    const SYDNEY: GeoPoint = GeoPoint {
        lat: -33.8688,
        lon: 151.2093,
    };

    #[test]
    fn nyc_to_london_about_5570km() {
        let d = great_circle_km(NYC, LONDON);
        assert!((d - 5570.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn london_to_sydney_about_17000km() {
        let d = great_circle_km(LONDON, SYDNEY);
        assert!((d - 16994.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        assert_eq!(great_circle_km(NYC, NYC), 0.0);
        assert!((great_circle_km(NYC, LONDON) - great_circle_km(LONDON, NYC)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = great_circle_km(a, b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn longitude_normalizes() {
        let p = GeoPoint::new(10.0, 190.0);
        assert!((p.lon - -170.0).abs() < 1e-9);
        let q = GeoPoint::new(10.0, -190.0);
        assert!((q.lon - 170.0).abs() < 1e-9);
    }

    #[test]
    fn latitude_clamps() {
        assert_eq!(GeoPoint::new(95.0, 0.0).lat, 90.0);
        assert_eq!(GeoPoint::new(-95.0, 0.0).lat, -90.0);
    }

    #[test]
    fn offset_km_moves_approximately_right_distance() {
        let p = GeoPoint::new(40.0, -74.0);
        let q = p.offset_km(50.0, 0.0);
        let d = great_circle_km(p, q);
        assert!((d - 50.0).abs() < 1.0, "got {d}");
        let r = p.offset_km(0.0, 50.0);
        let d2 = great_circle_km(p, r);
        assert!((d2 - 50.0).abs() < 1.0, "got {d2}");
    }

    #[test]
    fn triangle_inequality_on_sphere() {
        // Great-circle distances never violate the triangle inequality —
        // the TIVs the paper finds are routing artifacts, not geometry.
        let d_direct = great_circle_km(NYC, SYDNEY);
        let via = great_circle_km(NYC, LONDON) + great_circle_km(LONDON, SYDNEY);
        assert!(d_direct <= via + 1e-6);
    }
}
