//! A synthetic world map of cities.
//!
//! §4.1 of the paper chooses PlanetLab nodes so that "their geographic
//! distribution resembled that of the current Tor network, which contains
//! a concentration of relays in the U.S. and Europe, and only a few nodes
//! sparsely distributed throughout other countries", covering 6 European
//! countries, 9 U.S. states, and at least one relay in Asia, South
//! America, Australia, and the Middle East. [`World`] encodes a city list
//! with real coordinates and region weights matching that skew, and
//! samples relay locations from it.

use crate::coord::GeoPoint;
use rand::seq::SliceRandom;
use rand::Rng;

/// Coarse world regions used for weighting relay placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Oceania,
    MiddleEast,
    Africa,
}

impl Region {
    /// Sampling weight approximating the Tor relay population's skew
    /// toward Europe and North America (Tor Metrics, 2015).
    pub fn tor_weight(self) -> f64 {
        match self {
            Region::Europe => 0.52,
            Region::NorthAmerica => 0.33,
            Region::Asia => 0.06,
            Region::SouthAmerica => 0.03,
            Region::Oceania => 0.03,
            Region::MiddleEast => 0.02,
            Region::Africa => 0.01,
        }
    }
}

/// A city a relay can be placed in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    pub name: &'static str,
    pub country: &'static str,
    pub region: Region,
    pub location: GeoPoint,
}

const fn city(
    name: &'static str,
    country: &'static str,
    region: Region,
    lat: f64,
    lon: f64,
) -> City {
    City {
        name,
        country,
        region,
        location: GeoPoint { lat, lon },
    }
}

/// All cities in the synthetic world. Coordinates are the real ones.
pub const CITIES: &[City] = &[
    // North America — the paper's testbed covers 9 U.S. states.
    city("New York", "US", Region::NorthAmerica, 40.7128, -74.0060),
    city(
        "Washington DC",
        "US",
        Region::NorthAmerica,
        38.9072,
        -77.0369,
    ),
    city("Boston", "US", Region::NorthAmerica, 42.3601, -71.0589),
    city("Atlanta", "US", Region::NorthAmerica, 33.7490, -84.3880),
    city("Miami", "US", Region::NorthAmerica, 25.7617, -80.1918),
    city("Chicago", "US", Region::NorthAmerica, 41.8781, -87.6298),
    city("Dallas", "US", Region::NorthAmerica, 32.7767, -96.7970),
    city("Houston", "US", Region::NorthAmerica, 29.7604, -95.3698),
    city("Denver", "US", Region::NorthAmerica, 39.7392, -104.9903),
    city("Seattle", "US", Region::NorthAmerica, 47.6062, -122.3321),
    city(
        "San Francisco",
        "US",
        Region::NorthAmerica,
        37.7749,
        -122.4194,
    ),
    city(
        "Los Angeles",
        "US",
        Region::NorthAmerica,
        34.0522,
        -118.2437,
    ),
    city("Toronto", "CA", Region::NorthAmerica, 43.6532, -79.3832),
    city("Montreal", "CA", Region::NorthAmerica, 45.5017, -73.5673),
    city("Vancouver", "CA", Region::NorthAmerica, 49.2827, -123.1207),
    // Europe — ≥ 6 countries as in §4.1, plus the big relay havens.
    city("London", "GB", Region::Europe, 51.5074, -0.1278),
    city("Paris", "FR", Region::Europe, 48.8566, 2.3522),
    city("Berlin", "DE", Region::Europe, 52.5200, 13.4050),
    city("Frankfurt", "DE", Region::Europe, 50.1109, 8.6821),
    city("Amsterdam", "NL", Region::Europe, 52.3676, 4.9041),
    city("Stockholm", "SE", Region::Europe, 59.3293, 18.0686),
    city("Zurich", "CH", Region::Europe, 47.3769, 8.5417),
    city("Vienna", "AT", Region::Europe, 48.2082, 16.3738),
    city("Madrid", "ES", Region::Europe, 40.4168, -3.7038),
    city("Rome", "IT", Region::Europe, 41.9028, 12.4964),
    city("Warsaw", "PL", Region::Europe, 52.2297, 21.0122),
    city("Prague", "CZ", Region::Europe, 50.0755, 14.4378),
    city("Helsinki", "FI", Region::Europe, 60.1699, 24.9384),
    city("Oslo", "NO", Region::Europe, 59.9139, 10.7522),
    city("Dublin", "IE", Region::Europe, 53.3498, -6.2603),
    city("Lisbon", "PT", Region::Europe, 38.7223, -9.1393),
    city("Bucharest", "RO", Region::Europe, 44.4268, 26.1025),
    city("Kyiv", "UA", Region::Europe, 50.4501, 30.5234),
    city("Moscow", "RU", Region::Europe, 55.7558, 37.6173),
    // Asia.
    city("Tokyo", "JP", Region::Asia, 35.6762, 139.6503),
    city("Seoul", "KR", Region::Asia, 37.5665, 126.9780),
    city("Hong Kong", "HK", Region::Asia, 22.3193, 114.1694),
    city("Singapore", "SG", Region::Asia, 1.3521, 103.8198),
    city("Mumbai", "IN", Region::Asia, 19.0760, 72.8777),
    city("Bangkok", "TH", Region::Asia, 13.7563, 100.5018),
    // South America.
    city("Sao Paulo", "BR", Region::SouthAmerica, -23.5505, -46.6333),
    city(
        "Buenos Aires",
        "AR",
        Region::SouthAmerica,
        -34.6037,
        -58.3816,
    ),
    city("Santiago", "CL", Region::SouthAmerica, -33.4489, -70.6693),
    // Oceania.
    city("Sydney", "AU", Region::Oceania, -33.8688, 151.2093),
    city("Melbourne", "AU", Region::Oceania, -37.8136, 144.9631),
    city("Auckland", "NZ", Region::Oceania, -36.8509, 174.7645),
    // Middle East.
    city("Tel Aviv", "IL", Region::MiddleEast, 32.0853, 34.7818),
    city("Istanbul", "TR", Region::MiddleEast, 41.0082, 28.9784),
    city("Dubai", "AE", Region::MiddleEast, 25.2048, 55.2708),
    // Africa.
    city("Johannesburg", "ZA", Region::Africa, -26.2041, 28.0473),
    city("Cairo", "EG", Region::Africa, 30.0444, 31.2357),
];

/// The synthetic world: samples relay locations with the Tor-like
/// regional skew, and jitters positions inside a city's metro area so
/// co-located relays are close but not identical.
#[derive(Debug, Clone)]
pub struct World {
    cities: Vec<City>,
    /// Metro-area jitter radius in km (relays in the same city are
    /// placed within this radius of the center).
    pub metro_jitter_km: f64,
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

impl World {
    /// The full default world.
    pub fn new() -> World {
        World {
            cities: CITIES.to_vec(),
            metro_jitter_km: 25.0,
        }
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Samples one city with the Tor regional skew.
    pub fn sample_city<R: Rng + ?Sized>(&self, rng: &mut R) -> City {
        // Pick a region by weight, then a uniform city within it.
        let total: f64 = self
            .cities
            .iter()
            .map(|c| c.region.tor_weight())
            .sum::<f64>();
        let mut target = rng.gen_range(0.0..total);
        for c in &self.cities {
            target -= c.region.tor_weight();
            if target <= 0.0 {
                return *c;
            }
        }
        *self.cities.last().expect("world has cities")
    }

    /// Samples a relay location: a skew-weighted city plus metro jitter.
    pub fn sample_location<R: Rng + ?Sized>(&self, rng: &mut R) -> (City, GeoPoint) {
        let c = self.sample_city(rng);
        let north = rng.gen_range(-self.metro_jitter_km..self.metro_jitter_km);
        let east = rng.gen_range(-self.metro_jitter_km..self.metro_jitter_km);
        (c, c.location.offset_km(north, east))
    }

    /// Samples `n` distinct cities uniformly (used for the PlanetLab-like
    /// testbed, which wants wide geographic coverage rather than the Tor
    /// skew).
    pub fn sample_distinct_cities<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<City> {
        assert!(n <= self.cities.len(), "not enough cities");
        let mut cs = self.cities.clone();
        cs.shuffle(rng);
        cs.truncate(n);
        cs
    }

    /// Looks up a city by name.
    pub fn city(&self, name: &str) -> Option<&City> {
        self.cities.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn world_has_papers_regional_coverage() {
        let w = World::new();
        // §4.1: ≥ 6 European countries, ≥ 9 US states/cities, and at
        // least one of Asia / South America / Australia / Middle East.
        let eu_countries: std::collections::HashSet<_> = w
            .cities()
            .iter()
            .filter(|c| c.region == Region::Europe)
            .map(|c| c.country)
            .collect();
        assert!(eu_countries.len() >= 6);
        let us_cities = w.cities().iter().filter(|c| c.country == "US").count();
        assert!(us_cities >= 9);
        for region in [
            Region::Asia,
            Region::SouthAmerica,
            Region::Oceania,
            Region::MiddleEast,
        ] {
            assert!(w.cities().iter().any(|c| c.region == region));
        }
    }

    #[test]
    fn sampling_respects_tor_skew() {
        let w = World::new();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 10_000;
        let mut eu = 0;
        let mut na = 0;
        for _ in 0..n {
            match w.sample_city(&mut rng).region {
                Region::Europe => eu += 1,
                Region::NorthAmerica => na += 1,
                _ => {}
            }
        }
        let eu_frac = eu as f64 / n as f64;
        let na_frac = na as f64 / n as f64;
        assert!(eu_frac > 0.40 && eu_frac < 0.65, "eu {eu_frac}");
        assert!(na_frac > 0.20 && na_frac < 0.45, "na {na_frac}");
    }

    #[test]
    fn metro_jitter_stays_near_city() {
        let w = World::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let (city, loc) = w.sample_location(&mut rng);
            let d = city.location.distance_km(&loc);
            // Corner of the jitter square is sqrt(2) * 25 km away.
            assert!(d <= 25.0 * std::f64::consts::SQRT_2 + 1.0, "d {d}");
        }
    }

    #[test]
    fn distinct_cities_are_distinct() {
        let w = World::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let cs = w.sample_distinct_cities(&mut rng, 31);
        assert_eq!(cs.len(), 31);
        let names: std::collections::HashSet<_> = cs.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn city_lookup() {
        let w = World::new();
        assert!(w.city("Tokyo").is_some());
        assert!(w.city("Atlantis").is_none());
    }

    #[test]
    #[should_panic]
    fn too_many_distinct_cities_panics() {
        let w = World::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = w.sample_distinct_cities(&mut rng, 10_000);
    }
}
