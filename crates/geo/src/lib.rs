//! Geography for the Ting reproduction.
//!
//! The paper's Fig. 8 plots Ting-measured RTTs against great-circle
//! distances obtained from a commercial geolocation database, annotated
//! with the ⅔-speed-of-light lower bound; §5.3 classifies Tor relays as
//! residential or datacenter from their reverse-DNS names. This crate
//! provides all of that machinery:
//!
//! * [`coord`] — GPS coordinates and great-circle (haversine) distance;
//! * [`lightspeed`] — propagation-delay bounds (⅔·c in fiber);
//! * [`world`] — a synthetic world map of cities weighted to match the
//!   Tor network's US/EU concentration (§4.1's testbed design);
//! * [`geolocation`] — a geolocation database with an explicit error
//!   model, because Fig. 8's below-the-line outliers are geolocation
//!   errors and we want to reproduce them, not hide them;
//! * [`hostnames`] — synthetic rDNS names plus the Schulman-style
//!   residential classifier the paper extends in §5.3.

pub mod coord;
pub mod geolocation;
pub mod hostnames;
pub mod lightspeed;
pub mod world;

pub use coord::{great_circle_km, GeoPoint};
pub use geolocation::{GeoDb, GeoErrorModel};
pub use hostnames::{classify_hostname, HostClass, HostnameGenerator};
pub use lightspeed::{min_rtt_ms, FIBER_KM_PER_MS};
pub use world::{City, Region, World};
