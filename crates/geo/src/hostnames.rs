//! Reverse-DNS hostname synthesis and residential classification (§5.3).
//!
//! The paper extends the residential-detection technique of Schulman &
//! Spring ("Pingin' in the rain", IMC 2011), "which involves classifying
//! hosts based on their reverse DNS name, including suffix and presence
//! of numbers", from U.S.-only to European ISPs, finding ~61% of Tor
//! relays with rDNS names to be residential, with named hosting companies
//! (linode.com, amazonaws.com, ovh.com, cloudatcost.com, your-server.de,
//! leaseweb.com) covering much of the rest.
//!
//! This module provides both halves: a generator that synthesizes rDNS
//! names with realistic residential/datacenter/unnamed structure for the
//! simulated relay population, and the classifier that the coverage
//! analysis (§5.3) runs over them. The two are developed against each
//! other the same way the paper's classifier was developed against real
//! rDNS data.

use rand::Rng;

/// Classification outcome for one reverse-DNS name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostClass {
    /// Consumer access network (DSL, cable, fiber-to-the-home…).
    Residential,
    /// A known hosting/datacenter provider.
    Datacenter,
    /// Neither pattern matched.
    Unknown,
}

/// Hosting-company suffixes the paper names explicitly in §5.3.
const DATACENTER_SUFFIXES: &[&str] = &[
    "linode.com",
    "amazonaws.com",
    "ovh.com",
    "ovh.net",
    "cloudatcost.com",
    "your-server.de",
    "leaseweb.com",
    "digitalocean.com",
    "hetzner.de",
    "online.net",
];

/// Residential ISP suffixes (U.S. plus the European extension the paper
/// describes).
const RESIDENTIAL_SUFFIXES: &[&str] = &[
    // U.S.
    "comcast.net",
    "verizon.net",
    "rr.com",
    "cox.net",
    "charter.com",
    "qwest.net",
    "att.net",
    "sbcglobal.net",
    // Europe.
    "t-dialin.net",
    "t-ipconnect.de",
    "wanadoo.fr",
    "proxad.net",
    "orange.fr",
    "alicedsl.de",
    "virginmedia.com",
    "btcentralplus.com",
    "telefonica.de",
    "ziggo.nl",
    "telia.com",
    "skybroadband.com",
];

/// Infrastructure keywords that indicate an access (last-mile) network.
const ACCESS_KEYWORDS: &[&str] = &[
    "dsl",
    "dyn",
    "pool",
    "dhcp",
    "cable",
    "dip",
    "ppp",
    "fios",
    "broadband",
    "cust",
    "res",
    "home",
    "client",
    "catv",
];

/// Classifies a reverse-DNS name.
///
/// Rules, in priority order (mirroring §5.3):
/// 1. a known hosting suffix ⇒ [`HostClass::Datacenter`];
/// 2. a known residential ISP suffix ⇒ [`HostClass::Residential`];
/// 3. an access keyword in any label **and** at least two numeric groups
///    (embedded IP fragments like `pool-96-255-198-1`) ⇒ residential;
/// 4. otherwise unknown.
pub fn classify_hostname(name: &str) -> HostClass {
    let lower = name.to_ascii_lowercase();
    for suffix in DATACENTER_SUFFIXES {
        if lower.ends_with(suffix) {
            return HostClass::Datacenter;
        }
    }
    for suffix in RESIDENTIAL_SUFFIXES {
        if lower.ends_with(suffix) {
            return HostClass::Residential;
        }
    }
    let has_keyword = lower
        .split(['.', '-'])
        .any(|label| ACCESS_KEYWORDS.contains(&label));
    if has_keyword && numeric_groups(&lower) >= 2 {
        return HostClass::Residential;
    }
    HostClass::Unknown
}

/// Counts maximal runs of ASCII digits in `s`.
fn numeric_groups(s: &str) -> usize {
    let mut count = 0;
    let mut in_group = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_group {
                count += 1;
                in_group = true;
            }
        } else {
            in_group = false;
        }
    }
    count
}

/// Generates synthetic rDNS names with a configurable residential /
/// datacenter / unnamed mix, for populating simulated relay descriptors.
#[derive(Debug, Clone)]
pub struct HostnameGenerator {
    /// Fraction of hosts that are residential.
    pub residential_frac: f64,
    /// Fraction of hosts that are datacenter (the rest have no rDNS or
    /// an opaque name).
    pub datacenter_frac: f64,
    /// Fraction of hosts with no rDNS name at all (applied first; the
    /// paper found 1150 of 6634 relay addresses had none).
    pub no_rdns_frac: f64,
}

impl Default for HostnameGenerator {
    fn default() -> Self {
        // Tuned so the *classified* population lands near the paper's
        // §5.3 numbers: 61% of named hosts residential, ~13% at named
        // hosting companies, and 1150/6634 ≈ 17% with no rDNS at all.
        HostnameGenerator {
            residential_frac: 0.61,
            datacenter_frac: 0.13,
            no_rdns_frac: 0.17,
        }
    }
}

impl HostnameGenerator {
    /// Generates a hostname (or `None` for hosts without rDNS) for a host
    /// with IPv4 address `ip`.
    pub fn generate<R: Rng + ?Sized>(&self, ip: [u8; 4], rng: &mut R) -> Option<String> {
        if rng.gen_bool(self.no_rdns_frac) {
            return None;
        }
        // Renormalize the named mix.
        let named = 1.0 - self.no_rdns_frac;
        let r: f64 = rng.gen_range(0.0..1.0);
        if r < self.residential_frac / named * (1.0 - self.no_rdns_frac) {
            Some(self.residential_name(ip, rng))
        } else if r
            < (self.residential_frac + self.datacenter_frac) / named * (1.0 - self.no_rdns_frac)
        {
            Some(self.datacenter_name(ip, rng))
        } else {
            Some(self.opaque_name(ip, rng))
        }
    }

    fn residential_name<R: Rng + ?Sized>(&self, ip: [u8; 4], rng: &mut R) -> String {
        let [a, b, c, d] = ip;
        match rng.gen_range(0..5) {
            0 => format!("pool-{a}-{b}-{c}-{d}.nycmny.verizon.net"),
            1 => format!("c-{a}-{b}-{c}-{d}.hsd1.ma.comcast.net"),
            2 => format!("p{a}{b}{c}{d}.dip0.t-ipconnect.de"),
            3 => format!("{d}.{c}.{b}.{a}.dsl.dyn.orange.fr"),
            _ => format!("cpc{a}-{b}{c}-{d}.cable.virginmedia.com"),
        }
    }

    fn datacenter_name<R: Rng + ?Sized>(&self, ip: [u8; 4], rng: &mut R) -> String {
        let [a, b, c, d] = ip;
        match rng.gen_range(0..5) {
            0 => format!("li{b}{c}-{d}.members.linode.com"),
            1 => format!("ec2-{a}-{b}-{c}-{d}.compute-1.amazonaws.com"),
            2 => format!("ns{a}{b}{c}{d}.ip-{a}-{b}-{c}.ovh.net"),
            3 => format!("static.{a}.{b}.{c}.{d}.clients.your-server.de"),
            _ => format!("host-{a}-{b}-{c}-{d}.leaseweb.com"),
        }
    }

    fn opaque_name<R: Rng + ?Sized>(&self, ip: [u8; 4], rng: &mut R) -> String {
        let [_, _, c, d] = ip;
        match rng.gen_range(0..3) {
            0 => format!("tor-relay-{c}{d}.example.org"),
            1 => format!("mail{d}.smallbusiness.example.com"),
            _ => format!("gw.office{c}.example.net"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn hosting_suffixes_are_datacenter() {
        assert_eq!(
            classify_hostname("li1234-56.members.linode.com"),
            HostClass::Datacenter
        );
        assert_eq!(
            classify_hostname("ec2-1-2-3-4.compute-1.amazonaws.com"),
            HostClass::Datacenter
        );
        assert_eq!(
            classify_hostname("static.1.2.3.4.clients.your-server.de"),
            HostClass::Datacenter
        );
    }

    #[test]
    fn isp_suffixes_are_residential() {
        assert_eq!(
            classify_hostname("pool-96-255-198-1.washdc.fios.verizon.net"),
            HostClass::Residential
        );
        assert_eq!(
            classify_hostname("p5089abcd.dip0.t-ipconnect.de"),
            HostClass::Residential
        );
    }

    #[test]
    fn keyword_plus_numbers_is_residential() {
        assert_eq!(
            classify_hostname("71-84-32-15.dhcp.mdfd.or.someisp.example"),
            HostClass::Residential
        );
        assert_eq!(
            classify_hostname("dsl-189-32.uk.someother.example"),
            HostClass::Residential
        );
    }

    #[test]
    fn keyword_without_numbers_is_unknown() {
        assert_eq!(classify_hostname("dsl.example.com"), HostClass::Unknown);
    }

    #[test]
    fn plain_names_are_unknown() {
        assert_eq!(classify_hostname("www.example.com"), HostClass::Unknown);
        assert_eq!(
            classify_hostname("tor-relay-12.example.org"),
            HostClass::Unknown
        );
    }

    #[test]
    fn classification_is_case_insensitive() {
        assert_eq!(
            classify_hostname("POOL-1-2-3-4.VERIZON.NET"),
            HostClass::Residential
        );
    }

    #[test]
    fn numeric_group_counting() {
        assert_eq!(numeric_groups("pool-96-255-198-1"), 4);
        assert_eq!(numeric_groups("abc"), 0);
        assert_eq!(numeric_groups("a1b22c333"), 3);
    }

    #[test]
    fn generator_hits_target_mix() {
        let g = HostnameGenerator::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mut residential = 0;
        let mut datacenter = 0;
        let mut none = 0;
        let mut named = 0;
        for i in 0..n {
            let ip = [
                (i % 223 + 1) as u8,
                (i / 7 % 256) as u8,
                (i / 13 % 256) as u8,
                (i % 254 + 1) as u8,
            ];
            match g.generate(ip, &mut rng) {
                None => none += 1,
                Some(name) => {
                    named += 1;
                    match classify_hostname(&name) {
                        HostClass::Residential => residential += 1,
                        HostClass::Datacenter => datacenter += 1,
                        HostClass::Unknown => {}
                    }
                }
            }
        }
        let none_frac = none as f64 / n as f64;
        assert!((none_frac - 0.17).abs() < 0.02, "no-rdns {none_frac}");
        // §5.3: "of the currently running Tor relays with a reverse DNS
        // name, at least … roughly 61% are residential".
        let res_frac = residential as f64 / named as f64;
        assert!((res_frac - 0.61).abs() < 0.05, "residential {res_frac}");
        let dc_frac = datacenter as f64 / named as f64;
        assert!(dc_frac > 0.08 && dc_frac < 0.20, "datacenter {dc_frac}");
    }

    #[test]
    fn generated_names_classify_as_intended() {
        // Every name from the residential generator classifies
        // residential; same for datacenter.
        let g = HostnameGenerator::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let ip = [
                rng.gen_range(1..=223),
                rng.gen(),
                rng.gen(),
                rng.gen_range(1..=254),
            ];
            let r = g.residential_name(ip, &mut rng);
            assert_eq!(classify_hostname(&r), HostClass::Residential, "{r}");
            let d = g.datacenter_name(ip, &mut rng);
            assert_eq!(classify_hostname(&d), HostClass::Datacenter, "{d}");
        }
    }
}
