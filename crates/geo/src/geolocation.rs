//! A geolocation database with an explicit error model.
//!
//! Fig. 8 uses "the Neustar IP Geolocation service to obtain an estimate
//! of the GPS coordinates for each of the relays"; the paper observes "a
//! handful of points below [the ⅔·c] line" and attributes them to "errors
//! in the underlying geolocation database". To reproduce that figure
//! honestly we model geolocation as truth plus error: small Gaussian-ish
//! displacement most of the time, and occasionally a gross error that
//! relocates the host to a completely wrong city.

use crate::coord::GeoPoint;
use crate::world::{World, CITIES};
use rand::Rng;

/// Error parameters for [`GeoDb::estimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoErrorModel {
    /// Standard deviation of the usual displacement error, km.
    pub sigma_km: f64,
    /// Probability that an estimate is grossly wrong (random other city).
    pub gross_error_prob: f64,
}

impl Default for GeoErrorModel {
    fn default() -> Self {
        // Commercial IP geolocation is usually city-accurate (tens of
        // km) with a small tail of total misses.
        GeoErrorModel {
            sigma_km: 30.0,
            gross_error_prob: 0.015,
        }
    }
}

impl GeoErrorModel {
    /// A perfect oracle (used by tests and ground-truth comparisons).
    pub fn perfect() -> GeoErrorModel {
        GeoErrorModel {
            sigma_km: 0.0,
            gross_error_prob: 0.0,
        }
    }
}

/// Maps opaque host IDs to true locations and serves error-prone
/// estimates, like a commercial geolocation service would.
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    truth: Vec<Option<GeoPoint>>,
    pub error_model: GeoErrorModel,
}

impl GeoDb {
    /// Creates an empty database with the given error model.
    pub fn new(error_model: GeoErrorModel) -> GeoDb {
        GeoDb {
            truth: Vec::new(),
            error_model,
        }
    }

    /// Records the true location of `host` (a dense small-integer ID).
    pub fn insert(&mut self, host: usize, location: GeoPoint) {
        if host >= self.truth.len() {
            self.truth.resize(host + 1, None);
        }
        self.truth[host] = Some(location);
    }

    /// The true location, if known. Ground-truth consumers (the underlay
    /// latency model) use this; experiment code should use
    /// [`GeoDb::estimate`] to mimic what a measurement study can see.
    pub fn truth(&self, host: usize) -> Option<GeoPoint> {
        self.truth.get(host).copied().flatten()
    }

    /// Number of hosts with known locations.
    pub fn len(&self) -> usize {
        self.truth.iter().filter(|t| t.is_some()).count()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An error-prone location estimate, as the paper's Neustar lookups
    /// were. Deterministic per (host, rng state): callers seed the RNG.
    pub fn estimate<R: Rng + ?Sized>(&self, host: usize, rng: &mut R) -> Option<GeoPoint> {
        let true_loc = self.truth(host)?;
        if rng.gen_bool(self.error_model.gross_error_prob) {
            // Gross error: the database thinks this host is somewhere
            // else entirely (e.g. the ISP's registered HQ).
            let city = CITIES[rng.gen_range(0..CITIES.len())];
            return Some(city.location);
        }
        if self.error_model.sigma_km == 0.0 {
            return Some(true_loc);
        }
        // Box–Muller for two independent N(0, sigma) displacements.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let north = self.error_model.sigma_km * mag * (2.0 * std::f64::consts::PI * u2).cos();
        let east = self.error_model.sigma_km * mag * (2.0 * std::f64::consts::PI * u2).sin();
        Some(true_loc.offset_km(north, east))
    }

    /// Builds a database for `n` hosts placed randomly in `world` with
    /// the Tor regional skew. Returns the DB; `truth(i)` is defined for
    /// all `i < n`.
    pub fn populate_tor_like<R: Rng + ?Sized>(
        world: &World,
        n: usize,
        error_model: GeoErrorModel,
        rng: &mut R,
    ) -> GeoDb {
        let mut db = GeoDb::new(error_model);
        for host in 0..n {
            let (_, loc) = world.sample_location(rng);
            db.insert(host, loc);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn insert_and_truth_roundtrip() {
        let mut db = GeoDb::new(GeoErrorModel::perfect());
        let p = GeoPoint::new(50.0, 10.0);
        db.insert(3, p);
        assert_eq!(db.truth(3), Some(p));
        assert_eq!(db.truth(0), None);
        assert_eq!(db.truth(99), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn perfect_model_returns_truth() {
        let mut db = GeoDb::new(GeoErrorModel::perfect());
        let p = GeoPoint::new(40.0, -74.0);
        db.insert(0, p);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(db.estimate(0, &mut rng), Some(p));
    }

    #[test]
    fn typical_error_is_small() {
        let mut db = GeoDb::new(GeoErrorModel {
            sigma_km: 30.0,
            gross_error_prob: 0.0,
        });
        let p = GeoPoint::new(40.0, -74.0);
        db.insert(0, p);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut total = 0.0;
        let n = 1000;
        for _ in 0..n {
            let est = db.estimate(0, &mut rng).unwrap();
            total += p.distance_km(&est);
        }
        let mean_err = total / n as f64;
        // Mean of |N2(0, σ)| is σ·sqrt(π/2) ≈ 37.6 km.
        assert!(mean_err > 25.0 && mean_err < 50.0, "mean error {mean_err}");
    }

    #[test]
    fn gross_errors_occur_at_configured_rate() {
        let mut db = GeoDb::new(GeoErrorModel {
            sigma_km: 0.0,
            gross_error_prob: 0.2,
        });
        let p = GeoPoint::new(40.7128, -74.0060);
        db.insert(0, p);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 5000;
        let gross = (0..n)
            .filter(|_| {
                let est = db.estimate(0, &mut rng).unwrap();
                p.distance_km(&est) > 100.0
            })
            .count();
        let frac = gross as f64 / n as f64;
        assert!(frac > 0.12 && frac < 0.28, "gross fraction {frac}");
    }

    #[test]
    fn populate_covers_all_hosts() {
        let mut rng = SmallRng::seed_from_u64(3);
        let db = GeoDb::populate_tor_like(&World::new(), 100, GeoErrorModel::default(), &mut rng);
        assert_eq!(db.len(), 100);
        for i in 0..100 {
            assert!(db.truth(i).is_some());
        }
    }

    #[test]
    fn unknown_host_estimate_is_none() {
        let db = GeoDb::new(GeoErrorModel::default());
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(db.estimate(5, &mut rng), None);
    }
}
